//! The partitioned likelihood engine.
//!
//! An [`Engine`] owns the **local slice** of the alignment a rank was
//! assigned (all partitions, or pattern subsets of them), the per-partition
//! models, and the conditional likelihood vectors (CLVs). It executes the
//! three kernels every likelihood-based phylogenetics code spends >90% of
//! its time in (§II):
//!
//! 1. [`Engine::execute`] — `newview`: recompute CLVs per a traversal
//!    descriptor (Felsenstein pruning),
//! 2. [`Engine::evaluate`] — per-partition log-likelihood at the virtual
//!    root (the caller reduces across ranks),
//! 3. [`Engine::prepare_derivatives`] + [`Engine::derivatives`] — first and
//!    second branch-length derivatives via RAxML's eigenbasis sumtable.
//!
//! The engine is deliberately **tree-agnostic**: it only sees node ids and
//! branch lengths inside descriptor entries. This is exactly the property
//! the fork-join scheme exploits (workers never hold a tree, §III-A) and it
//! guarantees the de-centralized and fork-join drivers execute bit-identical
//! arithmetic.

pub mod backend;
pub mod gradient;
mod pool;
pub mod repeats;
mod site_rates;

pub use backend::{simd_available, KernelChoice, KernelKind};
pub use gradient::{GradientChoice, GradientMode};
pub use pool::{ThreadCount, ThreadsChoice};
pub use repeats::{RepeatsChoice, SiteRepeats};

use backend::{root_side, KernelBackend, KernelScratch, OutsideJob, RootSide};
use pool::{TaskSlots, WorkerPool};
use repeats::{NodeRepeats, RepeatScratch};

use crate::model::gtr::GtrModel;
use crate::model::rates::{RateHeterogeneity, RateModelKind};
use crate::tree::traversal::{GradSource, GradientPlan, TraversalDescriptor};
use exa_bio::dna::NUM_STATES;
use exa_bio::patterns::CompressedPartition;
use exa_bio::stats::empirical_frequencies;
use std::sync::Arc;

/// Callback handed a local partition index and two parallel per-pattern
/// addend slices (first/second derivative terms, or PSR numerator and
/// denominator terms) by the `*_with_terms` kernel variants, so callers can
/// feed reproducible binned reductions.
pub type PairTermsSink<'a> = dyn FnMut(usize, &[f64], &[f64]) + 'a;

/// Per-pattern derivative-addend sink for the full-tree gradient sweep:
/// `(local_partition, edge, d1_terms, d2_terms)`.
pub type EdgeTermsSink<'a> = dyn FnMut(usize, usize, &[f64], &[f64]) + 'a;

/// CLV underflow threshold: entries below 2⁻²⁵⁶ trigger rescaling by 2²⁵⁶
/// (RAxML's constants).
pub const MIN_LIKELIHOOD: f64 = 8.636_168_555_094_445e-78; // 2^-256
pub const TWO_TO_256: f64 = 1.157_920_892_373_162e77; // 2^256
/// ln(2⁻²⁵⁶), added per scaling event when assembling log-likelihoods.
pub const LN_MIN_LIKELIHOOD: f64 = -177.445_678_223_346;

/// The immutable data of one local partition slice.
#[derive(Debug, Clone)]
pub struct PartitionSlice {
    /// Name (diagnostics only).
    pub name: String,
    /// Index of this partition in the global scheme (model-parameter
    /// batching is keyed on this).
    pub global_index: usize,
    /// Tip codes: `tips[taxon][pattern]`. Shared — an N-rank in-process
    /// cluster whose ranks all hold the full partition points every rank at
    /// one copy of the tip matrix instead of N clones.
    pub tips: Arc<Vec<Vec<u8>>>,
    /// Pattern weights (shared, like `tips`).
    pub weights: Arc<Vec<f64>>,
    /// Empirical base frequencies of the **full** partition. When a slice
    /// holds only a pattern subset (cyclic distribution), frequencies must
    /// still be the global ones or ranks would build different GTR models
    /// for the same partition and diverge.
    pub freqs: [f64; 4],
}

impl PartitionSlice {
    /// Build from a compressed partition, deriving frequencies from the
    /// partition itself. Only correct when `p` is the *full* partition —
    /// for subsets use [`PartitionSlice::from_subset`].
    pub fn from_compressed(global_index: usize, p: &CompressedPartition) -> PartitionSlice {
        let freqs = empirical_frequencies(p);
        PartitionSlice::from_subset(global_index, p, freqs)
    }

    /// Build from a (possibly subset) compressed partition with externally
    /// supplied global frequencies.
    pub fn from_subset(
        global_index: usize,
        p: &CompressedPartition,
        freqs: [f64; 4],
    ) -> PartitionSlice {
        PartitionSlice {
            name: p.name.clone(),
            global_index,
            tips: Arc::new(p.tips.clone()),
            weights: Arc::new(p.weights.iter().map(|&w| w as f64).collect()),
            freqs,
        }
    }

    /// Build a slice around already-shared tip/weight tables (full
    /// partitions distributed to several in-process ranks).
    pub fn from_shared(
        global_index: usize,
        name: String,
        tips: Arc<Vec<Vec<u8>>>,
        weights: Arc<Vec<f64>>,
        freqs: [f64; 4],
    ) -> PartitionSlice {
        PartitionSlice {
            name,
            global_index,
            tips,
            weights,
            freqs,
        }
    }

    /// Number of patterns in this slice.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }
}

/// Kernel work counters, used by the analytic cluster model and by the
/// ablation benches. All counts are in units of `pattern × rate-category`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkCounters {
    /// CLV entries recomputed by `newview`.
    pub clv_updates: u64,
    /// CLV entries `newview` *skipped* thanks to subtree-repeat compression
    /// (duplicates filled by copy instead of recomputation). Excluded from
    /// [`WorkCounters::total`] — skipped work is not work.
    pub clv_saved: u64,
    /// Pattern-categories combined in `evaluate`.
    pub eval_patterns: u64,
    /// Pattern-categories processed by `derivatives` calls.
    pub deriv_patterns: u64,
    /// Pattern-categories processed during per-site rate optimization.
    pub site_rate_patterns: u64,
    /// Wall-clock nanoseconds spent inside the engine's kernel methods.
    /// Measured, not modeled — the heartbeat monitor's per-rank load
    /// signal. Excluded from [`WorkCounters::total`] (different unit).
    pub kernel_ns: u64,
    /// Batched kernel dispatches issued: one per batch per backend entry
    /// point (and per traversal entry for `newview`). This is the count the
    /// analytic cluster model multiplies by its per-dispatch overhead —
    /// partition packing wins exactly by shrinking it. Excluded from
    /// [`WorkCounters::total`] (different unit).
    pub dispatches: u64,
}

impl WorkCounters {
    /// Field-wise sum.
    pub fn merge(&self, other: &WorkCounters) -> WorkCounters {
        WorkCounters {
            clv_updates: self.clv_updates + other.clv_updates,
            clv_saved: self.clv_saved + other.clv_saved,
            eval_patterns: self.eval_patterns + other.eval_patterns,
            deriv_patterns: self.deriv_patterns + other.deriv_patterns,
            site_rate_patterns: self.site_rate_patterns + other.site_rate_patterns,
            kernel_ns: self.kernel_ns + other.kernel_ns,
            dispatches: self.dispatches + other.dispatches,
        }
    }

    /// Total kernel work (pattern-categories; `kernel_ns` is wall time and
    /// `clv_saved` is avoided work, so both stay out of this sum).
    pub fn total(&self) -> u64 {
        self.clv_updates + self.eval_patterns + self.deriv_patterns + self.site_rate_patterns
    }

    /// Repeat-compression factor of `newview`: full work over performed
    /// work, ≥ 1.0 (1.0 = nothing saved; meaningful only once some
    /// `newview` work has been counted).
    pub fn repeat_ratio(&self) -> f64 {
        if self.clv_updates == 0 {
            1.0
        } else {
            (self.clv_updates + self.clv_saved) as f64 / self.clv_updates as f64
        }
    }
}

/// Per-partition mutable engine state.
pub(crate) struct PartitionState {
    pub data: PartitionSlice,
    pub model: GtrModel,
    pub rates: RateHeterogeneity,
    /// `clv[inner][pattern * cats * 4 + c*4 + s]`.
    pub clv: Vec<Vec<f64>>,
    /// Accumulated scaling counts: `scale[inner][pattern]`.
    pub scale: Vec<Vec<u32>>,
    /// Derivative sumtable: `[pattern * cats * 4]` in the eigenbasis.
    pub sumtable: Vec<f64>,
    /// Scratch: per-pattern rates during PSR optimization.
    pub psr_scratch: Vec<f64>,
    /// Reusable kernel scratch (P-matrices, tip lookups, SIMD transposes) —
    /// refilled per edge instead of reallocated.
    pub scratch: KernelScratch,
    /// Per-inner-node subtree-repeat tables (empty when compression is
    /// off). Indexed like `clv` (`node - n_taxa`).
    pub repeats: Vec<NodeRepeats>,
    /// Bumped whenever the PSR pattern→category map may have changed;
    /// part of every repeat table's cache key.
    pub repeat_epoch: u64,
    /// Shared repeat-builder scratch (dedup table, identity list).
    pub repeat_scratch: RepeatScratch,
    /// Reusable buffers for the `*_with_terms` kernel variants: filled
    /// inside the (possibly parallel) batch region, consumed serially by
    /// the caller's sink in local-partition order.
    pub terms_a: Vec<f64>,
    pub terms_b: Vec<f64>,
    /// Gradient-sweep scratch: per-edge "outside" CLVs and their scaling
    /// counts (`grad_clv[edge]`), sized lazily on the first sweep and
    /// reused across sweeps.
    pub grad_clv: Vec<Vec<f64>>,
    pub grad_scale: Vec<Vec<u32>>,
    /// Per-edge first/second-derivative term buffers filled by
    /// [`Engine::edge_gradient_with_terms`] inside the parallel batch
    /// region, consumed serially by the caller's sink.
    pub grad_t1: Vec<Vec<f64>>,
    pub grad_t2: Vec<Vec<f64>>,
}

impl PartitionState {
    fn new(
        data: PartitionSlice,
        n_inner: usize,
        kind: RateModelKind,
        alpha0: f64,
        site_repeats: SiteRepeats,
    ) -> PartitionState {
        let n_patterns = data.n_patterns();
        let model = GtrModel::new([1.0; 6], data.freqs);
        let rates = match kind {
            RateModelKind::Gamma => RateHeterogeneity::gamma(alpha0),
            RateModelKind::Psr => RateHeterogeneity::psr(n_patterns),
        };
        let cats = rates.clv_categories();
        PartitionState {
            data,
            model,
            rates,
            clv: vec![vec![0.0; n_patterns * cats * NUM_STATES]; n_inner],
            scale: vec![vec![0; n_patterns]; n_inner],
            sumtable: vec![0.0; n_patterns * cats * NUM_STATES],
            psr_scratch: vec![1.0; n_patterns],
            scratch: KernelScratch::default(),
            repeats: match site_repeats {
                SiteRepeats::On => vec![NodeRepeats::default(); n_inner],
                SiteRepeats::Off => Vec::new(),
            },
            repeat_epoch: 0,
            repeat_scratch: RepeatScratch::default(),
            terms_a: Vec::new(),
            terms_b: Vec::new(),
            grad_clv: Vec::new(),
            grad_scale: Vec::new(),
            grad_t1: Vec::new(),
            grad_t2: Vec::new(),
        }
    }

    /// Resize CLV buffers when the category count changes (never happens for
    /// Γ vs PSR at runtime, but kept for safety).
    fn clv_len(&self) -> usize {
        self.data.n_patterns() * self.rates.clv_categories() * NUM_STATES
    }
}

/// The likelihood engine over a rank's local data.
pub struct Engine {
    n_taxa: usize,
    /// Configured rate model — kept even when the rank holds zero
    /// partitions (MPS with more ranks than partitions), so collective
    /// call sequences stay identical across ranks.
    kind: RateModelKind,
    /// The kernel backend all partitions run on. Must be uniform across
    /// ranks in multi-rank runs (see [`backend`] docs).
    backend: &'static dyn KernelBackend,
    /// Subtree-repeat compression setting (uniform across ranks, like the
    /// backend — see [`repeats`] docs).
    site_repeats: SiteRepeats,
    pub(crate) parts: Vec<PartitionState>,
    /// Consecutive local-partition ranges, each executed as **one** kernel
    /// dispatch sharing one scratch set. Always an exact cover of
    /// `0..parts.len()`; defaults to singleton batches (= the historical
    /// one-dispatch-per-partition behavior).
    batches: Vec<std::ops::Range<usize>>,
    /// One kernel scratch per batch (P-matrices, tip lookups, transposes),
    /// swapped into each member partition for the duration of its backend
    /// call so the buffers are built once per batch and reused across the
    /// partitions in it.
    batch_scratch: Vec<KernelScratch>,
    /// Intra-rank worker pool executing batches task-parallel. One thread =
    /// fully inline serial execution.
    pool: WorkerPool,
    work: WorkCounters,
}

impl Engine {
    /// Build an engine for `n_taxa` taxa over the given partition slices,
    /// all running the same rate-heterogeneity `kind` with initial Γ shape
    /// `alpha0` (ignored under PSR). GTR starts at equal exchangeabilities
    /// with empirical base frequencies, RAxML's defaults.
    ///
    /// The kernel backend is resolved from the process-wide default
    /// ([`KernelChoice::from_env`], i.e. `EXAML_KERNEL` or `auto`) against
    /// the local machine. Multi-rank drivers that negotiated a common
    /// backend should use [`Engine::with_kernel`] instead.
    pub fn new(
        n_taxa: usize,
        slices: Vec<PartitionSlice>,
        kind: RateModelKind,
        alpha0: f64,
    ) -> Engine {
        Engine::with_kernel(
            n_taxa,
            slices,
            kind,
            alpha0,
            KernelChoice::from_env().resolve_local(),
        )
    }

    /// [`Engine::new`] with an explicitly chosen kernel backend; the
    /// site-repeats setting comes from the process-wide default
    /// (`EXAML_SITE_REPEATS` or `auto`).
    pub fn with_kernel(
        n_taxa: usize,
        slices: Vec<PartitionSlice>,
        kind: RateModelKind,
        alpha0: f64,
        kernel: KernelKind,
    ) -> Engine {
        Engine::with_config(
            n_taxa,
            slices,
            kind,
            alpha0,
            kernel,
            RepeatsChoice::from_env().resolve_local(),
        )
    }

    /// [`Engine::new`] with every backend knob chosen explicitly. Multi-rank
    /// drivers negotiate both settings before building engines.
    pub fn with_config(
        n_taxa: usize,
        slices: Vec<PartitionSlice>,
        kind: RateModelKind,
        alpha0: f64,
        kernel: KernelKind,
        site_repeats: SiteRepeats,
    ) -> Engine {
        assert!(n_taxa >= 3, "need at least 3 taxa");
        let n_inner = n_taxa - 2;
        let parts: Vec<PartitionState> = slices
            .into_iter()
            .map(|s| PartitionState::new(s, n_inner, kind, alpha0, site_repeats))
            .collect();
        let n = parts.len();
        Engine {
            n_taxa,
            kind,
            backend: backend::backend_for(kernel),
            site_repeats,
            parts,
            batches: (0..n).map(|i| i..i + 1).collect(),
            batch_scratch: (0..n).map(|_| KernelScratch::default()).collect(),
            pool: WorkerPool::new(1),
            work: WorkCounters::default(),
        }
    }

    /// Replace the batch layout. `batches` must be an exact consecutive
    /// cover of the local partitions (every partition in exactly one batch,
    /// local order preserved) — packing may only group, never permute, so
    /// result slots and serial reductions keep their historical order.
    pub fn set_batches(&mut self, batches: Vec<std::ops::Range<usize>>) {
        let mut next = 0usize;
        for r in &batches {
            assert!(
                r.start == next && r.end > r.start,
                "batches must consecutively cover local partitions: got {:?} at offset {next}",
                r
            );
            next = r.end;
        }
        assert_eq!(next, self.parts.len(), "batches must cover every partition");
        self.batch_scratch = (0..batches.len())
            .map(|_| KernelScratch::default())
            .collect();
        self.batches = batches;
    }

    /// Resize the intra-rank worker pool to `threads` executors. Bitwise
    /// result-neutral: the thread schedule never reaches the arithmetic
    /// (see [`pool`] docs).
    pub fn set_threads(&mut self, threads: usize) {
        if self.pool.threads() != threads {
            self.pool = WorkerPool::new(threads);
        }
    }

    /// Intra-rank thread count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Number of kernel batches the local partitions are packed into.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// The kernel backend this engine runs on.
    pub fn kernel_kind(&self) -> KernelKind {
        self.backend.kind()
    }

    /// Whether this engine compresses subtree repeats in `newview`.
    pub fn site_repeats(&self) -> SiteRepeats {
        self.site_repeats
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.n_taxa
    }

    /// Number of local partitions.
    pub fn n_partitions(&self) -> usize {
        self.parts.len()
    }

    /// Global partition indices of the local slices, in local order.
    pub fn global_indices(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.data.global_index).collect()
    }

    /// Total local patterns.
    pub fn total_patterns(&self) -> usize {
        self.parts.iter().map(|p| p.data.n_patterns()).sum()
    }

    /// Rate-model kind (uniform across partitions; retained even with zero
    /// local partitions).
    pub fn rate_kind(&self) -> RateModelKind {
        self.kind
    }

    /// CLV memory held by this engine, in bytes.
    pub fn clv_bytes(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| {
                let clv: usize = p.clv.iter().map(|v| v.len() * 8).sum();
                let sc: usize = p.scale.iter().map(|v| v.len() * 4).sum();
                (clv + sc + p.sumtable.len() * 8) as u64
            })
            .sum()
    }

    /// Read-and-keep the work counters.
    pub fn work(&self) -> WorkCounters {
        self.work
    }

    /// Reset the work counters to zero.
    pub fn reset_work(&mut self) {
        self.work = WorkCounters::default();
    }

    /// The Γ shape of local partition `local` (None under PSR).
    pub fn alpha(&self, local: usize) -> Option<f64> {
        self.parts[local].rates.alpha()
    }

    /// Set the Γ shape of local partition `local`. The caller must
    /// invalidate all CLVs on its tree afterwards.
    pub fn set_alpha(&mut self, local: usize, alpha: f64) {
        self.parts[local].rates.set_alpha(alpha);
        debug_assert_eq!(self.parts[local].clv_len(), self.parts[local].clv[0].len());
    }

    /// Current GTR exchangeabilities of local partition `local`.
    pub fn gtr_rates(&self, local: usize) -> [f64; 6] {
        *self.parts[local].model.rates()
    }

    /// Base frequencies of local partition `local`.
    pub fn freqs(&self, local: usize) -> [f64; 4] {
        *self.parts[local].model.freqs()
    }

    /// Set one free GTR exchangeability (0..=4) of partition `local`.
    /// Caller must invalidate CLVs.
    pub fn set_gtr_rate(&mut self, local: usize, index: usize, value: f64) {
        self.parts[local].model.set_rate(index, value);
    }

    /// Replace the full model state of a partition (checkpoint restore).
    pub fn set_model_state(&mut self, local: usize, model: GtrModel, rates: RateHeterogeneity) {
        let p = &mut self.parts[local];
        assert_eq!(
            rates.clv_categories(),
            p.rates.clv_categories(),
            "cannot switch rate-category count at runtime"
        );
        if let RateHeterogeneity::Psr { pattern_cat, .. } = &rates {
            assert_eq!(
                pattern_cat.len(),
                p.data.n_patterns(),
                "PSR state has wrong pattern count"
            );
        }
        p.model = model;
        p.rates = rates;
        // A restored PSR state may carry a different pattern→category map,
        // which is part of every repeat-table key.
        if matches!(p.rates, RateHeterogeneity::Psr { .. }) {
            p.repeat_epoch += 1;
        }
    }

    /// The immutable data slice of local partition `local`.
    pub fn partition_slice(&self, local: usize) -> &PartitionSlice {
        &self.parts[local].data
    }

    /// Clone of the model state (checkpointing).
    pub fn model_state(&self, local: usize) -> (GtrModel, RateHeterogeneity) {
        (
            self.parts[local].model.clone(),
            self.parts[local].rates.clone(),
        )
    }

    /// The branch length used by local partition `local` given a descriptor
    /// length vector (1 = joint, else indexed by *global* partition).
    pub(crate) fn branch_length(lengths: &[f64], global_index: usize) -> f64 {
        if lengths.len() == 1 {
            lengths[0]
        } else {
            lengths[global_index]
        }
    }

    /// The batched kernel runner every engine entry point goes through.
    ///
    /// Runs `f(local, part)` for every local partition, batch by batch:
    /// each batch is one pool task, its member partitions executed in local
    /// order with the batch's shared scratch swapped in. Results land in
    /// per-partition indexed slots and are returned in local order, so the
    /// output is independent of the thread schedule; callers perform any
    /// cross-partition floating-point accumulation serially over the
    /// returned vector. When `trace` is set and tracing is active, per-
    /// partition kernel timings are buffered in the parallel region and
    /// emitted serially here (the tracer is single-claimant per rank).
    fn for_each_part<T, F>(&mut self, trace: Option<exa_obs::RegionKind>, f: F) -> Vec<T>
    where
        T: Default + Send,
        F: Fn(usize, &mut PartitionState) -> T + Sync,
    {
        let n = self.parts.len();
        let per_part = trace.is_some() && exa_obs::tracing_active();
        let mut out: Vec<T> = Vec::with_capacity(n);
        out.resize_with(n, T::default);
        let mut tns: Vec<u64> = vec![0; if per_part { n } else { 0 }];
        {
            struct BatchView<'a, T> {
                start: usize,
                parts: &'a mut [PartitionState],
                out: &'a mut [T],
                tns: &'a mut [u64],
                scratch: &'a mut KernelScratch,
            }
            let mut views: Vec<BatchView<'_, T>> = Vec::with_capacity(self.batches.len());
            let mut parts_rem = self.parts.as_mut_slice();
            let mut out_rem = out.as_mut_slice();
            let mut tns_rem = tns.as_mut_slice();
            let mut scratch_rem = self.batch_scratch.as_mut_slice();
            for r in &self.batches {
                let len = r.end - r.start;
                let (p, rest) = parts_rem.split_at_mut(len);
                parts_rem = rest;
                let (o, rest) = out_rem.split_at_mut(len);
                out_rem = rest;
                let t: &mut [u64] = if per_part {
                    let (t, rest) = tns_rem.split_at_mut(len);
                    tns_rem = rest;
                    t
                } else {
                    &mut []
                };
                let (s, rest) = scratch_rem.split_at_mut(1);
                scratch_rem = rest;
                views.push(BatchView {
                    start: r.start,
                    parts: p,
                    out: o,
                    tns: t,
                    scratch: &mut s[0],
                });
            }
            let slots = TaskSlots::new(views);
            let f = &f;
            self.pool.run(self.batches.len(), &|b| {
                // SAFETY: the pool claims each batch index exactly once.
                let v = unsafe { slots.slot(b) };
                for (off, part) in v.parts.iter_mut().enumerate() {
                    let t0 = (!v.tns.is_empty()).then(std::time::Instant::now);
                    std::mem::swap(&mut part.scratch, v.scratch);
                    v.out[off] = f(v.start + off, part);
                    std::mem::swap(&mut part.scratch, v.scratch);
                    if let Some(t0) = t0 {
                        v.tns[off] = t0.elapsed().as_nanos() as u64;
                    }
                }
            });
        }
        if let (true, Some(kind)) = (per_part, trace) {
            for (local, ns) in tns.iter().enumerate() {
                exa_obs::kernel(kind, self.parts[local].data.global_index as u32, *ns);
            }
        }
        out
    }

    /// Execute a traversal descriptor: recompute the listed CLVs for every
    /// local partition.
    pub fn execute(&mut self, d: &TraversalDescriptor) {
        let _span = exa_obs::region(exa_obs::RegionKind::Newview);
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let backend = self.backend;
        let results = self.for_each_part(Some(exa_obs::RegionKind::Newview), |_, part| {
            let full = (part.data.n_patterns() * part.rates.clv_categories()) as u64;
            let mut work = 0u64;
            let mut saved = 0u64;
            for entry in &d.entries {
                let w = backend.newview_entry(part, n_taxa, entry);
                work += w;
                saved += full - w;
            }
            (work, saved)
        });
        for (work, saved) in results {
            self.work.clv_updates += work;
            self.work.clv_saved += saved;
        }
        self.work.dispatches += self.batches.len() as u64 * d.entries.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
    }

    /// Per-partition log-likelihoods at the descriptor's virtual root.
    /// CLVs must be up to date (call [`Engine::execute`] first or use the
    /// combined form in the drivers).
    pub fn evaluate(&mut self, d: &TraversalDescriptor) -> Vec<f64> {
        let _span = exa_obs::region(exa_obs::RegionKind::Evaluate);
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let backend = self.backend;
        let results = self.for_each_part(Some(exa_obs::RegionKind::Evaluate), |_, part| {
            backend.evaluate_root(part, n_taxa, d, None)
        });
        let mut out = Vec::with_capacity(results.len());
        for (lnl, w) in results {
            out.push(lnl);
            self.work.eval_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        out
    }

    /// [`Engine::evaluate`] variant that also hands the caller the
    /// per-pattern weighted log-likelihood addends of each local partition
    /// (`sink(local_index, terms)`), for reproducible binned reduction.
    /// The per-partition lnl stays the plain left-to-right sum, so `Fast`
    /// results are unchanged.
    pub fn evaluate_with_terms(
        &mut self,
        d: &TraversalDescriptor,
        sink: &mut dyn FnMut(usize, &[f64]),
    ) -> Vec<f64> {
        let _span = exa_obs::region(exa_obs::RegionKind::Evaluate);
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let backend = self.backend;
        let results = self.for_each_part(None, |_, part| {
            let mut terms = std::mem::take(&mut part.terms_a);
            let (lnl, w) = backend.evaluate_root(part, n_taxa, d, Some(&mut terms));
            part.terms_a = terms;
            (lnl, w)
        });
        // Sinks stay `FnMut` and run serially in local-partition order, from
        // the per-partition term buffers filled above.
        let mut out = Vec::with_capacity(results.len());
        for (local, (lnl, w)) in results.into_iter().enumerate() {
            sink(local, &self.parts[local].terms_a);
            out.push(lnl);
            self.work.eval_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        out
    }

    /// Build the derivative sumtables for the descriptor's root edge.
    /// CLVs must be up to date.
    pub fn prepare_derivatives(&mut self, d: &TraversalDescriptor) {
        let n_taxa = self.n_taxa;
        let backend = self.backend;
        self.for_each_part(None, |_, part| {
            backend.make_sumtable(part, n_taxa, d);
        });
        self.work.dispatches += self.batches.len() as u64;
    }

    /// First and second log-likelihood derivatives w.r.t. the root-edge
    /// branch length, per local partition. `lengths` holds the candidate
    /// branch length(s): one entry (joint) or one per *global* partition.
    /// Requires [`Engine::prepare_derivatives`] to have run for this edge.
    pub fn derivatives(&mut self, lengths: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let _span = exa_obs::region(exa_obs::RegionKind::CoreDerivative);
        let started = std::time::Instant::now();
        let backend = self.backend;
        let results = self.for_each_part(Some(exa_obs::RegionKind::CoreDerivative), |_, part| {
            let t = Engine::branch_length(lengths, part.data.global_index);
            backend.derivatives_from_sumtable(part, t, None)
        });
        let mut d1 = Vec::with_capacity(results.len());
        let mut d2 = Vec::with_capacity(results.len());
        for (a, b, w) in results {
            d1.push(a);
            d2.push(b);
            self.work.deriv_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        (d1, d2)
    }

    /// [`Engine::derivatives`] variant that also hands the caller the
    /// per-pattern first/second-derivative addends of each local partition
    /// (`sink(local_index, d1_terms, d2_terms)`), for reproducible binned
    /// reduction.
    pub fn derivatives_with_terms(
        &mut self,
        lengths: &[f64],
        sink: &mut PairTermsSink<'_>,
    ) -> (Vec<f64>, Vec<f64>) {
        let _span = exa_obs::region(exa_obs::RegionKind::CoreDerivative);
        let started = std::time::Instant::now();
        let backend = self.backend;
        let results = self.for_each_part(None, |_, part| {
            let t = Engine::branch_length(lengths, part.data.global_index);
            let mut t1 = std::mem::take(&mut part.terms_a);
            let mut t2 = std::mem::take(&mut part.terms_b);
            let out = backend.derivatives_from_sumtable(part, t, Some((&mut t1, &mut t2)));
            part.terms_a = t1;
            part.terms_b = t2;
            out
        });
        let mut d1 = Vec::with_capacity(results.len());
        let mut d2 = Vec::with_capacity(results.len());
        for (local, (a, b, w)) in results.into_iter().enumerate() {
            let part = &self.parts[local];
            sink(local, &part.terms_a, &part.terms_b);
            d1.push(a);
            d2.push(b);
            self.work.deriv_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        (d1, d2)
    }

    /// Full-tree branch gradient: `(dlnL/dt, d²lnL/dt²)` for **every** edge
    /// of the plan, per local partition (`result[local][edge]`), in one
    /// pre-order sweep over materialized outside CLVs — a single kernel
    /// dispatch per batch instead of one `prepare`+`derivatives` pair per
    /// edge. Each edge's pair is produced by the *same*
    /// `derivatives_from_sumtable` kernel the per-edge path runs, from a
    /// sumtable whose sides are the canonical CLVs of the edge's two
    /// directions, so every entry is bitwise identical to what
    /// [`Engine::prepare_derivatives`] + [`Engine::derivatives`] would
    /// return at that edge. Inward CLVs must be valid and oriented toward
    /// the plan's root edge (execute the root's traversal descriptor first).
    pub fn edge_gradient(&mut self, plan: &GradientPlan) -> Vec<Vec<(f64, f64)>> {
        self.edge_gradient_impl(plan, false)
    }

    /// [`Engine::edge_gradient`] variant that also hands the caller the
    /// per-pattern first/second-derivative addends of every edge
    /// (`sink(local_index, edge, d1_terms, d2_terms)`, serially in
    /// local-partition-major order), for reproducible binned reduction.
    pub fn edge_gradient_with_terms(
        &mut self,
        plan: &GradientPlan,
        sink: &mut EdgeTermsSink<'_>,
    ) -> Vec<Vec<(f64, f64)>> {
        let out = self.edge_gradient_impl(plan, true);
        for local in 0..self.parts.len() {
            let part = &self.parts[local];
            for edge in 0..plan.n_edges {
                sink(local, edge, &part.grad_t1[edge], &part.grad_t2[edge]);
            }
        }
        out
    }

    fn edge_gradient_impl(
        &mut self,
        plan: &GradientPlan,
        want_terms: bool,
    ) -> Vec<Vec<(f64, f64)>> {
        let _span = exa_obs::region(exa_obs::RegionKind::CoreDerivative);
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let backend = self.backend;
        let results = self.for_each_part(Some(exa_obs::RegionKind::CoreDerivative), |_, part| {
            sweep_partition(backend, part, n_taxa, plan, want_terms)
        });
        let mut out = Vec::with_capacity(results.len());
        for (grad, w) in results {
            out.push(grad);
            self.work.deriv_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        out
    }

    /// Locally optimize per-pattern PSR rates (see the `site_rates` module) —
    /// returns `(Σ w·r, Σ w)` over local patterns so the caller can compute
    /// the global normalization with one small allreduce.
    pub fn optimize_site_rates(&mut self, d: &TraversalDescriptor) -> (f64, f64) {
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let results = self.for_each_part(None, |_, part| {
            site_rates::optimize_partition(part, n_taxa, d)
        });
        // The num/den accumulation order is observable in the f64 bits:
        // sum serially in local-partition order, exactly as before.
        let mut num = 0.0;
        let mut den = 0.0;
        for (n, dn, w) in results {
            num += n;
            den += dn;
            self.work.site_rate_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        (num, den)
    }

    /// [`Engine::optimize_site_rates`] variant that also hands the caller
    /// the per-pattern normalization addends (`sink(local_index, num_terms,
    /// den_terms)` with `numᵢ = wᵢ·rᵢ`, `denᵢ = wᵢ`) for reproducible binned
    /// reduction. Γ partitions contribute no terms. The terms are
    /// reconstructed from the optimized rates left in `psr_scratch`, so the
    /// kernel path is identical to the plain variant.
    pub fn optimize_site_rates_with_terms(
        &mut self,
        d: &TraversalDescriptor,
        sink: &mut PairTermsSink<'_>,
    ) -> (f64, f64) {
        let started = std::time::Instant::now();
        let n_taxa = self.n_taxa;
        let results = self.for_each_part(None, |_, part| {
            site_rates::optimize_partition(part, n_taxa, d)
        });
        // Terms are reconstructed serially from the optimized rates left in
        // `psr_scratch`, so the kernel path is identical to the plain
        // variant and the sink sees local-partition order.
        let mut num = 0.0;
        let mut den = 0.0;
        let mut num_terms = Vec::new();
        let mut den_terms = Vec::new();
        for (local, (n, dn, w)) in results.into_iter().enumerate() {
            let part = &self.parts[local];
            num_terms.clear();
            den_terms.clear();
            if matches!(part.rates, RateHeterogeneity::Psr { .. }) {
                for (i, &wgt) in part.data.weights.iter().enumerate() {
                    num_terms.push(wgt * part.psr_scratch[i]);
                    den_terms.push(wgt);
                }
            }
            sink(local, &num_terms, &den_terms);
            num += n;
            den += dn;
            self.work.site_rate_patterns += w;
        }
        self.work.dispatches += self.batches.len() as u64;
        self.work.kernel_ns += started.elapsed().as_nanos() as u64;
        (num, den)
    }

    /// Apply the global PSR normalization `scale` (= global Σw / Σw·r) and
    /// quantize rates into categories. Caller must invalidate CLVs.
    pub fn finalize_site_rates(&mut self, scale: f64) {
        for part in self.parts.iter_mut() {
            site_rates::finalize_partition(part, scale);
            // Re-quantization moves patterns between rate categories, which
            // are part of the PSR repeat-class keys.
            if matches!(part.rates, RateHeterogeneity::Psr { .. }) {
                part.repeat_epoch += 1;
            }
        }
    }
}

/// One partition's full-tree gradient sweep: root-edge derivatives straight
/// from the two inward sides, then each plan step materializes the parent's
/// outside CLV (uncompressed — bitwise-neutral w.r.t. site repeats, see the
/// `repeats` module doc) and runs the stock sumtable + derivative kernels at
/// that edge. Returns the per-edge `(d1, d2)` pairs and the pattern·category
/// work count.
fn sweep_partition(
    backend: &'static dyn KernelBackend,
    part: &mut PartitionState,
    n_taxa: usize,
    plan: &GradientPlan,
    want_terms: bool,
) -> (Vec<(f64, f64)>, u64) {
    let gi = part.data.global_index;
    let n_patterns = part.data.n_patterns();
    let clv_len = part.clv_len();
    let mut grad = vec![(0.0, 0.0); plan.n_edges];
    let mut work = 0u64;
    let mut grad_clv = std::mem::take(&mut part.grad_clv);
    let mut grad_scale = std::mem::take(&mut part.grad_scale);
    let mut grad_t1 = std::mem::take(&mut part.grad_t1);
    let mut grad_t2 = std::mem::take(&mut part.grad_t2);
    grad_clv.resize_with(plan.n_edges, Vec::new);
    grad_scale.resize_with(plan.n_edges, Vec::new);
    if want_terms {
        grad_t1.resize_with(plan.n_edges, Vec::new);
        grad_t2.resize_with(plan.n_edges, Vec::new);
    }
    // Root edge: sumtable straight from the two inward sides — exactly what
    // `make_sumtable` builds for the per-edge path.
    {
        let mut st = std::mem::take(&mut part.sumtable);
        {
            let a = root_side(part, n_taxa, plan.root_a);
            let b = root_side(part, n_taxa, plan.root_b);
            backend.sumtable_sides(part, &a, &b, &mut st);
        }
        part.sumtable = st;
    }
    work += grad_deriv_at(
        backend,
        part,
        &mut grad,
        &mut grad_t1,
        &mut grad_t2,
        want_terms,
        plan.root_edge,
        &plan.root_lengths,
        gi,
    );
    for step in &plan.steps {
        let mut out_clv = std::mem::take(&mut grad_clv[step.edge]);
        let mut out_scale = std::mem::take(&mut grad_scale[step.edge]);
        out_clv.resize(clv_len, 0.0);
        out_scale.resize(n_patterns, 0);
        let mut scratch = std::mem::take(&mut part.scratch);
        {
            let left = grad_source_side(part, n_taxa, &grad_clv, &grad_scale, &step.left);
            let right = grad_source_side(part, n_taxa, &grad_clv, &grad_scale, &step.right);
            let job = OutsideJob {
                t_left: Engine::branch_length(&step.left.lengths, gi),
                t_right: Engine::branch_length(&step.right.lengths, gi),
                left,
                right,
            };
            work +=
                backend.gradient_outside(part, &mut scratch, &job, &mut out_clv, &mut out_scale);
        }
        part.scratch = scratch;
        grad_clv[step.edge] = out_clv;
        grad_scale[step.edge] = out_scale;
        {
            let mut st = std::mem::take(&mut part.sumtable);
            {
                let outside = RootSide::Inner {
                    clv: &grad_clv[step.edge],
                    scale: &grad_scale[step.edge],
                };
                let inward = root_side(part, n_taxa, step.child);
                // `make_sumtable` roots at (edge.a, edge.b) with xa = edge.a's
                // side; mirror that orientation so the sumtable is bitwise
                // identical to the per-edge path's.
                let (a, b) = if step.swap_sides {
                    (&inward, &outside)
                } else {
                    (&outside, &inward)
                };
                backend.sumtable_sides(part, a, b, &mut st);
            }
            part.sumtable = st;
        }
        work += grad_deriv_at(
            backend,
            part,
            &mut grad,
            &mut grad_t1,
            &mut grad_t2,
            want_terms,
            step.edge,
            &step.lengths,
            gi,
        );
    }
    part.grad_clv = grad_clv;
    part.grad_scale = grad_scale;
    part.grad_t1 = grad_t1;
    part.grad_t2 = grad_t2;
    (grad, work)
}

#[allow(clippy::too_many_arguments)]
fn grad_deriv_at(
    backend: &dyn KernelBackend,
    part: &mut PartitionState,
    grad: &mut [(f64, f64)],
    t1: &mut [Vec<f64>],
    t2: &mut [Vec<f64>],
    want_terms: bool,
    edge: usize,
    lengths: &[f64],
    gi: usize,
) -> u64 {
    let t = Engine::branch_length(lengths, gi);
    let (d1, d2, w) = if want_terms {
        backend.derivatives_from_sumtable(part, t, Some((&mut t1[edge], &mut t2[edge])))
    } else {
        backend.derivatives_from_sumtable(part, t, None)
    };
    grad[edge] = (d1, d2);
    w
}

fn grad_source_side<'a>(
    part: &'a PartitionState,
    n_taxa: usize,
    grad_clv: &'a [Vec<f64>],
    grad_scale: &'a [Vec<u32>],
    src: &GradSource,
) -> RootSide<'a> {
    match src.from_outside {
        Some(e) => RootSide::Inner {
            clv: &grad_clv[e],
            scale: &grad_scale[e],
        },
        None => root_side(part, n_taxa, src.node),
    }
}
