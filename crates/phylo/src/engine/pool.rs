//! Intra-rank task parallelism for the batched kernel layer.
//!
//! A [`WorkerPool`] executes the per-batch items of one engine call across
//! `--threads N` OS threads *inside* a rank. Determinism is preserved by
//! construction: every batch item writes only its own indexed result slot
//! (partitions are independent — each kernel touches only its own
//! `PartitionState`), all cross-partition floating-point accumulation
//! happens serially on the calling thread in fixed local-partition order
//! after the pool call returns, and trace events are buffered per partition
//! and emitted serially (the tracer is single-claimant per rank). The
//! thread schedule is therefore invisible in the results: lnL bits are
//! identical for `--threads 1` and `--threads N` under both `--reduce`
//! modes.
//!
//! The pool is deliberately std-only (no rayon/crossbeam in the dependency
//! allowlist): a `Mutex`/`Condvar` job epoch plus an atomic work-claiming
//! cursor. Threads persist for the engine's lifetime; with one thread no
//! threads are spawned and `run` degenerates to an inline loop with zero
//! synchronization, so `--threads 1` is exactly the historical serial path.

use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A concrete intra-rank thread count, `1..=`[`ThreadCount::MAX`].
///
/// Like [`super::KernelKind`], the value must be uniform across ranks (it
/// is capability-negotiated and folded into the sentinel fingerprint) —
/// not because the arithmetic could differ (it cannot; see the module
/// docs), but because the hybrid-collective execution model it stands for
/// (§V: one MPI rank per node, threads inside) only makes sense world-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThreadCount(u8);

impl ThreadCount {
    /// Upper bound on negotiable thread counts (fits the one-byte
    /// capability slot with headroom).
    pub const MAX: usize = 64;

    /// Clamp `n` into the valid range.
    pub fn new(n: usize) -> ThreadCount {
        ThreadCount(n.clamp(1, Self::MAX) as u8)
    }

    /// The count as a plain `usize` (always ≥ 1).
    pub fn get(self) -> usize {
        self.0.max(1) as usize
    }

    /// Parse a CLI/env value (a decimal count in `1..=MAX`).
    pub fn parse(s: &str) -> Option<ThreadCount> {
        let n: usize = s.parse().ok()?;
        (1..=Self::MAX).contains(&n).then_some(ThreadCount(n as u8))
    }

    /// Capability level for the one-byte negotiation allgather: the count
    /// itself (a world of heterogeneous requests adopts the minimum, the
    /// only count every rank can run).
    pub fn capability_level(self) -> u8 {
        self.0.max(1)
    }

    /// Inverse of [`ThreadCount::capability_level`], saturating into the
    /// valid range.
    pub fn from_capability_level(level: u8) -> ThreadCount {
        ThreadCount(level.clamp(1, Self::MAX as u8))
    }

    /// Stable label (trace marks, health JSON, fingerprints).
    pub fn label(self) -> &'static str {
        const LABELS: [&str; ThreadCount::MAX + 1] = [
            "1", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
            "16", "17", "18", "19", "20", "21", "22", "23", "24", "25", "26", "27", "28", "29",
            "30", "31", "32", "33", "34", "35", "36", "37", "38", "39", "40", "41", "42", "43",
            "44", "45", "46", "47", "48", "49", "50", "51", "52", "53", "54", "55", "56", "57",
            "58", "59", "60", "61", "62", "63", "64",
        ];
        LABELS[self.get().min(Self::MAX)]
    }
}

impl std::fmt::Display for ThreadCount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A thread-count policy, as requested on the command line or via the
/// `EXAML_THREADS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadsChoice {
    /// Force a specific count.
    Count(ThreadCount),
    /// Negotiate. Resolves to 1: in-process multi-rank worlds already run
    /// one OS thread per rank, so threading is strictly opt-in — `auto`
    /// must never multiply a 32-rank world by the machine's core count.
    Auto,
}

impl ThreadsChoice {
    /// Parse a CLI/env value (`auto` or a count in `1..=64`).
    pub fn parse(s: &str) -> Option<ThreadsChoice> {
        if s == "auto" {
            return Some(ThreadsChoice::Auto);
        }
        ThreadCount::parse(s).map(ThreadsChoice::Count)
    }

    /// Stable label.
    pub fn label(&self) -> &'static str {
        match self {
            ThreadsChoice::Count(n) => n.label(),
            ThreadsChoice::Auto => "auto",
        }
    }

    /// The process-wide default: `EXAML_THREADS` if set to a valid value,
    /// otherwise `auto`. Invalid values fall back to `auto` rather than
    /// aborting, mirroring `EXAML_KERNEL`.
    pub fn from_env() -> ThreadsChoice {
        match std::env::var("EXAML_THREADS") {
            Ok(v) => ThreadsChoice::parse(&v).unwrap_or(ThreadsChoice::Auto),
            Err(_) => ThreadsChoice::Auto,
        }
    }

    /// Resolve this policy locally. Multi-rank drivers negotiate via
    /// [`ThreadsChoice::capability_level`] instead.
    pub fn resolve_local(self) -> ThreadCount {
        match self {
            ThreadsChoice::Count(n) => n,
            ThreadsChoice::Auto => ThreadCount::new(1),
        }
    }

    /// The capability level this rank advertises in the negotiation
    /// allgather.
    pub fn capability_level(self) -> u8 {
        self.resolve_local().capability_level()
    }
}

impl std::fmt::Display for ThreadsChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A borrowed task function with its lifetime erased. Sound because
/// [`WorkerPool::run`] does not return until every claimed task completed,
/// so the erased borrow strictly outlives all uses.
type Job = &'static (dyn Fn(usize) + Sync);

struct PoolState {
    job: Option<Job>,
    n_tasks: usize,
    /// Tasks published but not yet completed. Kept under the mutex (not an
    /// atomic) so the caller's completion wait cannot miss a wakeup.
    pending: usize,
    /// Bumped per published job so sleeping workers distinguish "new job"
    /// from a spurious wakeup.
    epoch: u64,
    shutdown: bool,
    /// First panic payload observed in any task, re-raised on the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    job_done: Condvar,
    /// Work-claiming cursor: each task index is claimed by exactly one
    /// thread via `fetch_add`.
    cursor: AtomicUsize,
}

/// Persistent intra-rank worker pool: `threads - 1` spawned workers plus
/// the calling thread all claim task indices from a shared cursor.
pub struct WorkerPool {
    threads: usize,
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Create a pool of `threads` total executors (1 = no spawned threads,
    /// fully inline execution).
    pub fn new(threads: usize) -> WorkerPool {
        let threads = threads.clamp(1, ThreadCount::MAX);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                n_tasks: 0,
                pending: 0,
                epoch: 0,
                shutdown: false,
                panic: None,
            }),
            work_ready: Condvar::new(),
            job_done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool {
            threads,
            shared,
            handles,
        }
    }

    /// Total executor count (spawned workers + the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute `f(0..n_tasks)` with each index run exactly once, in
    /// parallel across the pool. Returns after every task completed; if any
    /// task panicked, the first payload is re-raised here (after all other
    /// tasks finished, so no task is abandoned mid-write).
    pub fn run(&self, n_tasks: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.threads == 1 || n_tasks <= 1 {
            // The historical serial path: no synchronization, no
            // catch_unwind, panics propagate with their original payload.
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        // Erase the borrow's lifetime to publish it to the workers; the
        // completion wait below upholds the `Job` soundness contract.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        {
            let mut st = self.shared.state.lock().unwrap();
            st.job = Some(job);
            st.n_tasks = n_tasks;
            st.pending = n_tasks;
            st.epoch += 1;
            self.shared.cursor.store(0, Ordering::SeqCst);
        }
        self.shared.work_ready.notify_all();
        // The caller is an executor too.
        run_tasks(&self.shared, job, n_tasks);
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.job_done.wait(st).unwrap();
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and run tasks until the cursor is exhausted. Every claimed index
/// decrements `pending` exactly once, panic or not, so the caller's
/// completion wait always terminates.
fn run_tasks(shared: &PoolShared, job: Job, n_tasks: usize) {
    loop {
        let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n_tasks {
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| job(i)));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.job_done.notify_all();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut seen_epoch = 0u64;
    loop {
        let (job, n_tasks) = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    if let Some(job) = st.job {
                        break (job, st.n_tasks);
                    }
                }
                st = shared.work_ready.wait(st).unwrap();
            }
        };
        run_tasks(shared, job, n_tasks);
    }
}

/// Indexed mutable task slots shared across pool threads.
///
/// Safety contract: [`TaskSlots::slot`] may only be called with indices
/// handed out by a claiming scheme that gives each index to exactly one
/// thread at a time ([`WorkerPool::run`]'s cursor does).
pub(crate) struct TaskSlots<T>(Vec<std::cell::UnsafeCell<T>>);

// SAFETY: disjoint-index access only, per the contract above.
unsafe impl<T: Send> Sync for TaskSlots<T> {}

impl<T> TaskSlots<T> {
    pub fn new(items: Vec<T>) -> TaskSlots<T> {
        TaskSlots(items.into_iter().map(std::cell::UnsafeCell::new).collect())
    }

    /// # Safety
    /// `i` must currently be claimed by the calling thread alone.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slot(&self, i: usize) -> &mut T {
        &mut *self.0[i].get()
    }

    #[cfg(test)]
    pub fn into_inner(self) -> Vec<T> {
        self.0.into_iter().map(|c| c.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn thread_count_parses_and_clamps() {
        assert_eq!(ThreadCount::parse("1"), Some(ThreadCount::new(1)));
        assert_eq!(ThreadCount::parse("64"), Some(ThreadCount::new(64)));
        assert_eq!(ThreadCount::parse("0"), None);
        assert_eq!(ThreadCount::parse("65"), None);
        assert_eq!(ThreadCount::parse("two"), None);
        assert_eq!(ThreadCount::new(1000).get(), ThreadCount::MAX);
        assert_eq!(ThreadCount::new(8).label(), "8");
    }

    #[test]
    fn threads_choice_parses_and_resolves() {
        assert_eq!(ThreadsChoice::parse("auto"), Some(ThreadsChoice::Auto));
        assert_eq!(
            ThreadsChoice::parse("4"),
            Some(ThreadsChoice::Count(ThreadCount::new(4)))
        );
        assert_eq!(ThreadsChoice::parse("zero"), None);
        // Auto is strictly opt-in: it must resolve to 1, never to the
        // machine's parallelism (in-process worlds run one thread per rank
        // already).
        assert_eq!(ThreadsChoice::Auto.resolve_local().get(), 1);
        assert_eq!(ThreadsChoice::Auto.capability_level(), 1);
    }

    #[test]
    fn capability_level_roundtrips() {
        for n in [1usize, 2, 8, 64] {
            let c = ThreadCount::new(n);
            assert_eq!(ThreadCount::from_capability_level(c.capability_level()), c);
        }
        assert_eq!(ThreadCount::from_capability_level(0).get(), 1);
        assert_eq!(
            ThreadCount::from_capability_level(200).get(),
            ThreadCount::MAX
        );
    }

    #[test]
    fn pool_runs_every_index_exactly_once() {
        for threads in [1usize, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            for n_tasks in [0usize, 1, 3, 17, 100] {
                let hits: Vec<AtomicU64> = (0..n_tasks).map(|_| AtomicU64::new(0)).collect();
                pool.run(n_tasks, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "task {i} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn pool_writes_land_in_indexed_slots() {
        let pool = WorkerPool::new(4);
        let slots = TaskSlots::new(vec![0u64; 64]);
        pool.run(64, &|i| {
            // SAFETY: each index is claimed by exactly one thread.
            *unsafe { slots.slot(i) } = (i * i) as u64;
        });
        let out = slots.into_inner();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i * i) as u64);
        }
    }

    #[test]
    fn pool_is_reusable_across_jobs() {
        let pool = WorkerPool::new(3);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(10, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * 45);
    }

    #[test]
    fn task_panic_propagates_after_all_tasks_finish() {
        let pool = WorkerPool::new(4);
        let completed = AtomicU64::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, &|i| {
                if i == 7 {
                    panic!("boom at {i}");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Every non-panicking task still ran (no abandonment mid-job).
        assert_eq!(completed.load(Ordering::Relaxed), 31);
        // The pool survives and remains usable.
        pool.run(4, &|_| {
            completed.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(completed.load(Ordering::Relaxed), 35);
    }

    #[test]
    fn panic_payload_is_preserved() {
        #[derive(Debug, PartialEq)]
        struct Marker(u32);
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                if i == 3 {
                    std::panic::panic_any(Marker(42));
                }
            });
        }));
        let payload = result.unwrap_err();
        assert_eq!(payload.downcast_ref::<Marker>(), Some(&Marker(42)));
    }
}
