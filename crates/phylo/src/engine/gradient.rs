//! Full-tree analytic branch-gradient configuration.
//!
//! The gradient sweep (see [`Engine::edge_gradient`](super::Engine::edge_gradient))
//! computes `dlnL/dt` (and curvature) for **every** edge in one post-order +
//! pre-order pass, so a branch-length-optimization pass needs a single fat
//! collective instead of one small derivative allreduce per edge (Ji et al.,
//! "Gradients do grow on trees"). Whether BLO is driven from the sweep or
//! from the historical per-edge Newton loop is a run-wide setting: both
//! produce bitwise-identical branch lengths and likelihoods, but the
//! *collective call sequence* differs, so mixed worlds would deadlock. The
//! setting is therefore negotiated exactly like the kernel backend and
//! site-repeat compression (one-byte capability allgather, minimum wins) and
//! folded into the replica sentinel's backend fingerprint, which catches a
//! forced mixed world at the first sync.

use serde::{Deserialize, Serialize};

/// Whether branch-length optimization is driven by the one-pass full-tree
/// gradient sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradientMode {
    On,
    Off,
}

impl GradientMode {
    /// Stable lowercase label (CLI values, trace/health stamps).
    pub fn label(&self) -> &'static str {
        match self {
            GradientMode::On => "on",
            GradientMode::Off => "off",
        }
    }

    /// Capability level for the one-byte auto-negotiation allgather
    /// (minimum wins: any rank advertising `off` disables the sweep
    /// everywhere).
    pub fn capability_level(&self) -> u8 {
        match self {
            GradientMode::Off => 0,
            GradientMode::On => 1,
        }
    }

    /// Inverse of [`GradientMode::capability_level`], saturating up for
    /// unknown (future) levels.
    pub fn from_capability_level(level: u8) -> GradientMode {
        if level >= 1 {
            GradientMode::On
        } else {
            GradientMode::Off
        }
    }
}

impl std::fmt::Display for GradientMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A gradient-BLO policy, as requested on the command line or via the
/// `EXAML_GRADIENT` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientChoice {
    /// Force the gradient-driven BLO pass.
    On,
    /// Force the historical per-edge Newton loop.
    Off,
    /// Enable unless some rank opts out (requires negotiation in multi-rank
    /// runs; locally resolves to on — the sweep is pure software).
    Auto,
}

impl GradientChoice {
    /// Parse a CLI/env value (`on`, `off`, `auto`).
    pub fn parse(s: &str) -> Option<GradientChoice> {
        match s {
            "on" => Some(GradientChoice::On),
            "off" => Some(GradientChoice::Off),
            "auto" => Some(GradientChoice::Auto),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            GradientChoice::On => "on",
            GradientChoice::Off => "off",
            GradientChoice::Auto => "auto",
        }
    }

    /// The process-wide default: `EXAML_GRADIENT` if set to a valid value,
    /// otherwise `auto`. Invalid values fall back to `auto` rather than
    /// aborting — the engine is used far from any CLI error path.
    pub fn from_env() -> GradientChoice {
        match std::env::var("EXAML_GRADIENT") {
            Ok(v) => GradientChoice::parse(&v).unwrap_or(GradientChoice::Auto),
            Err(_) => GradientChoice::Auto,
        }
    }

    /// Resolve this policy locally. Multi-rank drivers must instead exchange
    /// [`GradientChoice::capability_level`]s and agree on the minimum.
    pub fn resolve_local(self) -> GradientMode {
        match self {
            GradientChoice::On => GradientMode::On,
            GradientChoice::Off => GradientMode::Off,
            GradientChoice::Auto => GradientMode::On,
        }
    }

    /// The capability level this rank advertises in the auto-negotiation
    /// allgather.
    pub fn capability_level(self) -> u8 {
        self.resolve_local().capability_level()
    }
}

impl std::fmt::Display for GradientChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for choice in [
            GradientChoice::On,
            GradientChoice::Off,
            GradientChoice::Auto,
        ] {
            assert_eq!(GradientChoice::parse(choice.label()), Some(choice));
        }
        assert_eq!(GradientChoice::parse("newton"), None);
    }

    #[test]
    fn capability_levels_are_ordered_and_invertible() {
        assert!(GradientMode::Off.capability_level() < GradientMode::On.capability_level());
        for mode in [GradientMode::On, GradientMode::Off] {
            assert_eq!(
                GradientMode::from_capability_level(mode.capability_level()),
                mode
            );
        }
        // Unknown future levels saturate to the best we know.
        assert_eq!(GradientMode::from_capability_level(200), GradientMode::On);
    }

    #[test]
    fn auto_resolves_on() {
        assert_eq!(GradientChoice::Auto.resolve_local(), GradientMode::On);
        assert_eq!(
            GradientChoice::Auto.capability_level(),
            GradientMode::On.capability_level()
        );
        assert_eq!(GradientChoice::Off.resolve_local(), GradientMode::Off);
    }
}
