//! The three likelihood kernels: `newview`, `evaluate`, and the
//! sumtable-based branch-length derivatives.
//!
//! All kernels run per local partition and are generic over the two rate
//! models through a small category-indirection: under Γ every pattern
//! integrates over all category P-matrices (weight 1/k each); under PSR each
//! pattern uses the single P-matrix of its quantized rate category.

use super::{Engine, PartitionState, LN_MIN_LIKELIHOOD, MIN_LIKELIHOOD, TWO_TO_256};
use crate::model::pmatrix::{prob_matrix, ProbMatrix};
use crate::model::rates::RateHeterogeneity;
use crate::tree::traversal::{TraversalDescriptor, TraversalEntry};
use exa_bio::dna::NUM_STATES;

/// Precomputed tip contribution: `lookup[k][code][s] = Σ_t P_k[s][t] · tip(code)[t]`
/// for each of the 16 possible 4-bit codes.
fn build_tip_lookup(ps: &[ProbMatrix]) -> Vec<[[f64; NUM_STATES]; 16]> {
    ps.iter()
        .map(|p| {
            let mut table = [[0.0; NUM_STATES]; 16];
            for (code, entry) in table.iter_mut().enumerate() {
                for s in 0..NUM_STATES {
                    let mut acc = 0.0;
                    for t in 0..NUM_STATES {
                        if code & (1 << t) != 0 {
                            acc += p[s][t];
                        }
                    }
                    entry[s] = acc;
                }
            }
            table
        })
        .collect()
}

/// The distinct rate multipliers that need P-matrices, shared by all
/// kernels.
fn p_matrices(part: &PartitionState, t: f64) -> Vec<ProbMatrix> {
    part.rates
        .distinct_rates()
        .iter()
        .map(|&r| prob_matrix(&part.model, t, r))
        .collect()
}

/// Which P-matrix index pattern `i`, category `c` uses.
#[inline]
fn cat_index(rates: &RateHeterogeneity, i: usize, c: usize) -> usize {
    match rates {
        RateHeterogeneity::Gamma { .. } => c,
        RateHeterogeneity::Psr { pattern_cat, .. } => pattern_cat[i] as usize,
    }
}

/// One child's contribution to a parent CLV state: either through the tip
/// lookup or by a matrix–vector product against the child's CLV block.
enum Child<'a> {
    Tip {
        codes: &'a [u8],
        lookup: Vec<[[f64; NUM_STATES]; 16]>,
    },
    Inner {
        clv: &'a [f64],
        scale: &'a [u32],
        ps: Vec<ProbMatrix>,
    },
}

impl<'a> Child<'a> {
    #[inline]
    fn contribution(&self, i: usize, c: usize, cats: usize, k: usize, out: &mut [f64; NUM_STATES]) {
        match self {
            Child::Tip { codes, lookup } => {
                *out = lookup[k][codes[i] as usize & 0xf];
            }
            Child::Inner { clv, ps, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                let block = &clv[base..base + NUM_STATES];
                let p = &ps[k];
                for (s, o) in out.iter_mut().enumerate() {
                    let row = &p[s];
                    *o = row[0] * block[0]
                        + row[1] * block[1]
                        + row[2] * block[2]
                        + row[3] * block[3];
                }
            }
        }
    }

    #[inline]
    fn scale_of(&self, i: usize) -> u32 {
        match self {
            Child::Tip { .. } => 0,
            Child::Inner { scale, .. } => scale[i],
        }
    }
}

/// Recompute the parent CLV of one traversal entry. Returns the work done in
/// pattern-categories.
pub(crate) fn newview_entry(
    part: &mut PartitionState,
    n_taxa: usize,
    entry: &TraversalEntry,
) -> u64 {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let gi = part.data.global_index;
    let t_left = Engine::branch_length(&entry.left_lengths, gi);
    let t_right = Engine::branch_length(&entry.right_lengths, gi);

    let ps_left = p_matrices(part, t_left);
    let ps_right = p_matrices(part, t_right);

    let parent_idx = entry.parent - n_taxa;
    let mut parent_clv = std::mem::take(&mut part.clv[parent_idx]);
    let mut parent_scale = std::mem::take(&mut part.scale[parent_idx]);

    {
        fn make_child<'a>(
            part: &'a PartitionState,
            n_taxa: usize,
            node: usize,
            ps: Vec<ProbMatrix>,
        ) -> Child<'a> {
            if node < n_taxa {
                Child::Tip {
                    codes: &part.data.tips[node],
                    lookup: build_tip_lookup(&ps),
                }
            } else {
                let idx = node - n_taxa;
                Child::Inner {
                    clv: &part.clv[idx],
                    scale: &part.scale[idx],
                    ps,
                }
            }
        }
        let left = make_child(part, n_taxa, entry.left, ps_left);
        let right = make_child(part, n_taxa, entry.right, ps_right);

        let mut lv = [0.0; NUM_STATES];
        let mut rv = [0.0; NUM_STATES];
        for i in 0..n_patterns {
            let mut maxv = 0.0f64;
            let base_i = i * cats * NUM_STATES;
            for c in 0..cats {
                let k = cat_index(&part.rates, i, c);
                left.contribution(i, c, cats, k, &mut lv);
                right.contribution(i, c, cats, k, &mut rv);
                let out = &mut parent_clv[base_i + c * NUM_STATES..base_i + (c + 1) * NUM_STATES];
                for s in 0..NUM_STATES {
                    let v = lv[s] * rv[s];
                    out[s] = v;
                    maxv = maxv.max(v.abs());
                }
            }
            let mut count = left.scale_of(i) + right.scale_of(i);
            if maxv < MIN_LIKELIHOOD {
                for v in parent_clv[base_i..base_i + cats * NUM_STATES].iter_mut() {
                    *v *= TWO_TO_256;
                }
                count += 1;
            }
            parent_scale[i] = count;
        }
    }

    part.clv[parent_idx] = parent_clv;
    part.scale[parent_idx] = parent_scale;
    (n_patterns * cats) as u64
}

/// Per-pattern state vector access at the virtual root: tip codes or CLV.
enum RootSide<'a> {
    Tip(&'a [u8]),
    Inner { clv: &'a [f64], scale: &'a [u32] },
}

impl<'a> RootSide<'a> {
    #[inline]
    fn state(&self, i: usize, c: usize, cats: usize, out: &mut [f64; NUM_STATES]) {
        match self {
            RootSide::Tip(codes) => {
                let code = codes[i] as usize & 0xf;
                for (s, o) in out.iter_mut().enumerate() {
                    *o = if code & (1 << s) != 0 { 1.0 } else { 0.0 };
                }
            }
            RootSide::Inner { clv, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                out.copy_from_slice(&clv[base..base + NUM_STATES]);
            }
        }
    }

    #[inline]
    fn scale_of(&self, i: usize) -> u32 {
        match self {
            RootSide::Tip(_) => 0,
            RootSide::Inner { scale, .. } => scale[i],
        }
    }
}

fn root_side<'a>(part: &'a PartitionState, n_taxa: usize, node: usize) -> RootSide<'a> {
    if node < n_taxa {
        RootSide::Tip(&part.data.tips[node])
    } else {
        let idx = node - n_taxa;
        RootSide::Inner {
            clv: &part.clv[idx],
            scale: &part.scale[idx],
        }
    }
}

/// Log-likelihood of one partition at the descriptor's virtual root.
pub(crate) fn evaluate_root(
    part: &PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
) -> (f64, u64) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let gi = part.data.global_index;
    let t = Engine::branch_length(&d.root_lengths, gi);
    let ps = p_matrices(part, t);
    let freqs = *part.model.freqs();
    let cat_weight = match &part.rates {
        RateHeterogeneity::Gamma { rates, .. } => 1.0 / rates.len() as f64,
        RateHeterogeneity::Psr { .. } => 1.0,
    };

    let a = root_side(part, n_taxa, d.root_a);
    let b = root_side(part, n_taxa, d.root_b);

    let mut lnl = 0.0f64;
    let mut xa = [0.0; NUM_STATES];
    let mut xb = [0.0; NUM_STATES];
    for i in 0..n_patterns {
        let mut site = 0.0f64;
        for c in 0..cats {
            let k = cat_index(&part.rates, i, c);
            a.state(i, c, cats, &mut xa);
            b.state(i, c, cats, &mut xb);
            let p = &ps[k];
            let mut acc = 0.0;
            for s in 0..NUM_STATES {
                let row = &p[s];
                let pb = row[0] * xb[0] + row[1] * xb[1] + row[2] * xb[2] + row[3] * xb[3];
                acc += freqs[s] * xa[s] * pb;
            }
            site += cat_weight * acc;
        }
        let count = a.scale_of(i) + b.scale_of(i);
        let site = site.max(f64::MIN_POSITIVE);
        lnl += part.data.weights[i] * (site.ln() + count as f64 * LN_MIN_LIKELIHOOD);
    }
    (lnl, (n_patterns * cats) as u64)
}

/// Build the derivative sumtable for the descriptor's root edge:
/// `ST[(i·cats+c)·4+e] = (Σ_s π_s x_a[s] V[s,e]) · (Σ_t V⁻¹[e,t] x_b[t])`.
/// The branch length itself enters only in [`derivatives_from_sumtable`],
/// so Newton–Raphson iterations reuse one sumtable (RAxML's scheme).
pub(crate) fn make_sumtable(part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let freqs = *part.model.freqs();
    let v = *part.model.v();
    let vi = *part.model.v_inv();

    let mut sumtable = std::mem::take(&mut part.sumtable);
    sumtable.resize(n_patterns * cats * NUM_STATES, 0.0);
    {
        let a = root_side(part, n_taxa, d.root_a);
        let b = root_side(part, n_taxa, d.root_b);
        let mut xa = [0.0; NUM_STATES];
        let mut xb = [0.0; NUM_STATES];
        for i in 0..n_patterns {
            for c in 0..cats {
                a.state(i, c, cats, &mut xa);
                b.state(i, c, cats, &mut xb);
                let base = (i * cats + c) * NUM_STATES;
                for e in 0..NUM_STATES {
                    let mut ae = 0.0;
                    let mut be = 0.0;
                    for s in 0..NUM_STATES {
                        ae += freqs[s] * xa[s] * v[s][e];
                        be += vi[e][s] * xb[s];
                    }
                    sumtable[base + e] = ae * be;
                }
            }
        }
    }
    part.sumtable = sumtable;
}

/// `(dlnL/dt, d²lnL/dt²)` of one partition at branch length `t`, from the
/// prepared sumtable. Scaling constants cancel in the `L'/L` ratios.
pub(crate) fn derivatives_from_sumtable(part: &PartitionState, t: f64) -> (f64, f64, u64) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let lam = *part.model.eigenvalues();
    let distinct = part.rates.distinct_rates();
    let cat_weight = match &part.rates {
        RateHeterogeneity::Gamma { rates, .. } => 1.0 / rates.len() as f64,
        RateHeterogeneity::Psr { .. } => 1.0,
    };

    // Precompute exp(λ_e · r_k · t) and its derivative factors per distinct
    // rate k.
    let mut ex: Vec<[f64; NUM_STATES]> = Vec::with_capacity(distinct.len());
    let mut lr1: Vec<[f64; NUM_STATES]> = Vec::with_capacity(distinct.len());
    for &r in distinct {
        let mut e = [0.0; NUM_STATES];
        let mut l1 = [0.0; NUM_STATES];
        for k in 0..NUM_STATES {
            let lk = lam[k] * r;
            e[k] = (lk * t).exp();
            l1[k] = lk;
        }
        ex.push(e);
        lr1.push(l1);
    }

    let mut d1_sum = 0.0f64;
    let mut d2_sum = 0.0f64;
    for i in 0..n_patterns {
        let mut l = 0.0f64;
        let mut l1 = 0.0f64;
        let mut l2 = 0.0f64;
        for c in 0..cats {
            let k = cat_index(&part.rates, i, c);
            let base = (i * cats + c) * NUM_STATES;
            let e = &ex[k];
            let lk = &lr1[k];
            for s in 0..NUM_STATES {
                let w = part.sumtable[base + s] * e[s];
                l += w;
                l1 += w * lk[s];
                l2 += w * lk[s] * lk[s];
            }
        }
        l *= cat_weight;
        l1 *= cat_weight;
        l2 *= cat_weight;
        let l = l.max(f64::MIN_POSITIVE);
        let ratio1 = l1 / l;
        let ratio2 = l2 / l;
        let wgt = part.data.weights[i];
        d1_sum += wgt * ratio1;
        d2_sum += wgt * (ratio2 - ratio1 * ratio1);
    }
    (d1_sum, d2_sum, (n_patterns * cats) as u64)
}
