//! PSR (per-site rate) optimization.
//!
//! Under PSR every pattern owns an evolutionary rate. Optimizing it requires
//! the likelihood of *that single pattern* as a function of a rate that
//! scales **every** branch of the tree, so each candidate rate needs a full
//! single-pattern tree traversal (RAxML's `evaluatePartialGeneric`). Rates
//! are searched on a multiplicative grid around the current value, then
//! globally normalized to weighted mean 1 and quantized into at most
//! [`crate::model::rates::PSR_MAX_CATEGORIES`] categories.
//!
//! Crucially for the paper: each pattern's optimization touches only data
//! local to the rank owning that pattern; the only communication is the
//! 2-double allreduce for the normalization constant (§III-B's "additional
//! MPI calls to handle the CAT model").

use super::{Engine, PartitionState, LN_MIN_LIKELIHOOD, MIN_LIKELIHOOD, TWO_TO_256};
use crate::model::pmatrix::prob_matrix;
use crate::model::rates::{RateHeterogeneity, PSR_MAX_CATEGORIES, PSR_RATE_MAX, PSR_RATE_MIN};
use crate::tree::traversal::TraversalDescriptor;
use exa_bio::dna::NUM_STATES;

/// Multiplicative search grid around the current rate.
const GRID: [f64; 7] = [0.25, 0.5, 0.75, 1.0, 4.0 / 3.0, 2.0, 4.0];

/// Optimize all pattern rates of one partition. Returns
/// `(Σ wᵢ·rᵢ, Σ wᵢ, work)`; rates are stored in `psr_scratch` pending
/// global normalization. No-op (zeros) for Γ partitions.
pub(crate) fn optimize_partition(
    part: &mut PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
) -> (f64, f64, u64) {
    if !matches!(part.rates, RateHeterogeneity::Psr { .. }) {
        return (0.0, 0.0, 0);
    }
    let n_patterns = part.data.n_patterns();
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    let mut work = 0u64;
    let mut scratch = std::mem::take(&mut part.psr_scratch);
    for i in 0..n_patterns {
        let r0 = part
            .rates
            .pattern_rate(i)
            .expect("PSR partition has per-pattern rates");
        let mut best_r = r0;
        let mut best_lnl = f64::NEG_INFINITY;
        for g in GRID {
            let r = (r0 * g).clamp(PSR_RATE_MIN, PSR_RATE_MAX);
            let lnl = single_pattern_lnl(part, n_taxa, d, i, r);
            work += d.entries.len() as u64 + 1;
            if lnl > best_lnl {
                best_lnl = lnl;
                best_r = r;
            }
        }
        scratch[i] = best_r;
        num += part.data.weights[i] * best_r;
        den += part.data.weights[i];
    }
    part.psr_scratch = scratch;
    (num, den, work)
}

/// Apply the global normalization and quantize.
pub(crate) fn finalize_partition(part: &mut PartitionState, scale: f64) {
    if !matches!(part.rates, RateHeterogeneity::Psr { .. }) {
        return;
    }
    let scaled: Vec<f64> = part.psr_scratch.iter().map(|r| r * scale).collect();
    part.rates
        .set_pattern_rates(&scaled, &part.data.weights, PSR_MAX_CATEGORIES);
}

/// Log-likelihood of the single pattern `i` with every branch scaled by
/// rate `r`, via a full traversal over the descriptor entries.
fn single_pattern_lnl(
    part: &PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
    i: usize,
    r: f64,
) -> f64 {
    let gi = part.data.global_index;
    let n_inner = n_taxa - 2;
    let mut clv = vec![[0.0f64; NUM_STATES]; n_inner];
    let mut scale = vec![0u32; n_inner];

    let state_of = |node: usize, clv: &[[f64; NUM_STATES]], out: &mut [f64; NUM_STATES]| {
        if node < n_taxa {
            let code = part.data.tips[node][i] as usize & 0xf;
            for (s, o) in out.iter_mut().enumerate() {
                *o = if code & (1 << s) != 0 { 1.0 } else { 0.0 };
            }
        } else {
            *out = clv[node - n_taxa];
        }
    };

    let mut xl = [0.0; NUM_STATES];
    let mut xr = [0.0; NUM_STATES];
    for entry in &d.entries {
        let tl = Engine::branch_length(&entry.left_lengths, gi);
        let tr = Engine::branch_length(&entry.right_lengths, gi);
        let pl = prob_matrix(&part.model, tl, r);
        let pr = prob_matrix(&part.model, tr, r);
        state_of(entry.left, &clv, &mut xl);
        state_of(entry.right, &clv, &mut xr);
        let mut out = [0.0; NUM_STATES];
        let mut maxv = 0.0f64;
        for s in 0..NUM_STATES {
            let l = pl[s][0] * xl[0] + pl[s][1] * xl[1] + pl[s][2] * xl[2] + pl[s][3] * xl[3];
            let rr = pr[s][0] * xr[0] + pr[s][1] * xr[1] + pr[s][2] * xr[2] + pr[s][3] * xr[3];
            out[s] = l * rr;
            maxv = maxv.max(out[s].abs());
        }
        let pi = entry.parent - n_taxa;
        let mut count = 0u32;
        for node in [entry.left, entry.right] {
            if node >= n_taxa {
                count += scale[node - n_taxa];
            }
        }
        if maxv < MIN_LIKELIHOOD {
            for o in out.iter_mut() {
                *o *= TWO_TO_256;
            }
            count += 1;
        }
        clv[pi] = out;
        scale[pi] = count;
    }

    // Root evaluation.
    let t_root = Engine::branch_length(&d.root_lengths, gi);
    let p = prob_matrix(&part.model, t_root, r);
    let freqs = part.model.freqs();
    let mut xa = [0.0; NUM_STATES];
    let mut xb = [0.0; NUM_STATES];
    state_of(d.root_a, &clv, &mut xa);
    state_of(d.root_b, &clv, &mut xb);
    let mut acc = 0.0f64;
    for s in 0..NUM_STATES {
        let pb = p[s][0] * xb[0] + p[s][1] * xb[1] + p[s][2] * xb[2] + p[s][3] * xb[3];
        acc += freqs[s] * xa[s] * pb;
    }
    let mut count = 0u32;
    for node in [d.root_a, d.root_b] {
        if node >= n_taxa {
            count += scale[node - n_taxa];
        }
    }
    acc.max(f64::MIN_POSITIVE).ln() + count as f64 * LN_MIN_LIKELIHOOD
}
