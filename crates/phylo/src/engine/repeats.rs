//! Subtree-repeat CLV compression for `newview`.
//!
//! Per inner node the engine keeps the node's [`RepeatClasses`] (built
//! bottom-up from the two children's class ids, see [`exa_bio::repeats`]).
//! `newview` then runs only over class *representatives*; the
//! representative's CLV column and scaling count are copied into every
//! duplicate slot. Because a per-pattern `newview` column depends only on
//! that pattern's child columns (no cross-pattern accumulation), the copies
//! are bitwise identical to what a full computation would have produced —
//! repeats on/off changes wall-clock, never bits.
//!
//! # Caching and invalidation
//!
//! A node's table is keyed by `(left child, right child, left stamp,
//! right stamp, rate epoch)`. Stamps are per-node rebuild counters (tips are
//! constant, stamp 0), so any topology change below a node cascades exactly
//! to the tables that depend on it — and those nodes' CLVs are invalid for
//! the same reason, so the rebuild rides along with the `newview` the
//! traversal descriptor already demands. Model-parameter changes (α, GTR
//! rates, branch lengths) do **not** touch the tables: classes depend only
//! on induced tip patterns. The one exception is PSR: the per-pattern rate
//! category is part of the class key (patterns in different categories use
//! different P-matrices), so re-quantizing site rates bumps the partition's
//! `repeat_epoch` and invalidates every table.
//!
//! # Uniformity across ranks
//!
//! The setting must be uniform across ranks for the same reason as the
//! kernel backend: results agree bitwise either way, but the replica
//! sentinel fingerprints the configuration (and heartbeat work counters
//! would silently diverge). Multi-rank drivers negotiate [`RepeatsChoice`]
//! exactly like `KernelChoice` (one-byte capability allgather, minimum
//! wins).

use super::PartitionState;
use crate::model::rates::RateHeterogeneity;
use crate::tree::traversal::TraversalEntry;
use exa_bio::dna::NUM_STATES;
use exa_bio::repeats::{pair_classes_into, ClassSource, RepeatClasses, TIP_CLASS_COUNT};
use serde::{Deserialize, Serialize};

/// Whether an engine compresses repeated subtree patterns in `newview`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteRepeats {
    On,
    Off,
}

impl SiteRepeats {
    /// Stable lowercase label (CLI values, trace/health stamps).
    pub fn label(&self) -> &'static str {
        match self {
            SiteRepeats::On => "on",
            SiteRepeats::Off => "off",
        }
    }

    /// Capability level for the one-byte auto-negotiation allgather
    /// (minimum wins: any rank advertising `off` turns compression off
    /// everywhere).
    pub fn capability_level(&self) -> u8 {
        match self {
            SiteRepeats::Off => 0,
            SiteRepeats::On => 1,
        }
    }

    /// Inverse of [`SiteRepeats::capability_level`], saturating up for
    /// unknown (future) levels.
    pub fn from_capability_level(level: u8) -> SiteRepeats {
        if level >= 1 {
            SiteRepeats::On
        } else {
            SiteRepeats::Off
        }
    }
}

impl std::fmt::Display for SiteRepeats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A site-repeats policy, as requested on the command line or via the
/// `EXAML_SITE_REPEATS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RepeatsChoice {
    /// Force compression on.
    On,
    /// Force compression off.
    Off,
    /// Enable unless some rank opts out (requires negotiation in multi-rank
    /// runs; locally resolves to on — compression is pure software).
    Auto,
}

impl RepeatsChoice {
    /// Parse a CLI/env value (`on`, `off`, `auto`).
    pub fn parse(s: &str) -> Option<RepeatsChoice> {
        match s {
            "on" => Some(RepeatsChoice::On),
            "off" => Some(RepeatsChoice::Off),
            "auto" => Some(RepeatsChoice::Auto),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            RepeatsChoice::On => "on",
            RepeatsChoice::Off => "off",
            RepeatsChoice::Auto => "auto",
        }
    }

    /// The process-wide default: `EXAML_SITE_REPEATS` if set to a valid
    /// value, otherwise `auto`. Invalid values fall back to `auto` rather
    /// than aborting — the engine is used far from any CLI error path.
    pub fn from_env() -> RepeatsChoice {
        match std::env::var("EXAML_SITE_REPEATS") {
            Ok(v) => RepeatsChoice::parse(&v).unwrap_or(RepeatsChoice::Auto),
            Err(_) => RepeatsChoice::Auto,
        }
    }

    /// Resolve this policy locally. Multi-rank drivers must instead exchange
    /// [`RepeatsChoice::capability_level`]s and agree on the minimum.
    pub fn resolve_local(self) -> SiteRepeats {
        match self {
            RepeatsChoice::On => SiteRepeats::On,
            RepeatsChoice::Off => SiteRepeats::Off,
            RepeatsChoice::Auto => SiteRepeats::On,
        }
    }

    /// The capability level this rank advertises in the auto-negotiation
    /// allgather.
    pub fn capability_level(self) -> u8 {
        self.resolve_local().capability_level()
    }
}

impl std::fmt::Display for RepeatsChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Cache key of one node's repeat table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BuildKey {
    left: usize,
    right: usize,
    left_stamp: u64,
    right_stamp: u64,
    epoch: u64,
}

/// One inner node's repeat table plus its cache bookkeeping.
#[derive(Debug, Clone, Default)]
pub(crate) struct NodeRepeats {
    pub classes: RepeatClasses,
    /// Monotone rebuild counter; parents key on it, so a rebuild here
    /// cascades rebuilds exactly to the tables (and CLVs) above.
    stamp: u64,
    built: Option<BuildKey>,
}

/// Reusable builder scratch shared by all nodes of a partition.
#[derive(Debug, Clone, Default)]
pub(crate) struct RepeatScratch {
    /// Intermediate classes for the PSR two-round build.
    tmp: RepeatClasses,
    /// Dense pair-dedup table.
    table: Vec<u32>,
    /// Identity pattern list used when compression is off or unavailable.
    pub ident: Vec<u32>,
}

/// Ensure `scratch.ident` holds `0..n_patterns`.
pub(crate) fn fill_identity(ident: &mut Vec<u32>, n_patterns: usize) {
    if ident.len() != n_patterns {
        ident.clear();
        ident.extend(0..n_patterns as u32);
    }
}

fn source<'a>(
    tips: &'a [Vec<u8>],
    repeats: &'a [NodeRepeats],
    n_taxa: usize,
    node: usize,
) -> (ClassSource<'a>, usize) {
    if node < n_taxa {
        (ClassSource::Tips(&tips[node]), TIP_CLASS_COUNT)
    } else {
        let r = &repeats[node - n_taxa].classes;
        (ClassSource::Inner(&r.class_of), r.n_classes())
    }
}

/// Bring the parent node's repeat table up to date for this traversal
/// entry. Returns `true` when the table is usable for compression (cached
/// or freshly rebuilt); `false` when compression is disabled or a child's
/// table is unavailable (the entry then runs uncompressed).
pub(crate) fn refresh_entry(
    part: &mut PartitionState,
    n_taxa: usize,
    entry: &TraversalEntry,
) -> bool {
    if part.repeats.is_empty() {
        return false;
    }
    let parent_idx = entry.parent - n_taxa;
    // A child's table contributes (node, stamp); inner children must have
    // been built — post-order descriptors guarantee that except after a
    // partial invalidation, where we fall back to an uncompressed entry.
    let child_stamp = |repeats: &[NodeRepeats], node: usize| -> Option<u64> {
        if node < n_taxa {
            Some(0)
        } else {
            let nr = &repeats[node - n_taxa];
            nr.built.map(|_| nr.stamp)
        }
    };
    let (Some(ls), Some(rs)) = (
        child_stamp(&part.repeats, entry.left),
        child_stamp(&part.repeats, entry.right),
    ) else {
        part.repeats[parent_idx].built = None;
        return false;
    };
    let key = BuildKey {
        left: entry.left,
        right: entry.right,
        left_stamp: ls,
        right_stamp: rs,
        epoch: part.repeat_epoch,
    };
    if part.repeats[parent_idx].built == Some(key) {
        return true;
    }

    let mut node = std::mem::take(&mut part.repeats[parent_idx]);
    {
        let (l, nl) = source(&part.data.tips, &part.repeats, n_taxa, entry.left);
        let (r, nr) = source(&part.data.tips, &part.repeats, n_taxa, entry.right);
        match &part.rates {
            // Under PSR each pattern uses its own category's P-matrix, so
            // the category joins the class key (second pairing round).
            RateHeterogeneity::Psr {
                pattern_cat,
                category_rates,
            } if category_rates.len() > 1 => {
                let scratch = &mut part.repeat_scratch;
                pair_classes_into(l, nl, r, nr, &mut scratch.tmp, &mut scratch.table);
                pair_classes_into(
                    ClassSource::Inner(&scratch.tmp.class_of),
                    scratch.tmp.n_classes(),
                    ClassSource::Inner(pattern_cat),
                    category_rates.len(),
                    &mut node.classes,
                    &mut scratch.table,
                );
            }
            _ => {
                pair_classes_into(
                    l,
                    nl,
                    r,
                    nr,
                    &mut node.classes,
                    &mut part.repeat_scratch.table,
                );
            }
        }
    }
    node.stamp += 1;
    node.built = Some(key);
    part.repeats[parent_idx] = node;
    true
}

/// Copy each representative's CLV block (`cats × 4` doubles) and scaling
/// count into its duplicates' slots. Representatives precede duplicates, so
/// every source block is final by the time it is copied.
pub(crate) fn scatter_entry(
    classes: &RepeatClasses,
    cats: usize,
    clv: &mut [f64],
    scale: &mut [u32],
) {
    if !classes.is_compressing() {
        return;
    }
    let block = cats * NUM_STATES;
    for (i, &cls) in classes.class_of.iter().enumerate() {
        let rep = classes.representatives[cls as usize] as usize;
        if rep != i {
            clv.copy_within(rep * block..(rep + 1) * block, i * block);
            scale[i] = scale[rep];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_choice_parse() {
        for setting in [SiteRepeats::On, SiteRepeats::Off] {
            let choice = RepeatsChoice::parse(setting.label()).unwrap();
            assert_eq!(choice.resolve_local(), setting);
        }
        assert_eq!(RepeatsChoice::parse("auto"), Some(RepeatsChoice::Auto));
        assert_eq!(RepeatsChoice::parse("maybe"), None);
    }

    #[test]
    fn capability_levels_are_ordered_and_invertible() {
        assert!(SiteRepeats::Off.capability_level() < SiteRepeats::On.capability_level());
        for setting in [SiteRepeats::On, SiteRepeats::Off] {
            assert_eq!(
                SiteRepeats::from_capability_level(setting.capability_level()),
                setting
            );
        }
        assert_eq!(SiteRepeats::from_capability_level(200), SiteRepeats::On);
    }

    #[test]
    fn auto_resolves_on() {
        assert_eq!(RepeatsChoice::Auto.resolve_local(), SiteRepeats::On);
        assert_eq!(
            RepeatsChoice::Auto.capability_level(),
            SiteRepeats::On.capability_level()
        );
    }

    #[test]
    fn scatter_copies_representative_blocks_and_scales() {
        let classes = RepeatClasses {
            class_of: vec![0, 1, 0, 1],
            representatives: vec![0, 1],
        };
        let cats = 2;
        let block = cats * NUM_STATES;
        let mut clv: Vec<f64> = (0..2 * block).map(|x| x as f64).collect();
        clv.resize(4 * block, -1.0); // duplicate slots hold garbage
        let mut scale = vec![3u32, 7, 99, 99];
        scatter_entry(&classes, cats, &mut clv, &mut scale);
        assert_eq!(clv[2 * block..3 * block], clv[..block]);
        assert_eq!(clv[3 * block..4 * block], clv[block..2 * block]);
        assert_eq!(scale, vec![3, 7, 3, 7]);
    }

    #[test]
    fn scatter_is_noop_without_repeats() {
        let classes = RepeatClasses {
            class_of: vec![0, 1],
            representatives: vec![0, 1],
        };
        let mut clv = vec![1.0; 2 * NUM_STATES];
        let mut scale = vec![5u32, 6];
        scatter_entry(&classes, 1, &mut clv, &mut scale);
        assert_eq!(scale, vec![5, 6]);
    }

    #[test]
    fn fill_identity_is_idempotent_and_resizes() {
        let mut ident = Vec::new();
        fill_identity(&mut ident, 4);
        assert_eq!(ident, vec![0, 1, 2, 3]);
        fill_identity(&mut ident, 4);
        assert_eq!(ident, vec![0, 1, 2, 3]);
        fill_identity(&mut ident, 2);
        assert_eq!(ident, vec![0, 1]);
    }
}
