//! Pluggable likelihood-kernel backends.
//!
//! The three kernels (`newview`, `evaluate`, the sumtable derivatives) take
//! over 90% of runtime (§II). This module puts their inner loops behind the
//! [`KernelBackend`] trait — BEAGLE's proven shape — with two
//! implementations:
//!
//! * [`scalar`] — the original straight-line code, moved here unchanged,
//! * [`simd`] — AVX2 4×f64 lanes over the `pattern × category × 4-state`
//!   CLV blocks, with a portable 4-lane-chunk fallback where AVX2 is
//!   unavailable.
//!
//! Both backends are **bitwise-identical by construction**: the SIMD code
//! uses no FMA contraction and reproduces the scalar association order in
//! every reduction (per-lane `((a·b₀ + a·b₁) + a·b₂) + a·b₃` row-dots,
//! in-order horizontal sums). This keeps checkpoints portable across
//! backends and makes the replica-divergence sentinel's bitwise fingerprint
//! contract backend-independent — what must stay uniform across ranks is the
//! backend *identity* (fingerprinted separately), not the arithmetic.
//!
//! Backends are selected per [`Engine`](super::Engine) at construction; the
//! de-centralized driver negotiates a common [`KernelKind`] across ranks in
//! `auto` mode (capability allgather) before building engines.

pub(crate) mod scalar;
pub(crate) mod simd;

use serde::{Deserialize, Serialize};

use super::{Engine, PartitionState};
use crate::model::pmatrix::{prob_matrix, ProbMatrix};
use crate::model::rates::RateHeterogeneity;
use crate::tree::traversal::{TraversalDescriptor, TraversalEntry};
use exa_bio::dna::NUM_STATES;

/// Precomputed tip contribution table for one P-matrix:
/// `table[code][s] = Σ_t P[s][t] · tip(code)[t]` for the 16 ambiguity codes.
pub(crate) type TipTable = [[f64; NUM_STATES]; 16];

/// A concrete kernel implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// Straight-line scalar code.
    Scalar,
    /// AVX2 vectorized (portable-chunk fallback off x86-64/AVX2).
    Simd,
}

impl KernelKind {
    /// Stable lowercase label (CLI values, trace/health stamps).
    pub fn label(&self) -> &'static str {
        match self {
            KernelKind::Scalar => "scalar",
            KernelKind::Simd => "simd",
        }
    }

    /// Capability level for the one-byte auto-negotiation allgather: ranks
    /// agree on the *minimum* level any rank supports, so higher levels must
    /// be strict supersets.
    pub fn capability_level(&self) -> u8 {
        match self {
            KernelKind::Scalar => 0,
            KernelKind::Simd => 1,
        }
    }

    /// Inverse of [`KernelKind::capability_level`], saturating down to
    /// scalar for unknown (future) levels.
    pub fn from_capability_level(level: u8) -> KernelKind {
        if level >= 1 {
            KernelKind::Simd
        } else {
            KernelKind::Scalar
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A kernel-selection policy, as requested on the command line or via the
/// `EXAML_KERNEL` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Force the scalar backend.
    Scalar,
    /// Force the SIMD backend (portable fallback where AVX2 is missing).
    Simd,
    /// Pick the best backend every rank supports (requires negotiation in
    /// multi-rank runs; locally resolves to the best available).
    Auto,
}

impl KernelChoice {
    /// Parse a CLI/env value (`scalar`, `simd`, `auto`).
    pub fn parse(s: &str) -> Option<KernelChoice> {
        match s {
            "scalar" => Some(KernelChoice::Scalar),
            "simd" => Some(KernelChoice::Simd),
            "auto" => Some(KernelChoice::Auto),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(&self) -> &'static str {
        match self {
            KernelChoice::Scalar => "scalar",
            KernelChoice::Simd => "simd",
            KernelChoice::Auto => "auto",
        }
    }

    /// The process-wide default: `EXAML_KERNEL` if set to a valid value,
    /// otherwise `auto`. Invalid values fall back to `auto` rather than
    /// aborting — the engine is used far from any CLI error path.
    pub fn from_env() -> KernelChoice {
        match std::env::var("EXAML_KERNEL") {
            Ok(v) => KernelChoice::parse(&v).unwrap_or(KernelChoice::Auto),
            Err(_) => KernelChoice::Auto,
        }
    }

    /// Resolve this policy against the *local* machine only. Multi-rank
    /// drivers must instead exchange [`KernelChoice::capability_level`]s and
    /// agree on the minimum.
    pub fn resolve_local(self) -> KernelKind {
        match self {
            KernelChoice::Scalar => KernelKind::Scalar,
            KernelChoice::Simd => KernelKind::Simd,
            KernelChoice::Auto => {
                if simd_available() {
                    KernelKind::Simd
                } else {
                    KernelKind::Scalar
                }
            }
        }
    }

    /// The capability level this rank advertises in the auto-negotiation
    /// allgather: a forced choice pins its own level, `auto` advertises the
    /// best locally available backend.
    pub fn capability_level(self) -> u8 {
        match self {
            KernelChoice::Scalar => KernelKind::Scalar.capability_level(),
            KernelChoice::Simd => KernelKind::Simd.capability_level(),
            KernelChoice::Auto => self.resolve_local().capability_level(),
        }
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether the hardware-accelerated SIMD path (AVX2) is available on this
/// machine. The SIMD backend still *works* without it via portable chunks;
/// `auto` only prefers it when this returns true.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The inner loops of the three likelihood kernels over one partition's
/// pattern slice. Implementations must be bitwise-deterministic: the same
/// inputs produce the same bits on every call and every rank.
pub(crate) trait KernelBackend: Send + Sync {
    /// Which backend this is (stamped into traces/health reports and
    /// fingerprinted by the replica sentinel).
    fn kind(&self) -> KernelKind;

    /// Recompute the parent CLV of one traversal entry. Returns the work
    /// done in pattern-categories.
    fn newview_entry(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        entry: &TraversalEntry,
    ) -> u64;

    /// Log-likelihood of one partition at the descriptor's virtual root.
    /// When `terms` is given it is cleared and filled with the per-pattern
    /// weighted log-likelihood addends — exactly the values the returned
    /// `lnl` accumulates, in pattern order — for reproducible (binned)
    /// cross-rank reduction.
    fn evaluate_root(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        d: &TraversalDescriptor,
        terms: Option<&mut Vec<f64>>,
    ) -> (f64, u64);

    /// Build the derivative sumtable for the descriptor's root edge.
    fn make_sumtable(&self, part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor);

    /// Build the derivative sumtable from two explicit root sides — the
    /// generalized core of [`KernelBackend::make_sumtable`] (which passes
    /// the descriptor's inward root sides). The gradient sweep passes an
    /// "outside" CLV on one side to take any edge's derivative without
    /// re-rooting. Same arithmetic, same bits.
    fn sumtable_sides(
        &self,
        part: &PartitionState,
        a: &RootSide<'_>,
        b: &RootSide<'_>,
        sumtable: &mut Vec<f64>,
    );

    /// Materialize one "outside" CLV (a [`GradStep`](crate::tree::traversal::GradStep)
    /// of a gradient sweep): combine the job's two sources through the
    /// P-matrices of their branches into `out_clv`/`out_scale`, uncompressed
    /// over all patterns. This is `newview` with explicit sources and an
    /// explicit destination — bitwise identical to what a per-edge traversal
    /// would have computed for the same direction. Returns the work done in
    /// pattern-categories.
    fn gradient_outside(
        &self,
        part: &PartitionState,
        scratch: &mut KernelScratch,
        job: &OutsideJob<'_>,
        out_clv: &mut [f64],
        out_scale: &mut [u32],
    ) -> u64;

    /// `(dlnL/dt, d²lnL/dt²)` of one partition at branch length `t`, from
    /// the prepared sumtable. When `terms` is given, both vectors are
    /// cleared and filled with the per-pattern first/second-derivative
    /// addends (same contract as [`KernelBackend::evaluate_root`]).
    fn derivatives_from_sumtable(
        &self,
        part: &mut PartitionState,
        t: f64,
        terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> (f64, f64, u64);
}

static SCALAR_BACKEND: scalar::ScalarBackend = scalar::ScalarBackend;
static SIMD_BACKEND: simd::SimdBackend = simd::SimdBackend;

/// The backend singleton for a kind (backends are stateless; all per-call
/// scratch lives in [`KernelScratch`]).
pub(crate) fn backend_for(kind: KernelKind) -> &'static dyn KernelBackend {
    match kind {
        KernelKind::Scalar => &SCALAR_BACKEND,
        KernelKind::Simd => &SIMD_BACKEND,
    }
}

/// Reusable per-partition kernel scratch. P-matrices and tip-lookup tables
/// used to be freshly allocated on every `newview`/`evaluate` call — on a
/// per-edge hot path; these buffers are taken out of the
/// [`PartitionState`], refilled, and put back, so steady-state kernels
/// allocate nothing.
#[derive(Debug, Clone, Default)]
pub(crate) struct KernelScratch {
    /// P-matrices for the left/a side, one per distinct rate.
    pub ps_a: Vec<ProbMatrix>,
    /// P-matrices for the right/b side.
    pub ps_b: Vec<ProbMatrix>,
    /// Tip lookup tables for the left/a side (filled only when that child
    /// is a tip).
    pub lookup_a: Vec<TipTable>,
    /// Tip lookup tables for the right/b side.
    pub lookup_b: Vec<TipTable>,
    /// Column-major transposes of `ps_a` (`cols[t][s] = P[s][t]`), used by
    /// the SIMD backend's broadcast-multiply-add matrix–vector products.
    pub cols_a: Vec<ProbMatrix>,
    /// Column-major transposes of `ps_b`.
    pub cols_b: Vec<ProbMatrix>,
    /// Per-distinct-rate `exp(λ_e r t)` factors for the derivative kernel.
    pub deriv_ex: Vec<[f64; NUM_STATES]>,
    /// Per-distinct-rate `λ_e r` factors for the derivative kernel.
    pub deriv_lr: Vec<[f64; NUM_STATES]>,
    /// Identity pattern list `0..n_patterns` for the gradient sweep's
    /// uncompressed outside-CLV computations (lets the SIMD backend reuse
    /// its `newview` pattern loops verbatim).
    pub grad_ident: Vec<u32>,
}

/// Fill `out` with the P-matrices of every distinct rate multiplier,
/// reusing its allocation.
pub(crate) fn p_matrices_into(part: &PartitionState, t: f64, out: &mut Vec<ProbMatrix>) {
    out.clear();
    out.extend(
        part.rates
            .distinct_rates()
            .iter()
            .map(|&r| prob_matrix(&part.model, t, r)),
    );
}

/// Fill `out` with per-rate tip contribution tables, reusing its
/// allocation: `out[k][code][s] = Σ_t P_k[s][t] · tip(code)[t]`.
pub(crate) fn build_tip_lookup_into(ps: &[ProbMatrix], out: &mut Vec<TipTable>) {
    out.clear();
    out.extend(ps.iter().map(|p| {
        let mut table = [[0.0; NUM_STATES]; 16];
        for (code, entry) in table.iter_mut().enumerate() {
            for s in 0..NUM_STATES {
                let mut acc = 0.0;
                for t in 0..NUM_STATES {
                    if code & (1 << t) != 0 {
                        acc += p[s][t];
                    }
                }
                entry[s] = acc;
            }
        }
        table
    }));
}

/// Fill `out` with column-major transposes (`out[k][t][s] = ps[k][s][t]`),
/// reusing its allocation.
pub(crate) fn transpose_into(ps: &[ProbMatrix], out: &mut Vec<ProbMatrix>) {
    out.clear();
    out.extend(ps.iter().map(|p| {
        let mut c = [[0.0; NUM_STATES]; NUM_STATES];
        for s in 0..NUM_STATES {
            for t in 0..NUM_STATES {
                c[t][s] = p[s][t];
            }
        }
        c
    }));
}

/// Which P-matrix index pattern `i`, category `c` uses.
#[inline]
pub(crate) fn cat_index(rates: &RateHeterogeneity, i: usize, c: usize) -> usize {
    match rates {
        RateHeterogeneity::Gamma { .. } => c,
        RateHeterogeneity::Psr { pattern_cat, .. } => pattern_cat[i] as usize,
    }
}

/// The per-category weight used when integrating site likelihoods.
#[inline]
pub(crate) fn category_weight(rates: &RateHeterogeneity) -> f64 {
    match rates {
        RateHeterogeneity::Gamma { rates, .. } => 1.0 / rates.len() as f64,
        RateHeterogeneity::Psr { .. } => 1.0,
    }
}

/// The 16 possible tip state vectors, indexed by 4-bit ambiguity code:
/// `TIP_STATE[code][s] = 1.0` iff bit `s` of `code` is set. Lets the SIMD
/// paths load a tip's root-side state as one contiguous 4-wide chunk.
pub(crate) const TIP_STATE: [[f64; NUM_STATES]; 16] = build_tip_state();

const fn build_tip_state() -> [[f64; NUM_STATES]; 16] {
    let mut table = [[0.0; NUM_STATES]; 16];
    let mut code = 0;
    while code < 16 {
        let mut s = 0;
        while s < NUM_STATES {
            if code & (1 << s) != 0 {
                table[code][s] = 1.0;
            }
            s += 1;
        }
        code += 1;
    }
    table
}

/// One outside-CLV computation of a gradient sweep: two sources (tip codes,
/// inward CLVs, or previously materialized outside CLVs — all expressible as
/// [`RootSide`]s) and the branch lengths connecting them to the node being
/// materialized. `left`/`right` keep the deterministic smaller-node-id-first
/// order of `collect_entries`.
pub(crate) struct OutsideJob<'a> {
    pub t_left: f64,
    pub t_right: f64,
    pub left: RootSide<'a>,
    pub right: RootSide<'a>,
}

/// Per-pattern state vector access at the virtual root: tip codes or CLV.
pub(crate) enum RootSide<'a> {
    Tip(&'a [u8]),
    Inner { clv: &'a [f64], scale: &'a [u32] },
}

impl<'a> RootSide<'a> {
    #[inline]
    pub(crate) fn state(&self, i: usize, c: usize, cats: usize, out: &mut [f64; NUM_STATES]) {
        match self {
            RootSide::Tip(codes) => {
                let code = codes[i] as usize & 0xf;
                for (s, o) in out.iter_mut().enumerate() {
                    *o = if code & (1 << s) != 0 { 1.0 } else { 0.0 };
                }
            }
            RootSide::Inner { clv, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                out.copy_from_slice(&clv[base..base + NUM_STATES]);
            }
        }
    }

    /// The state vector of pattern `i`, category `c` as a contiguous 4-wide
    /// slice (the [`TIP_STATE`] row for tips, the CLV block for inner
    /// nodes). Same values as [`RootSide::state`], zero-copy.
    #[inline]
    pub(crate) fn state_slice(&self, i: usize, c: usize, cats: usize) -> &[f64] {
        match self {
            RootSide::Tip(codes) => &TIP_STATE[codes[i] as usize & 0xf],
            RootSide::Inner { clv, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                &clv[base..base + NUM_STATES]
            }
        }
    }

    #[inline]
    pub(crate) fn scale_of(&self, i: usize) -> u32 {
        match self {
            RootSide::Tip(_) => 0,
            RootSide::Inner { scale, .. } => scale[i],
        }
    }
}

pub(crate) fn root_side<'a>(part: &'a PartitionState, n_taxa: usize, node: usize) -> RootSide<'a> {
    if node < n_taxa {
        RootSide::Tip(&part.data.tips[node])
    } else {
        let idx = node - n_taxa;
        RootSide::Inner {
            clv: &part.clv[idx],
            scale: &part.scale[idx],
        }
    }
}

/// Shared by both backends: the branch lengths of a newview entry for this
/// partition.
#[inline]
pub(crate) fn entry_lengths(part: &PartitionState, entry: &TraversalEntry) -> (f64, f64) {
    let gi = part.data.global_index;
    (
        Engine::branch_length(&entry.left_lengths, gi),
        Engine::branch_length(&entry.right_lengths, gi),
    )
}

/// Shared by both backends: fill the derivative-factor scratch
/// (`exp(λ_e r t)` and `λ_e r` per distinct rate) for
/// `derivatives_from_sumtable`.
pub(crate) fn fill_deriv_factors(
    part: &PartitionState,
    t: f64,
    ex: &mut Vec<[f64; NUM_STATES]>,
    lr: &mut Vec<[f64; NUM_STATES]>,
) {
    let lam = *part.model.eigenvalues();
    ex.clear();
    lr.clear();
    for &r in part.rates.distinct_rates() {
        let mut e = [0.0; NUM_STATES];
        let mut l1 = [0.0; NUM_STATES];
        for k in 0..NUM_STATES {
            let lk = lam[k] * r;
            e[k] = (lk * t).exp();
            l1[k] = lk;
        }
        ex.push(e);
        lr.push(l1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_roundtrip_through_choice_parse() {
        for kind in [KernelKind::Scalar, KernelKind::Simd] {
            let choice = KernelChoice::parse(kind.label()).unwrap();
            assert_eq!(choice.resolve_local(), kind);
        }
        assert_eq!(KernelChoice::parse("auto"), Some(KernelChoice::Auto));
        assert_eq!(KernelChoice::parse("avx512"), None);
    }

    #[test]
    fn capability_levels_are_ordered_and_invertible() {
        assert!(KernelKind::Scalar.capability_level() < KernelKind::Simd.capability_level());
        for kind in [KernelKind::Scalar, KernelKind::Simd] {
            assert_eq!(
                KernelKind::from_capability_level(kind.capability_level()),
                kind
            );
        }
        // Unknown future levels saturate to the best we know.
        assert_eq!(KernelKind::from_capability_level(200), KernelKind::Simd);
    }

    #[test]
    fn auto_resolves_to_an_available_backend() {
        let kind = KernelChoice::Auto.resolve_local();
        if simd_available() {
            assert_eq!(kind, KernelKind::Simd);
        } else {
            assert_eq!(kind, KernelKind::Scalar);
        }
        assert_eq!(
            KernelChoice::Auto.capability_level(),
            kind.capability_level()
        );
    }

    #[test]
    fn backend_singletons_report_their_kind() {
        assert_eq!(backend_for(KernelKind::Scalar).kind(), KernelKind::Scalar);
        assert_eq!(backend_for(KernelKind::Simd).kind(), KernelKind::Simd);
    }
}
