//! The scalar kernel backend: the original straight-line implementations of
//! `newview`, `evaluate`, and the sumtable derivatives, moved behind
//! [`KernelBackend`]. The only change from the pre-backend code is that
//! P-matrices and tip-lookup tables now come from the partition's
//! [`KernelScratch`](super::KernelScratch) instead of fresh `Vec`s per edge.
//!
//! All kernels run per local partition and are generic over the two rate
//! models through a small category-indirection: under Γ every pattern
//! integrates over all category P-matrices (weight 1/k each); under PSR each
//! pattern uses the single P-matrix of its quantized rate category.

use super::{
    build_tip_lookup_into, cat_index, category_weight, entry_lengths, fill_deriv_factors,
    p_matrices_into, root_side, KernelBackend, KernelKind, KernelScratch, OutsideJob, RootSide,
    TipTable,
};
use crate::engine::{PartitionState, LN_MIN_LIKELIHOOD, MIN_LIKELIHOOD, TWO_TO_256};
use crate::model::pmatrix::ProbMatrix;
use crate::tree::traversal::{TraversalDescriptor, TraversalEntry};
use exa_bio::dna::NUM_STATES;

pub(crate) struct ScalarBackend;

impl KernelBackend for ScalarBackend {
    fn kind(&self) -> KernelKind {
        KernelKind::Scalar
    }

    fn newview_entry(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        entry: &TraversalEntry,
    ) -> u64 {
        newview_entry(part, n_taxa, entry)
    }

    fn evaluate_root(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        d: &TraversalDescriptor,
        terms: Option<&mut Vec<f64>>,
    ) -> (f64, u64) {
        evaluate_root(part, n_taxa, d, terms)
    }

    fn make_sumtable(&self, part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor) {
        make_sumtable(part, n_taxa, d)
    }

    fn sumtable_sides(
        &self,
        part: &PartitionState,
        a: &RootSide<'_>,
        b: &RootSide<'_>,
        sumtable: &mut Vec<f64>,
    ) {
        sumtable_sides(part, a, b, sumtable)
    }

    fn gradient_outside(
        &self,
        part: &PartitionState,
        scratch: &mut KernelScratch,
        job: &OutsideJob<'_>,
        out_clv: &mut [f64],
        out_scale: &mut [u32],
    ) -> u64 {
        gradient_outside(part, scratch, job, out_clv, out_scale)
    }

    fn derivatives_from_sumtable(
        &self,
        part: &mut PartitionState,
        t: f64,
        terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> (f64, f64, u64) {
        derivatives_from_sumtable(part, t, terms)
    }
}

/// One child's contribution to a parent CLV state: either through the tip
/// lookup or by a matrix–vector product against the child's CLV block.
enum Child<'a> {
    Tip {
        codes: &'a [u8],
        lookup: &'a [TipTable],
    },
    Inner {
        clv: &'a [f64],
        scale: &'a [u32],
        ps: &'a [ProbMatrix],
    },
}

impl<'a> Child<'a> {
    #[inline]
    fn contribution(&self, i: usize, c: usize, cats: usize, k: usize, out: &mut [f64; NUM_STATES]) {
        match self {
            Child::Tip { codes, lookup } => {
                *out = lookup[k][codes[i] as usize & 0xf];
            }
            Child::Inner { clv, ps, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                let block = &clv[base..base + NUM_STATES];
                let p = &ps[k];
                for (s, o) in out.iter_mut().enumerate() {
                    let row = &p[s];
                    *o = row[0] * block[0]
                        + row[1] * block[1]
                        + row[2] * block[2]
                        + row[3] * block[3];
                }
            }
        }
    }

    #[inline]
    fn scale_of(&self, i: usize) -> u32 {
        match self {
            Child::Tip { .. } => 0,
            Child::Inner { scale, .. } => scale[i],
        }
    }
}

/// Recompute the parent CLV of one traversal entry. Returns the work done in
/// pattern-categories (with repeat compression: representatives only).
fn newview_entry(part: &mut PartitionState, n_taxa: usize, entry: &TraversalEntry) -> u64 {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let (t_left, t_right) = entry_lengths(part, entry);
    let compress = crate::engine::repeats::refresh_entry(part, n_taxa, entry);
    if !compress {
        crate::engine::repeats::fill_identity(&mut part.repeat_scratch.ident, n_patterns);
    }

    let mut scratch = std::mem::take(&mut part.scratch);
    p_matrices_into(part, t_left, &mut scratch.ps_a);
    p_matrices_into(part, t_right, &mut scratch.ps_b);
    if entry.left < n_taxa {
        build_tip_lookup_into(&scratch.ps_a, &mut scratch.lookup_a);
    }
    if entry.right < n_taxa {
        build_tip_lookup_into(&scratch.ps_b, &mut scratch.lookup_b);
    }

    let parent_idx = entry.parent - n_taxa;
    let mut parent_clv = std::mem::take(&mut part.clv[parent_idx]);
    let mut parent_scale = std::mem::take(&mut part.scale[parent_idx]);

    let computed;
    {
        let patterns: &[u32] = if compress {
            &part.repeats[parent_idx].classes.representatives
        } else {
            &part.repeat_scratch.ident
        };
        computed = patterns.len();

        let left = if entry.left < n_taxa {
            Child::Tip {
                codes: &part.data.tips[entry.left],
                lookup: &scratch.lookup_a,
            }
        } else {
            let idx = entry.left - n_taxa;
            Child::Inner {
                clv: &part.clv[idx],
                scale: &part.scale[idx],
                ps: &scratch.ps_a,
            }
        };
        let right = if entry.right < n_taxa {
            Child::Tip {
                codes: &part.data.tips[entry.right],
                lookup: &scratch.lookup_b,
            }
        } else {
            let idx = entry.right - n_taxa;
            Child::Inner {
                clv: &part.clv[idx],
                scale: &part.scale[idx],
                ps: &scratch.ps_b,
            }
        };

        let mut lv = [0.0; NUM_STATES];
        let mut rv = [0.0; NUM_STATES];
        for &ip in patterns {
            let i = ip as usize;
            let mut maxv = 0.0f64;
            let base_i = i * cats * NUM_STATES;
            for c in 0..cats {
                let k = cat_index(&part.rates, i, c);
                left.contribution(i, c, cats, k, &mut lv);
                right.contribution(i, c, cats, k, &mut rv);
                let out = &mut parent_clv[base_i + c * NUM_STATES..base_i + (c + 1) * NUM_STATES];
                for s in 0..NUM_STATES {
                    let v = lv[s] * rv[s];
                    out[s] = v;
                    maxv = maxv.max(v.abs());
                }
            }
            let mut count = left.scale_of(i) + right.scale_of(i);
            if maxv < MIN_LIKELIHOOD {
                for v in parent_clv[base_i..base_i + cats * NUM_STATES].iter_mut() {
                    *v *= TWO_TO_256;
                }
                count += 1;
            }
            parent_scale[i] = count;
        }
        if compress {
            crate::engine::repeats::scatter_entry(
                &part.repeats[parent_idx].classes,
                cats,
                &mut parent_clv,
                &mut parent_scale,
            );
        }
    }

    part.clv[parent_idx] = parent_clv;
    part.scale[parent_idx] = parent_scale;
    part.scratch = scratch;
    (computed * cats) as u64
}

/// Log-likelihood of one partition at the descriptor's virtual root.
fn evaluate_root(
    part: &mut PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
    mut terms: Option<&mut Vec<f64>>,
) -> (f64, u64) {
    if let Some(sink) = terms.as_deref_mut() {
        sink.clear();
    }
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let gi = part.data.global_index;
    let t = crate::engine::Engine::branch_length(&d.root_lengths, gi);

    let mut scratch = std::mem::take(&mut part.scratch);
    p_matrices_into(part, t, &mut scratch.ps_a);
    let freqs = *part.model.freqs();
    let cat_weight = category_weight(&part.rates);

    let mut lnl = 0.0f64;
    {
        let a = root_side(part, n_taxa, d.root_a);
        let b = root_side(part, n_taxa, d.root_b);
        let mut xa = [0.0; NUM_STATES];
        let mut xb = [0.0; NUM_STATES];
        for i in 0..n_patterns {
            let mut site = 0.0f64;
            for c in 0..cats {
                let k = cat_index(&part.rates, i, c);
                a.state(i, c, cats, &mut xa);
                b.state(i, c, cats, &mut xb);
                let p = &scratch.ps_a[k];
                let mut acc = 0.0;
                for s in 0..NUM_STATES {
                    let row = &p[s];
                    let pb = row[0] * xb[0] + row[1] * xb[1] + row[2] * xb[2] + row[3] * xb[3];
                    acc += freqs[s] * xa[s] * pb;
                }
                site += cat_weight * acc;
            }
            let count = a.scale_of(i) + b.scale_of(i);
            let site = site.max(f64::MIN_POSITIVE);
            let term = part.data.weights[i] * (site.ln() + count as f64 * LN_MIN_LIKELIHOOD);
            if let Some(sink) = terms.as_deref_mut() {
                sink.push(term);
            }
            lnl += term;
        }
    }
    part.scratch = scratch;
    (lnl, (n_patterns * cats) as u64)
}

/// Build the derivative sumtable for the descriptor's root edge:
/// `ST[(i·cats+c)·4+e] = (Σ_s π_s x_a[s] V[s,e]) · (Σ_t V⁻¹[e,t] x_b[t])`.
/// The branch length itself enters only in [`derivatives_from_sumtable`],
/// so Newton–Raphson iterations reuse one sumtable (RAxML's scheme).
fn make_sumtable(part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor) {
    let mut sumtable = std::mem::take(&mut part.sumtable);
    {
        let a = root_side(part, n_taxa, d.root_a);
        let b = root_side(part, n_taxa, d.root_b);
        sumtable_sides(part, &a, &b, &mut sumtable);
    }
    part.sumtable = sumtable;
}

/// The sumtable core over two explicit sides (shared by [`make_sumtable`]
/// and the gradient sweep, so both paths are one kernel).
fn sumtable_sides(part: &PartitionState, a: &RootSide<'_>, b: &RootSide<'_>, out: &mut Vec<f64>) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let freqs = *part.model.freqs();
    let v = *part.model.v();
    let vi = *part.model.v_inv();

    out.resize(n_patterns * cats * NUM_STATES, 0.0);
    let mut xa = [0.0; NUM_STATES];
    let mut xb = [0.0; NUM_STATES];
    for i in 0..n_patterns {
        for c in 0..cats {
            a.state(i, c, cats, &mut xa);
            b.state(i, c, cats, &mut xb);
            let base = (i * cats + c) * NUM_STATES;
            for e in 0..NUM_STATES {
                let mut ae = 0.0;
                let mut be = 0.0;
                for s in 0..NUM_STATES {
                    ae += freqs[s] * xa[s] * v[s][e];
                    be += vi[e][s] * xb[s];
                }
                out[base + e] = ae * be;
            }
        }
    }
}

/// Materialize one outside CLV: `newview`'s inner loop with explicit sources
/// and destination, uncompressed over all patterns. The arithmetic —
/// contribution row-dots, `lv·rv` products, the rescale test and factor —
/// is [`newview_entry`]'s exactly, so the result is bitwise identical to
/// what a per-edge traversal would have computed for the same direction.
fn gradient_outside(
    part: &PartitionState,
    scratch: &mut KernelScratch,
    job: &OutsideJob<'_>,
    out_clv: &mut [f64],
    out_scale: &mut [u32],
) -> u64 {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    p_matrices_into(part, job.t_left, &mut scratch.ps_a);
    p_matrices_into(part, job.t_right, &mut scratch.ps_b);
    if matches!(job.left, RootSide::Tip(_)) {
        build_tip_lookup_into(&scratch.ps_a, &mut scratch.lookup_a);
    }
    if matches!(job.right, RootSide::Tip(_)) {
        build_tip_lookup_into(&scratch.ps_b, &mut scratch.lookup_b);
    }
    let left = grad_child(&job.left, &scratch.ps_a, &scratch.lookup_a);
    let right = grad_child(&job.right, &scratch.ps_b, &scratch.lookup_b);

    let mut lv = [0.0; NUM_STATES];
    let mut rv = [0.0; NUM_STATES];
    for i in 0..n_patterns {
        let mut maxv = 0.0f64;
        let base_i = i * cats * NUM_STATES;
        for c in 0..cats {
            let k = cat_index(&part.rates, i, c);
            left.contribution(i, c, cats, k, &mut lv);
            right.contribution(i, c, cats, k, &mut rv);
            let out = &mut out_clv[base_i + c * NUM_STATES..base_i + (c + 1) * NUM_STATES];
            for s in 0..NUM_STATES {
                let v = lv[s] * rv[s];
                out[s] = v;
                maxv = maxv.max(v.abs());
            }
        }
        let mut count = left.scale_of(i) + right.scale_of(i);
        if maxv < MIN_LIKELIHOOD {
            for v in out_clv[base_i..base_i + cats * NUM_STATES].iter_mut() {
                *v *= TWO_TO_256;
            }
            count += 1;
        }
        out_scale[i] = count;
    }
    (n_patterns * cats) as u64
}

/// View a gradient-sweep source as a `newview` child.
fn grad_child<'a>(side: &RootSide<'a>, ps: &'a [ProbMatrix], lookup: &'a [TipTable]) -> Child<'a> {
    match side {
        RootSide::Tip(codes) => Child::Tip { codes, lookup },
        RootSide::Inner { clv, scale } => Child::Inner { clv, scale, ps },
    }
}

/// `(dlnL/dt, d²lnL/dt²)` of one partition at branch length `t`, from the
/// prepared sumtable. Scaling constants cancel in the `L'/L` ratios.
fn derivatives_from_sumtable(
    part: &mut PartitionState,
    t: f64,
    mut terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
) -> (f64, f64, u64) {
    if let Some((s1, s2)) = terms.as_mut() {
        s1.clear();
        s2.clear();
    }
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let cat_weight = category_weight(&part.rates);

    let mut scratch = std::mem::take(&mut part.scratch);
    fill_deriv_factors(part, t, &mut scratch.deriv_ex, &mut scratch.deriv_lr);
    let ex = &scratch.deriv_ex;
    let lr1 = &scratch.deriv_lr;

    let mut d1_sum = 0.0f64;
    let mut d2_sum = 0.0f64;
    for i in 0..n_patterns {
        let mut l = 0.0f64;
        let mut l1 = 0.0f64;
        let mut l2 = 0.0f64;
        for c in 0..cats {
            let k = cat_index(&part.rates, i, c);
            let base = (i * cats + c) * NUM_STATES;
            let e = &ex[k];
            let lk = &lr1[k];
            for s in 0..NUM_STATES {
                let w = part.sumtable[base + s] * e[s];
                l += w;
                l1 += w * lk[s];
                l2 += w * lk[s] * lk[s];
            }
        }
        l *= cat_weight;
        l1 *= cat_weight;
        l2 *= cat_weight;
        let l = l.max(f64::MIN_POSITIVE);
        let ratio1 = l1 / l;
        let ratio2 = l2 / l;
        let wgt = part.data.weights[i];
        let t1 = wgt * ratio1;
        let t2 = wgt * (ratio2 - ratio1 * ratio1);
        if let Some((s1, s2)) = terms.as_mut() {
            s1.push(t1);
            s2.push(t2);
        }
        d1_sum += t1;
        d2_sum += t2;
    }
    part.scratch = scratch;
    (d1_sum, d2_sum, (n_patterns * cats) as u64)
}
