//! The SIMD kernel backend: AVX2 4×f64 lanes over the
//! `pattern × category × 4-state` CLV blocks, with a portable 4-lane-chunk
//! fallback used off x86-64 or when AVX2 is missing at runtime.
//!
//! # Bitwise identity with the scalar backend
//!
//! Every reduction reproduces the scalar association order exactly, and no
//! FMA contraction is used, so results are bit-for-bit equal to
//! [`super::scalar`]:
//!
//! * Matrix–vector products run over **column-major** P-matrices
//!   (`cols[t][s] = P[s][t]`, prepared once per edge in the scratch) as
//!   broadcast-multiply-adds; lane `s` then computes
//!   `((P[s][0]·b₀ + P[s][1]·b₁) + P[s][2]·b₂) + P[s][3]·b₃` — the scalar
//!   row-dot order.
//! * Horizontal sums extract lanes and accumulate in lane order starting
//!   from `0.0`, matching the scalar `acc += …` loops.
//!
//! The one documented exception: `newview`'s rescaling max is computed with
//! vector max, which treats NaN differently from `f64::max`; NaN CLVs only
//! arise from already-broken inputs.

use super::{
    build_tip_lookup_into, category_weight, entry_lengths, fill_deriv_factors, p_matrices_into,
    root_side, transpose_into, KernelBackend, KernelKind, KernelScratch, OutsideJob, RootSide,
    TipTable,
};
use crate::engine::{Engine, PartitionState};
use crate::model::pmatrix::ProbMatrix;
use crate::tree::traversal::{TraversalDescriptor, TraversalEntry};
use exa_bio::dna::NUM_STATES;

pub(crate) struct SimdBackend;

impl KernelBackend for SimdBackend {
    fn kind(&self) -> KernelKind {
        KernelKind::Simd
    }

    fn newview_entry(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        entry: &TraversalEntry,
    ) -> u64 {
        newview_entry(part, n_taxa, entry)
    }

    fn evaluate_root(
        &self,
        part: &mut PartitionState,
        n_taxa: usize,
        d: &TraversalDescriptor,
        terms: Option<&mut Vec<f64>>,
    ) -> (f64, u64) {
        evaluate_root(part, n_taxa, d, terms)
    }

    fn make_sumtable(&self, part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor) {
        make_sumtable(part, n_taxa, d)
    }

    fn sumtable_sides(
        &self,
        part: &PartitionState,
        a: &RootSide<'_>,
        b: &RootSide<'_>,
        sumtable: &mut Vec<f64>,
    ) {
        sumtable_sides_impl(part, a, b, sumtable, avx2_usable())
    }

    fn gradient_outside(
        &self,
        part: &PartitionState,
        scratch: &mut KernelScratch,
        job: &OutsideJob<'_>,
        out_clv: &mut [f64],
        out_scale: &mut [u32],
    ) -> u64 {
        gradient_outside_impl(part, scratch, job, out_clv, out_scale, avx2_usable())
    }

    fn derivatives_from_sumtable(
        &self,
        part: &mut PartitionState,
        t: f64,
        terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> (f64, f64, u64) {
        derivatives_from_sumtable(part, t, terms)
    }
}

/// Whether the hardware AVX2 path is usable right now.
#[inline]
fn avx2_usable() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One child's 4-wide contribution source inside `newview`: a precomputed
/// tip-lookup row or a matrix–vector product of the column-major P against
/// the child's CLV block.
enum SimdChild<'a> {
    Tip {
        codes: &'a [u8],
        lookup: &'a [TipTable],
    },
    Inner {
        clv: &'a [f64],
        scale: &'a [u32],
        cols: &'a [ProbMatrix],
    },
}

impl<'a> SimdChild<'a> {
    #[inline]
    fn scale_of(&self, i: usize) -> u32 {
        match self {
            SimdChild::Tip { .. } => 0,
            SimdChild::Inner { scale, .. } => scale[i],
        }
    }
}

fn newview_entry(part: &mut PartitionState, n_taxa: usize, entry: &TraversalEntry) -> u64 {
    newview_entry_impl(part, n_taxa, entry, avx2_usable())
}

fn newview_entry_impl(
    part: &mut PartitionState,
    n_taxa: usize,
    entry: &TraversalEntry,
    use_avx2: bool,
) -> u64 {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let (t_left, t_right) = entry_lengths(part, entry);
    let compress = crate::engine::repeats::refresh_entry(part, n_taxa, entry);
    if !compress {
        crate::engine::repeats::fill_identity(&mut part.repeat_scratch.ident, n_patterns);
    }

    let mut scratch = std::mem::take(&mut part.scratch);
    p_matrices_into(part, t_left, &mut scratch.ps_a);
    p_matrices_into(part, t_right, &mut scratch.ps_b);
    transpose_into(&scratch.ps_a, &mut scratch.cols_a);
    transpose_into(&scratch.ps_b, &mut scratch.cols_b);
    if entry.left < n_taxa {
        build_tip_lookup_into(&scratch.ps_a, &mut scratch.lookup_a);
    }
    if entry.right < n_taxa {
        build_tip_lookup_into(&scratch.ps_b, &mut scratch.lookup_b);
    }

    let parent_idx = entry.parent - n_taxa;
    let mut parent_clv = std::mem::take(&mut part.clv[parent_idx]);
    let mut parent_scale = std::mem::take(&mut part.scale[parent_idx]);

    let computed;
    {
        let patterns: &[u32] = if compress {
            &part.repeats[parent_idx].classes.representatives
        } else {
            &part.repeat_scratch.ident
        };
        computed = patterns.len();

        let left = if entry.left < n_taxa {
            SimdChild::Tip {
                codes: &part.data.tips[entry.left],
                lookup: &scratch.lookup_a,
            }
        } else {
            let idx = entry.left - n_taxa;
            SimdChild::Inner {
                clv: &part.clv[idx],
                scale: &part.scale[idx],
                cols: &scratch.cols_a,
            }
        };
        let right = if entry.right < n_taxa {
            SimdChild::Tip {
                codes: &part.data.tips[entry.right],
                lookup: &scratch.lookup_b,
            }
        } else {
            let idx = entry.right - n_taxa;
            SimdChild::Inner {
                clv: &part.clv[idx],
                scale: &part.scale[idx],
                cols: &scratch.cols_b,
            }
        };

        #[cfg(target_arch = "x86_64")]
        if use_avx2 {
            unsafe {
                avx2::newview_patterns(
                    &part.rates,
                    &left,
                    &right,
                    patterns,
                    cats,
                    &mut parent_clv,
                    &mut parent_scale,
                );
            }
        } else {
            portable::newview_patterns(
                &part.rates,
                &left,
                &right,
                patterns,
                cats,
                &mut parent_clv,
                &mut parent_scale,
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = use_avx2;
            portable::newview_patterns(
                &part.rates,
                &left,
                &right,
                patterns,
                cats,
                &mut parent_clv,
                &mut parent_scale,
            );
        }
        if compress {
            crate::engine::repeats::scatter_entry(
                &part.repeats[parent_idx].classes,
                cats,
                &mut parent_clv,
                &mut parent_scale,
            );
        }
    }

    part.clv[parent_idx] = parent_clv;
    part.scale[parent_idx] = parent_scale;
    part.scratch = scratch;
    (computed * cats) as u64
}

fn evaluate_root(
    part: &mut PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
    terms: Option<&mut Vec<f64>>,
) -> (f64, u64) {
    evaluate_root_impl(part, n_taxa, d, avx2_usable(), terms)
}

fn evaluate_root_impl(
    part: &mut PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
    use_avx2: bool,
    terms: Option<&mut Vec<f64>>,
) -> (f64, u64) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let gi = part.data.global_index;
    let t = Engine::branch_length(&d.root_lengths, gi);

    let mut scratch = std::mem::take(&mut part.scratch);
    p_matrices_into(part, t, &mut scratch.ps_a);
    transpose_into(&scratch.ps_a, &mut scratch.cols_a);
    let freqs = *part.model.freqs();
    let cat_weight = category_weight(&part.rates);

    let lnl;
    {
        let a = root_side(part, n_taxa, d.root_a);
        let b = root_side(part, n_taxa, d.root_b);
        #[cfg(target_arch = "x86_64")]
        {
            lnl = if use_avx2 {
                unsafe {
                    avx2::evaluate_patterns(
                        &part.rates,
                        &part.data.weights,
                        &freqs,
                        &scratch.cols_a,
                        &a,
                        &b,
                        n_patterns,
                        cats,
                        cat_weight,
                        terms,
                    )
                }
            } else {
                portable::evaluate_patterns(
                    &part.rates,
                    &part.data.weights,
                    &freqs,
                    &scratch.cols_a,
                    &a,
                    &b,
                    n_patterns,
                    cats,
                    cat_weight,
                    terms,
                )
            };
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = use_avx2;
            lnl = portable::evaluate_patterns(
                &part.rates,
                &part.data.weights,
                &freqs,
                &scratch.cols_a,
                &a,
                &b,
                n_patterns,
                cats,
                cat_weight,
                terms,
            );
        }
    }
    part.scratch = scratch;
    (lnl, (n_patterns * cats) as u64)
}

fn make_sumtable(part: &mut PartitionState, n_taxa: usize, d: &TraversalDescriptor) {
    make_sumtable_impl(part, n_taxa, d, avx2_usable())
}

fn make_sumtable_impl(
    part: &mut PartitionState,
    n_taxa: usize,
    d: &TraversalDescriptor,
    use_avx2: bool,
) {
    let mut sumtable = std::mem::take(&mut part.sumtable);
    {
        let a = root_side(part, n_taxa, d.root_a);
        let b = root_side(part, n_taxa, d.root_b);
        sumtable_sides_impl(part, &a, &b, &mut sumtable, use_avx2);
    }
    part.sumtable = sumtable;
}

/// The sumtable core over two explicit sides (shared by [`make_sumtable`]
/// and the gradient sweep, so both paths are one kernel).
fn sumtable_sides_impl(
    part: &PartitionState,
    a: &RootSide<'_>,
    b: &RootSide<'_>,
    out: &mut Vec<f64>,
    use_avx2: bool,
) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let freqs = *part.model.freqs();
    let v = *part.model.v();
    let vi = *part.model.v_inv();
    // Transposed V⁻¹ so the `be` reduction can run row-contiguous:
    // `vit[s][e] = vi[e][s]`.
    let mut vit = [[0.0; NUM_STATES]; NUM_STATES];
    for e in 0..NUM_STATES {
        for s in 0..NUM_STATES {
            vit[s][e] = vi[e][s];
        }
    }

    out.resize(n_patterns * cats * NUM_STATES, 0.0);
    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        unsafe {
            avx2::sumtable_patterns(a, b, &freqs, &v, &vit, n_patterns, cats, out);
        }
    } else {
        portable::sumtable_patterns(a, b, &freqs, &v, &vit, n_patterns, cats, out);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = use_avx2;
        portable::sumtable_patterns(a, b, &freqs, &v, &vit, n_patterns, cats, out);
    }
}

/// Materialize one outside CLV. The pattern loops are the *same*
/// `newview_patterns` functions `newview_entry` dispatches to — run over an
/// identity pattern list with explicit sources and destination — so the
/// result is bitwise identical to a per-edge traversal's CLV for the same
/// direction, on both the AVX2 and the portable path.
fn gradient_outside_impl(
    part: &PartitionState,
    scratch: &mut KernelScratch,
    job: &OutsideJob<'_>,
    out_clv: &mut [f64],
    out_scale: &mut [u32],
    use_avx2: bool,
) -> u64 {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    p_matrices_into(part, job.t_left, &mut scratch.ps_a);
    p_matrices_into(part, job.t_right, &mut scratch.ps_b);
    transpose_into(&scratch.ps_a, &mut scratch.cols_a);
    transpose_into(&scratch.ps_b, &mut scratch.cols_b);
    if matches!(job.left, RootSide::Tip(_)) {
        build_tip_lookup_into(&scratch.ps_a, &mut scratch.lookup_a);
    }
    if matches!(job.right, RootSide::Tip(_)) {
        build_tip_lookup_into(&scratch.ps_b, &mut scratch.lookup_b);
    }
    crate::engine::repeats::fill_identity(&mut scratch.grad_ident, n_patterns);

    let left = simd_grad_child(&job.left, &scratch.cols_a, &scratch.lookup_a);
    let right = simd_grad_child(&job.right, &scratch.cols_b, &scratch.lookup_b);
    let patterns: &[u32] = &scratch.grad_ident;

    #[cfg(target_arch = "x86_64")]
    if use_avx2 {
        unsafe {
            avx2::newview_patterns(
                &part.rates,
                &left,
                &right,
                patterns,
                cats,
                out_clv,
                out_scale,
            );
        }
    } else {
        portable::newview_patterns(
            &part.rates,
            &left,
            &right,
            patterns,
            cats,
            out_clv,
            out_scale,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = use_avx2;
        portable::newview_patterns(
            &part.rates,
            &left,
            &right,
            patterns,
            cats,
            out_clv,
            out_scale,
        );
    }
    (n_patterns * cats) as u64
}

/// View a gradient-sweep source as a `newview` child (column-major P for the
/// SIMD matrix–vector products).
fn simd_grad_child<'a>(
    side: &RootSide<'a>,
    cols: &'a [ProbMatrix],
    lookup: &'a [TipTable],
) -> SimdChild<'a> {
    match side {
        RootSide::Tip(codes) => SimdChild::Tip { codes, lookup },
        RootSide::Inner { clv, scale } => SimdChild::Inner { clv, scale, cols },
    }
}

fn derivatives_from_sumtable(
    part: &mut PartitionState,
    t: f64,
    terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
) -> (f64, f64, u64) {
    derivatives_from_sumtable_impl(part, t, avx2_usable(), terms)
}

fn derivatives_from_sumtable_impl(
    part: &mut PartitionState,
    t: f64,
    use_avx2: bool,
    terms: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
) -> (f64, f64, u64) {
    let n_patterns = part.data.n_patterns();
    let cats = part.rates.clv_categories();
    let cat_weight = category_weight(&part.rates);

    let mut scratch = std::mem::take(&mut part.scratch);
    fill_deriv_factors(part, t, &mut scratch.deriv_ex, &mut scratch.deriv_lr);

    #[cfg(target_arch = "x86_64")]
    let (d1, d2) = if use_avx2 {
        unsafe {
            avx2::derivative_patterns(
                &part.rates,
                &part.data.weights,
                &part.sumtable,
                &scratch.deriv_ex,
                &scratch.deriv_lr,
                n_patterns,
                cats,
                cat_weight,
                terms,
            )
        }
    } else {
        portable::derivative_patterns(
            &part.rates,
            &part.data.weights,
            &part.sumtable,
            &scratch.deriv_ex,
            &scratch.deriv_lr,
            n_patterns,
            cats,
            cat_weight,
            terms,
        )
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = use_avx2;
    #[cfg(not(target_arch = "x86_64"))]
    let (d1, d2) = portable::derivative_patterns(
        &part.rates,
        &part.data.weights,
        &part.sumtable,
        &scratch.deriv_ex,
        &scratch.deriv_lr,
        n_patterns,
        cats,
        cat_weight,
        terms,
    );

    part.scratch = scratch;
    (d1, d2, (n_patterns * cats) as u64)
}

/// The AVX2 hardware path. Every function carries
/// `#[target_feature(enable = "avx2")]`; callers must have verified AVX2
/// support (see [`avx2_usable`]).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::SimdChild;
    use crate::engine::backend::{cat_index, RootSide};
    use crate::engine::{LN_MIN_LIKELIHOOD, MIN_LIKELIHOOD, TWO_TO_256};
    use crate::model::pmatrix::ProbMatrix;
    use crate::model::rates::RateHeterogeneity;
    use exa_bio::dna::NUM_STATES;
    use std::arch::x86_64::*;

    /// `P·b` over a column-major P: per-lane
    /// `((P[s][0]·b₀ + P[s][1]·b₁) + P[s][2]·b₂) + P[s][3]·b₃`, the scalar
    /// row-dot association order.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn matvec(cols: &ProbMatrix, b: &[f64]) -> __m256d {
        unsafe {
            let mut acc = _mm256_mul_pd(_mm256_loadu_pd(cols[0].as_ptr()), _mm256_set1_pd(b[0]));
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cols[1].as_ptr()), _mm256_set1_pd(b[1])),
            );
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cols[2].as_ptr()), _mm256_set1_pd(b[2])),
            );
            acc = _mm256_add_pd(
                acc,
                _mm256_mul_pd(_mm256_loadu_pd(cols[3].as_ptr()), _mm256_set1_pd(b[3])),
            );
            acc
        }
    }

    /// In-lane-order horizontal sum starting from `0.0`, matching the
    /// scalar `acc = 0.0; for s { acc += t[s] }` loops bitwise.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum_ordered(v: __m256d) -> f64 {
        let mut arr = [0.0f64; NUM_STATES];
        unsafe { _mm256_storeu_pd(arr.as_mut_ptr(), v) };
        let mut acc = 0.0;
        for x in arr {
            acc += x;
        }
        acc
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    fn child_vec(child: &SimdChild, i: usize, c: usize, cats: usize, k: usize) -> __m256d {
        match child {
            SimdChild::Tip { codes, lookup } => unsafe {
                _mm256_loadu_pd(lookup[k][codes[i] as usize & 0xf].as_ptr())
            },
            SimdChild::Inner { clv, cols, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                matvec(&cols[k], &clv[base..base + NUM_STATES])
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn newview_patterns(
        rates: &RateHeterogeneity,
        left: &SimdChild,
        right: &SimdChild,
        patterns: &[u32],
        cats: usize,
        parent_clv: &mut [f64],
        parent_scale: &mut [u32],
    ) {
        let sign_mask = _mm256_set1_pd(-0.0);
        let upscale = _mm256_set1_pd(TWO_TO_256);
        for &ip in patterns {
            let i = ip as usize;
            let base_i = i * cats * NUM_STATES;
            let mut vmax = _mm256_setzero_pd();
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let lv = child_vec(left, i, c, cats, k);
                let rv = child_vec(right, i, c, cats, k);
                let v = _mm256_mul_pd(lv, rv);
                unsafe {
                    _mm256_storeu_pd(parent_clv.as_mut_ptr().add(base_i + c * NUM_STATES), v);
                }
                vmax = _mm256_max_pd(vmax, _mm256_andnot_pd(sign_mask, v));
            }
            let mut arr = [0.0f64; NUM_STATES];
            unsafe { _mm256_storeu_pd(arr.as_mut_ptr(), vmax) };
            let maxv = arr[0].max(arr[1]).max(arr[2]).max(arr[3]);
            let mut count = left.scale_of(i) + right.scale_of(i);
            if maxv < MIN_LIKELIHOOD {
                for c in 0..cats {
                    unsafe {
                        let p = parent_clv.as_mut_ptr().add(base_i + c * NUM_STATES);
                        _mm256_storeu_pd(p, _mm256_mul_pd(_mm256_loadu_pd(p), upscale));
                    }
                }
                count += 1;
            }
            parent_scale[i] = count;
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn evaluate_patterns(
        rates: &RateHeterogeneity,
        weights: &[f64],
        freqs: &[f64; NUM_STATES],
        cols: &[ProbMatrix],
        a: &RootSide,
        b: &RootSide,
        n_patterns: usize,
        cats: usize,
        cat_weight: f64,
        mut term_sink: Option<&mut Vec<f64>>,
    ) -> f64 {
        if let Some(sink) = term_sink.as_deref_mut() {
            sink.clear();
        }
        let fv = unsafe { _mm256_loadu_pd(freqs.as_ptr()) };
        let mut lnl = 0.0f64;
        for i in 0..n_patterns {
            let mut site = 0.0f64;
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let xa = a.state_slice(i, c, cats);
                let xb = b.state_slice(i, c, cats);
                let pb = matvec(&cols[k], xb);
                let xav = unsafe { _mm256_loadu_pd(xa.as_ptr()) };
                let terms = _mm256_mul_pd(_mm256_mul_pd(fv, xav), pb);
                site += cat_weight * hsum_ordered(terms);
            }
            let count = a.scale_of(i) + b.scale_of(i);
            let site = site.max(f64::MIN_POSITIVE);
            let term = weights[i] * (site.ln() + count as f64 * LN_MIN_LIKELIHOOD);
            if let Some(sink) = term_sink.as_deref_mut() {
                sink.push(term);
            }
            lnl += term;
        }
        lnl
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn sumtable_patterns(
        a: &RootSide,
        b: &RootSide,
        freqs: &[f64; NUM_STATES],
        v: &ProbMatrix,
        vit: &ProbMatrix,
        n_patterns: usize,
        cats: usize,
        sumtable: &mut [f64],
    ) {
        let fv = unsafe { _mm256_loadu_pd(freqs.as_ptr()) };
        for i in 0..n_patterns {
            for c in 0..cats {
                let xa = a.state_slice(i, c, cats);
                let xb = b.state_slice(i, c, cats);
                let fa = _mm256_mul_pd(fv, unsafe { _mm256_loadu_pd(xa.as_ptr()) });
                let mut fa_arr = [0.0f64; NUM_STATES];
                unsafe { _mm256_storeu_pd(fa_arr.as_mut_ptr(), fa) };
                let mut ae = _mm256_setzero_pd();
                let mut be = _mm256_setzero_pd();
                for s in 0..NUM_STATES {
                    unsafe {
                        ae = _mm256_add_pd(
                            ae,
                            _mm256_mul_pd(
                                _mm256_set1_pd(fa_arr[s]),
                                _mm256_loadu_pd(v[s].as_ptr()),
                            ),
                        );
                        be = _mm256_add_pd(
                            be,
                            _mm256_mul_pd(_mm256_set1_pd(xb[s]), _mm256_loadu_pd(vit[s].as_ptr())),
                        );
                    }
                }
                let base = (i * cats + c) * NUM_STATES;
                unsafe {
                    _mm256_storeu_pd(sumtable.as_mut_ptr().add(base), _mm256_mul_pd(ae, be));
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) fn derivative_patterns(
        rates: &RateHeterogeneity,
        weights: &[f64],
        sumtable: &[f64],
        ex: &[[f64; NUM_STATES]],
        lr: &[[f64; NUM_STATES]],
        n_patterns: usize,
        cats: usize,
        cat_weight: f64,
        mut term_sink: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> (f64, f64) {
        if let Some((s1, s2)) = term_sink.as_mut() {
            s1.clear();
            s2.clear();
        }
        let mut d1_sum = 0.0f64;
        let mut d2_sum = 0.0f64;
        for i in 0..n_patterns {
            let mut l = 0.0f64;
            let mut l1 = 0.0f64;
            let mut l2 = 0.0f64;
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let base = (i * cats + c) * NUM_STATES;
                let (w, wl1, wl2);
                unsafe {
                    let st = _mm256_loadu_pd(sumtable.as_ptr().add(base));
                    let ev = _mm256_loadu_pd(ex[k].as_ptr());
                    let lkv = _mm256_loadu_pd(lr[k].as_ptr());
                    w = _mm256_mul_pd(st, ev);
                    wl1 = _mm256_mul_pd(w, lkv);
                    wl2 = _mm256_mul_pd(wl1, lkv);
                }
                let mut wa = [0.0f64; NUM_STATES];
                let mut w1a = [0.0f64; NUM_STATES];
                let mut w2a = [0.0f64; NUM_STATES];
                unsafe {
                    _mm256_storeu_pd(wa.as_mut_ptr(), w);
                    _mm256_storeu_pd(w1a.as_mut_ptr(), wl1);
                    _mm256_storeu_pd(w2a.as_mut_ptr(), wl2);
                }
                for s in 0..NUM_STATES {
                    l += wa[s];
                    l1 += w1a[s];
                    l2 += w2a[s];
                }
            }
            l *= cat_weight;
            l1 *= cat_weight;
            l2 *= cat_weight;
            let l = l.max(f64::MIN_POSITIVE);
            let ratio1 = l1 / l;
            let ratio2 = l2 / l;
            let wgt = weights[i];
            let t1 = wgt * ratio1;
            let t2 = wgt * (ratio2 - ratio1 * ratio1);
            if let Some((s1, s2)) = term_sink.as_mut() {
                s1.push(t1);
                s2.push(t2);
            }
            d1_sum += t1;
            d2_sum += t2;
        }
        (d1_sum, d2_sum)
    }
}

/// The portable fallback: the same chunked algorithms over `[f64; 4]`
/// lanes in plain Rust. Association orders match [`mod@super::scalar`] and
/// the [`mod@avx2`] path exactly, so all three produce identical bits.
mod portable {
    use super::SimdChild;
    use crate::engine::backend::{cat_index, RootSide};
    use crate::engine::{LN_MIN_LIKELIHOOD, MIN_LIKELIHOOD, TWO_TO_256};
    use crate::model::pmatrix::ProbMatrix;
    use crate::model::rates::RateHeterogeneity;
    use exa_bio::dna::NUM_STATES;

    type V4 = [f64; NUM_STATES];

    #[inline(always)]
    fn splat(x: f64) -> V4 {
        [x; NUM_STATES]
    }

    #[inline(always)]
    fn load(s: &[f64]) -> V4 {
        [s[0], s[1], s[2], s[3]]
    }

    #[inline(always)]
    fn mul(a: V4, b: V4) -> V4 {
        [a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]]
    }

    #[inline(always)]
    fn add(a: V4, b: V4) -> V4 {
        [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]]
    }

    #[inline(always)]
    fn matvec(cols: &ProbMatrix, b: &[f64]) -> V4 {
        let mut acc = mul(cols[0], splat(b[0]));
        acc = add(acc, mul(cols[1], splat(b[1])));
        acc = add(acc, mul(cols[2], splat(b[2])));
        acc = add(acc, mul(cols[3], splat(b[3])));
        acc
    }

    #[inline(always)]
    fn hsum_ordered(v: V4) -> f64 {
        let mut acc = 0.0;
        for x in v {
            acc += x;
        }
        acc
    }

    #[inline(always)]
    fn child_vec(child: &SimdChild, i: usize, c: usize, cats: usize, k: usize) -> V4 {
        match child {
            SimdChild::Tip { codes, lookup } => lookup[k][codes[i] as usize & 0xf],
            SimdChild::Inner { clv, cols, .. } => {
                let base = (i * cats + c) * NUM_STATES;
                matvec(&cols[k], &clv[base..base + NUM_STATES])
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn newview_patterns(
        rates: &RateHeterogeneity,
        left: &SimdChild,
        right: &SimdChild,
        patterns: &[u32],
        cats: usize,
        parent_clv: &mut [f64],
        parent_scale: &mut [u32],
    ) {
        for &ip in patterns {
            let i = ip as usize;
            let base_i = i * cats * NUM_STATES;
            let mut maxv = 0.0f64;
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let lv = child_vec(left, i, c, cats, k);
                let rv = child_vec(right, i, c, cats, k);
                let v = mul(lv, rv);
                let out = &mut parent_clv[base_i + c * NUM_STATES..base_i + (c + 1) * NUM_STATES];
                for s in 0..NUM_STATES {
                    out[s] = v[s];
                    maxv = maxv.max(v[s].abs());
                }
            }
            let mut count = left.scale_of(i) + right.scale_of(i);
            if maxv < MIN_LIKELIHOOD {
                for v in parent_clv[base_i..base_i + cats * NUM_STATES].iter_mut() {
                    *v *= TWO_TO_256;
                }
                count += 1;
            }
            parent_scale[i] = count;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn evaluate_patterns(
        rates: &RateHeterogeneity,
        weights: &[f64],
        freqs: &[f64; NUM_STATES],
        cols: &[ProbMatrix],
        a: &RootSide,
        b: &RootSide,
        n_patterns: usize,
        cats: usize,
        cat_weight: f64,
        mut term_sink: Option<&mut Vec<f64>>,
    ) -> f64 {
        if let Some(sink) = term_sink.as_deref_mut() {
            sink.clear();
        }
        let mut lnl = 0.0f64;
        for i in 0..n_patterns {
            let mut site = 0.0f64;
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let xa = a.state_slice(i, c, cats);
                let xb = b.state_slice(i, c, cats);
                let pb = matvec(&cols[k], xb);
                let terms = mul(mul(*freqs, load(xa)), pb);
                site += cat_weight * hsum_ordered(terms);
            }
            let count = a.scale_of(i) + b.scale_of(i);
            let site = site.max(f64::MIN_POSITIVE);
            let term = weights[i] * (site.ln() + count as f64 * LN_MIN_LIKELIHOOD);
            if let Some(sink) = term_sink.as_deref_mut() {
                sink.push(term);
            }
            lnl += term;
        }
        lnl
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn sumtable_patterns(
        a: &RootSide,
        b: &RootSide,
        freqs: &[f64; NUM_STATES],
        v: &ProbMatrix,
        vit: &ProbMatrix,
        n_patterns: usize,
        cats: usize,
        sumtable: &mut [f64],
    ) {
        for i in 0..n_patterns {
            for c in 0..cats {
                let xa = a.state_slice(i, c, cats);
                let xb = b.state_slice(i, c, cats);
                let fa = mul(*freqs, load(xa));
                let mut ae = splat(0.0);
                let mut be = splat(0.0);
                for s in 0..NUM_STATES {
                    ae = add(ae, mul(splat(fa[s]), v[s]));
                    be = add(be, mul(splat(xb[s]), vit[s]));
                }
                let st = mul(ae, be);
                let base = (i * cats + c) * NUM_STATES;
                sumtable[base..base + NUM_STATES].copy_from_slice(&st);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn derivative_patterns(
        rates: &RateHeterogeneity,
        weights: &[f64],
        sumtable: &[f64],
        ex: &[[f64; NUM_STATES]],
        lr: &[[f64; NUM_STATES]],
        n_patterns: usize,
        cats: usize,
        cat_weight: f64,
        mut term_sink: Option<(&mut Vec<f64>, &mut Vec<f64>)>,
    ) -> (f64, f64) {
        if let Some((s1, s2)) = term_sink.as_mut() {
            s1.clear();
            s2.clear();
        }
        let mut d1_sum = 0.0f64;
        let mut d2_sum = 0.0f64;
        for i in 0..n_patterns {
            let mut l = 0.0f64;
            let mut l1 = 0.0f64;
            let mut l2 = 0.0f64;
            for c in 0..cats {
                let k = cat_index(rates, i, c);
                let base = (i * cats + c) * NUM_STATES;
                let st = load(&sumtable[base..base + NUM_STATES]);
                let w = mul(st, ex[k]);
                let wl1 = mul(w, lr[k]);
                let wl2 = mul(wl1, lr[k]);
                for s in 0..NUM_STATES {
                    l += w[s];
                    l1 += wl1[s];
                    l2 += wl2[s];
                }
            }
            l *= cat_weight;
            l1 *= cat_weight;
            l2 *= cat_weight;
            let l = l.max(f64::MIN_POSITIVE);
            let ratio1 = l1 / l;
            let ratio2 = l2 / l;
            let wgt = weights[i];
            let t1 = wgt * ratio1;
            let t2 = wgt * (ratio2 - ratio1 * ratio1);
            if let Some((s1, s2)) = term_sink.as_mut() {
                s1.push(t1);
                s2.push(t2);
            }
            d1_sum += t1;
            d2_sum += t2;
        }
        (d1_sum, d2_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::backend::backend_for;
    use crate::engine::PartitionSlice;
    use crate::model::rates::RateModelKind;
    use crate::tree::Tree;

    /// Hand-built deterministic partition slice with a mix of unambiguous,
    /// ambiguous, and gap tip codes.
    fn slice(n_taxa: usize, n_patterns: usize, seed: u64) -> PartitionSlice {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let tips: Vec<Vec<u8>> = (0..n_taxa)
            .map(|_| {
                (0..n_patterns)
                    .map(|_| match next() % 10 {
                        0..=7 => 1u8 << (next() % 4),
                        8 => 0xf,
                        _ => 0b0101,
                    })
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = (0..n_patterns).map(|_| (1 + next() % 3) as f64).collect();
        PartitionSlice {
            name: "test".into(),
            global_index: 0,
            tips: std::sync::Arc::new(tips),
            weights: std::sync::Arc::new(weights),
            freqs: [0.3, 0.2, 0.25, 0.25],
        }
    }

    /// Run the scalar backend and the SIMD backend's portable path (and the
    /// AVX2 path where available) over the same traversal and assert every
    /// observable output — CLVs, scale counts, lnl, sumtable, derivatives —
    /// is bitwise identical.
    fn check_paths(kind: RateModelKind) {
        let n_taxa = 7;
        let s = slice(n_taxa, 41, 77);
        let mk = || Engine::with_kernel(n_taxa, vec![s.clone()], kind, 0.6, KernelKind::Scalar);
        let mut tree = Tree::random(n_taxa, 1, 5);
        let d = tree.full_traversal_descriptor(0);

        let scalar = backend_for(KernelKind::Scalar);
        let mut eng_scalar = mk();
        let mut eng_port = mk();
        for entry in &d.entries {
            scalar.newview_entry(&mut eng_scalar.parts[0], n_taxa, entry);
            newview_entry_impl(&mut eng_port.parts[0], n_taxa, entry, false);
        }
        assert_eq!(eng_scalar.parts[0].clv, eng_port.parts[0].clv);
        assert_eq!(eng_scalar.parts[0].scale, eng_port.parts[0].scale);

        let mut terms_s = Vec::new();
        let mut terms_p = Vec::new();
        let (lnl_s, w_s) =
            scalar.evaluate_root(&mut eng_scalar.parts[0], n_taxa, &d, Some(&mut terms_s));
        let (lnl_p, w_p) = evaluate_root_impl(
            &mut eng_port.parts[0],
            n_taxa,
            &d,
            false,
            Some(&mut terms_p),
        );
        assert_eq!(lnl_s.to_bits(), lnl_p.to_bits(), "{lnl_s} vs {lnl_p}");
        assert_eq!(w_s, w_p);
        assert_eq!(terms_s.len(), 41);
        assert_eq!(terms_s, terms_p, "per-pattern lnl terms differ");
        let replayed: f64 = terms_s.iter().sum();
        assert_eq!(
            replayed.to_bits(),
            lnl_s.to_bits(),
            "terms do not replay lnl"
        );

        scalar.make_sumtable(&mut eng_scalar.parts[0], n_taxa, &d);
        make_sumtable_impl(&mut eng_port.parts[0], n_taxa, &d, false);
        assert_eq!(eng_scalar.parts[0].sumtable, eng_port.parts[0].sumtable);

        for t in [1e-6, 0.07, 0.9] {
            let (mut s1, mut s2) = (Vec::new(), Vec::new());
            let (mut p1, mut p2) = (Vec::new(), Vec::new());
            let (a1, a2, _) = scalar.derivatives_from_sumtable(
                &mut eng_scalar.parts[0],
                t,
                Some((&mut s1, &mut s2)),
            );
            let (b1, b2, _) = derivatives_from_sumtable_impl(
                &mut eng_port.parts[0],
                t,
                false,
                Some((&mut p1, &mut p2)),
            );
            assert_eq!(a1.to_bits(), b1.to_bits(), "d1 at {t}");
            assert_eq!(a2.to_bits(), b2.to_bits(), "d2 at {t}");
            assert_eq!(s1, p1, "d1 terms at {t}");
            assert_eq!(s2, p2, "d2 terms at {t}");
            assert_eq!(s1.iter().sum::<f64>().to_bits(), a1.to_bits());
            assert_eq!(s2.iter().sum::<f64>().to_bits(), a2.to_bits());
        }

        if avx2_usable() {
            let mut eng_avx = mk();
            for entry in &d.entries {
                newview_entry_impl(&mut eng_avx.parts[0], n_taxa, entry, true);
            }
            assert_eq!(eng_scalar.parts[0].clv, eng_avx.parts[0].clv);
            assert_eq!(eng_scalar.parts[0].scale, eng_avx.parts[0].scale);
            let mut terms_a = Vec::new();
            let (lnl_a, _) =
                evaluate_root_impl(&mut eng_avx.parts[0], n_taxa, &d, true, Some(&mut terms_a));
            assert_eq!(lnl_s.to_bits(), lnl_a.to_bits(), "{lnl_s} vs {lnl_a}");
            assert_eq!(terms_s, terms_a, "avx2 per-pattern lnl terms differ");
            make_sumtable_impl(&mut eng_avx.parts[0], n_taxa, &d, true);
            assert_eq!(eng_scalar.parts[0].sumtable, eng_avx.parts[0].sumtable);
            for t in [1e-6, 0.07, 0.9] {
                let (mut s1, mut s2) = (Vec::new(), Vec::new());
                let (mut v1, mut v2) = (Vec::new(), Vec::new());
                let (a1, a2, _) = scalar.derivatives_from_sumtable(
                    &mut eng_scalar.parts[0],
                    t,
                    Some((&mut s1, &mut s2)),
                );
                let (b1, b2, _) = derivatives_from_sumtable_impl(
                    &mut eng_avx.parts[0],
                    t,
                    true,
                    Some((&mut v1, &mut v2)),
                );
                assert_eq!(a1.to_bits(), b1.to_bits(), "avx2 d1 at {t}");
                assert_eq!(a2.to_bits(), b2.to_bits(), "avx2 d2 at {t}");
                assert_eq!(s1, v1, "avx2 d1 terms at {t}");
                assert_eq!(s2, v2, "avx2 d2 terms at {t}");
            }
        }
    }

    /// The gradient-sweep entry points must hold the same dual-path bitwise
    /// contract as the classic kernels: the outside-CLV builder runs the
    /// shared `newview_patterns` core over an identity pattern list, so
    /// scalar, portable, and AVX2 paths must agree bit for bit on the CLV,
    /// the scale counts, and the work accounting.
    #[test]
    fn gradient_outside_paths_match_scalar_bitwise() {
        let n_taxa = 7;
        let s = slice(n_taxa, 41, 77);
        let mk = || {
            Engine::with_kernel(
                n_taxa,
                vec![s.clone()],
                RateModelKind::Gamma,
                0.6,
                KernelKind::Scalar,
            )
        };
        let mut tree = Tree::random(n_taxa, 1, 5);
        let d = tree.full_traversal_descriptor(0);
        let plan = tree.gradient_plan(0);
        // A first-generation step: both sides resolve to inward CLVs, so
        // the job can be built without running the whole sweep.
        let step = plan
            .steps
            .iter()
            .find(|st| st.left.from_outside.is_none() && st.right.from_outside.is_none())
            .expect("plan must start at a root endpoint");

        let scalar = backend_for(KernelKind::Scalar);
        let run = |path: Option<bool>| -> (Vec<f64>, Vec<u32>, u64) {
            let mut eng = mk();
            for entry in &d.entries {
                scalar.newview_entry(&mut eng.parts[0], n_taxa, entry);
            }
            let part = &mut eng.parts[0];
            let gi = part.data.global_index;
            let mut out_clv = vec![0.0; part.clv_len()];
            let mut out_scale = vec![0u32; part.data.n_patterns()];
            let mut scratch = std::mem::take(&mut part.scratch);
            let w;
            {
                let job = OutsideJob {
                    t_left: Engine::branch_length(&step.left.lengths, gi),
                    t_right: Engine::branch_length(&step.right.lengths, gi),
                    left: root_side(part, n_taxa, step.left.node),
                    right: root_side(part, n_taxa, step.right.node),
                };
                w = match path {
                    None => scalar.gradient_outside(
                        part,
                        &mut scratch,
                        &job,
                        &mut out_clv,
                        &mut out_scale,
                    ),
                    Some(avx2) => gradient_outside_impl(
                        part,
                        &mut scratch,
                        &job,
                        &mut out_clv,
                        &mut out_scale,
                        avx2,
                    ),
                };
            }
            part.scratch = scratch;
            (out_clv, out_scale, w)
        };

        let (clv_s, scale_s, w_s) = run(None);
        let (clv_p, scale_p, w_p) = run(Some(false));
        assert_eq!(clv_s, clv_p, "portable outside CLV differs");
        assert_eq!(scale_s, scale_p, "portable outside scale differs");
        assert_eq!(w_s, w_p);
        if avx2_usable() {
            let (clv_a, scale_a, w_a) = run(Some(true));
            assert_eq!(clv_s, clv_a, "avx2 outside CLV differs");
            assert_eq!(scale_s, scale_a, "avx2 outside scale differs");
            assert_eq!(w_s, w_a);
        }
    }

    #[test]
    fn portable_chunks_match_scalar_bitwise_gamma() {
        check_paths(RateModelKind::Gamma);
    }

    #[test]
    fn portable_chunks_match_scalar_bitwise_psr() {
        check_paths(RateModelKind::Psr);
    }
}
