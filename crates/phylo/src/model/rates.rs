//! Rate heterogeneity among sites: the Γ model (Yang 1994) and the PSR
//! (Per-Site Rate) model — RAxML's CAT model renamed, as §IV-B of the paper
//! explains, to avoid confusion with PhyloBayes' CAT.
//!
//! * **Γ**: four discrete rate categories with equal weights; every site is
//!   integrated over all categories. CLVs carry 4 categories × 4 states.
//! * **PSR**: every site (pattern) has one individually optimized rate,
//!   quantized into at most [`PSR_MAX_CATEGORIES`] distinct values so the
//!   engine only exponentiates a bounded set of P-matrices per branch. CLVs
//!   carry 1 category × 4 states — the 4× memory saving the paper calls
//!   *the* main advantage of PSR (§IV-C).

use serde::{Deserialize, Serialize};

use crate::numerics::gamma::discrete_gamma_rates;

/// Bounds RAxML applies to the Γ shape parameter.
pub const ALPHA_MIN: f64 = 0.02;
pub const ALPHA_MAX: f64 = 100.0;

/// Bounds on individual per-site rates under PSR.
pub const PSR_RATE_MIN: f64 = 1e-4;
pub const PSR_RATE_MAX: f64 = 100.0;

/// Maximum number of distinct PSR rate categories after quantization
/// (RAxML's default CAT category cap).
pub const PSR_MAX_CATEGORIES: usize = 25;

/// Number of Γ categories used throughout (RAxML hard-codes 4).
pub const GAMMA_CATEGORIES: usize = 4;

/// Which rate-heterogeneity model a partition runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateModelKind {
    Gamma,
    Psr,
}

/// Per-partition rate-heterogeneity state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateHeterogeneity {
    /// Discrete Γ with shape `alpha`; `rates` are the category rates
    /// (mean 1, ascending), all with weight `1/len`.
    Gamma { alpha: f64, rates: Vec<f64> },
    /// Per-site rates, quantized: `pattern_cat[i]` indexes into
    /// `category_rates`. The weighted mean rate over patterns is kept at 1.
    Psr {
        category_rates: Vec<f64>,
        pattern_cat: Vec<u32>,
    },
}

impl RateHeterogeneity {
    /// A fresh Γ model with the given shape.
    pub fn gamma(alpha: f64) -> RateHeterogeneity {
        let alpha = alpha.clamp(ALPHA_MIN, ALPHA_MAX);
        RateHeterogeneity::Gamma {
            alpha,
            rates: discrete_gamma_rates(alpha, GAMMA_CATEGORIES),
        }
    }

    /// A fresh PSR model with all `n_patterns` rates at 1.
    pub fn psr(n_patterns: usize) -> RateHeterogeneity {
        RateHeterogeneity::Psr {
            category_rates: vec![1.0],
            pattern_cat: vec![0; n_patterns],
        }
    }

    /// Which model this is.
    pub fn kind(&self) -> RateModelKind {
        match self {
            RateHeterogeneity::Gamma { .. } => RateModelKind::Gamma,
            RateHeterogeneity::Psr { .. } => RateModelKind::Psr,
        }
    }

    /// CLV rate-category count: Γ integrates over its categories, PSR stores
    /// one conditional per pattern.
    pub fn clv_categories(&self) -> usize {
        match self {
            RateHeterogeneity::Gamma { rates, .. } => rates.len(),
            RateHeterogeneity::Psr { .. } => 1,
        }
    }

    /// Distinct rate values for which P-matrices must be exponentiated.
    pub fn distinct_rates(&self) -> &[f64] {
        match self {
            RateHeterogeneity::Gamma { rates, .. } => rates,
            RateHeterogeneity::Psr { category_rates, .. } => category_rates,
        }
    }

    /// The rate-category index of `pattern` (always the Γ category count
    /// question is moot — Γ returns `None` since all categories apply).
    pub fn pattern_category(&self, pattern: usize) -> Option<usize> {
        match self {
            RateHeterogeneity::Gamma { .. } => None,
            RateHeterogeneity::Psr { pattern_cat, .. } => Some(pattern_cat[pattern] as usize),
        }
    }

    /// Update the Γ shape parameter (clamped) and its category rates.
    ///
    /// # Panics
    /// Panics if called on a PSR model.
    pub fn set_alpha(&mut self, new_alpha: f64) {
        match self {
            RateHeterogeneity::Gamma { alpha, rates } => {
                *alpha = new_alpha.clamp(ALPHA_MIN, ALPHA_MAX);
                *rates = discrete_gamma_rates(*alpha, GAMMA_CATEGORIES);
            }
            RateHeterogeneity::Psr { .. } => panic!("set_alpha on a PSR model"),
        }
    }

    /// The Γ shape, if this is a Γ model.
    pub fn alpha(&self) -> Option<f64> {
        match self {
            RateHeterogeneity::Gamma { alpha, .. } => Some(*alpha),
            RateHeterogeneity::Psr { .. } => None,
        }
    }

    /// Install freshly optimized per-pattern rates: quantize into at most
    /// `max_categories` categories (weight-balanced over `weights`) and
    /// normalize so the weighted mean rate is exactly 1.
    ///
    /// # Panics
    /// Panics if called on a Γ model, or on length mismatch.
    pub fn set_pattern_rates(&mut self, rates: &[f64], weights: &[f64], max_categories: usize) {
        let RateHeterogeneity::Psr {
            category_rates,
            pattern_cat,
        } = self
        else {
            panic!("set_pattern_rates on a Gamma model");
        };
        assert_eq!(rates.len(), weights.len());
        assert_eq!(rates.len(), pattern_cat.len());
        assert!(max_categories >= 1);

        // Normalize the raw rates to weighted mean 1 first.
        let wsum: f64 = weights.iter().sum();
        let mean: f64 = rates.iter().zip(weights).map(|(r, w)| r * w).sum::<f64>() / wsum;
        let norm: Vec<f64> = rates
            .iter()
            .map(|r| (r / mean).clamp(PSR_RATE_MIN, PSR_RATE_MAX))
            .collect();

        // Weight-balanced quantization: sort patterns by rate, cut into
        // `max_categories` buckets of roughly equal total weight, use each
        // bucket's weighted mean as the category rate.
        let mut order: Vec<usize> = (0..norm.len()).collect();
        order.sort_by(|&a, &b| norm[a].partial_cmp(&norm[b]).unwrap());
        let k = max_categories.min(norm.len()).max(1);
        let target = wsum / k as f64;

        let mut cats: Vec<f64> = Vec::with_capacity(k);
        let mut assignment = vec![0u32; norm.len()];
        let mut bucket_w = 0.0;
        let mut bucket_rw = 0.0;
        let mut bucket_members: Vec<usize> = Vec::new();
        let mut flushed_w = 0.0;
        for (pos, &i) in order.iter().enumerate() {
            bucket_w += weights[i];
            bucket_rw += norm[i] * weights[i];
            bucket_members.push(i);
            let remaining_buckets = k - cats.len();
            let is_last_pattern = pos + 1 == order.len();
            let quota_hit = flushed_w + bucket_w >= target * (cats.len() + 1) as f64;
            if (quota_hit && remaining_buckets > 1) || is_last_pattern {
                let rate = bucket_rw / bucket_w;
                let cat = cats.len() as u32;
                for &m in &bucket_members {
                    assignment[m] = cat;
                }
                cats.push(rate);
                flushed_w += bucket_w;
                bucket_w = 0.0;
                bucket_rw = 0.0;
                bucket_members.clear();
            }
        }

        // Re-normalize category rates so the weighted mean stays exactly 1.
        let mut num = 0.0;
        for (i, &c) in assignment.iter().enumerate() {
            num += cats[c as usize] * weights[i];
        }
        let scale = wsum / num;
        for c in cats.iter_mut() {
            *c = (*c * scale).clamp(PSR_RATE_MIN, PSR_RATE_MAX);
        }

        *category_rates = cats;
        *pattern_cat = assignment;
    }

    /// The effective rate of `pattern` (PSR) — Γ models have no single
    /// per-pattern rate.
    pub fn pattern_rate(&self, pattern: usize) -> Option<f64> {
        match self {
            RateHeterogeneity::Gamma { .. } => None,
            RateHeterogeneity::Psr {
                category_rates,
                pattern_cat,
            } => Some(category_rates[pattern_cat[pattern] as usize]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_construction() {
        let g = RateHeterogeneity::gamma(0.7);
        assert_eq!(g.kind(), RateModelKind::Gamma);
        assert_eq!(g.clv_categories(), GAMMA_CATEGORIES);
        assert_eq!(g.distinct_rates().len(), 4);
        assert_eq!(g.alpha(), Some(0.7));
        let mean: f64 = g.distinct_rates().iter().sum::<f64>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gamma_alpha_clamped() {
        let g = RateHeterogeneity::gamma(1e9);
        assert_eq!(g.alpha(), Some(ALPHA_MAX));
        let mut g2 = RateHeterogeneity::gamma(1.0);
        g2.set_alpha(0.0);
        assert_eq!(g2.alpha(), Some(ALPHA_MIN));
    }

    #[test]
    fn psr_starts_uniform() {
        let p = RateHeterogeneity::psr(10);
        assert_eq!(p.kind(), RateModelKind::Psr);
        assert_eq!(p.clv_categories(), 1);
        assert_eq!(p.distinct_rates(), &[1.0]);
        assert_eq!(p.pattern_rate(3), Some(1.0));
        assert_eq!(p.pattern_category(3), Some(0));
    }

    #[test]
    fn psr_memory_is_quarter_of_gamma() {
        let g = RateHeterogeneity::gamma(1.0);
        let p = RateHeterogeneity::psr(100);
        assert_eq!(g.clv_categories(), 4 * p.clv_categories());
    }

    #[test]
    fn set_pattern_rates_normalizes_mean() {
        let mut p = RateHeterogeneity::psr(4);
        let weights = [1.0, 2.0, 1.0, 1.0];
        p.set_pattern_rates(&[0.5, 2.0, 4.0, 0.1], &weights, 25);
        let mut mean = 0.0;
        for i in 0..4 {
            mean += p.pattern_rate(i).unwrap() * weights[i];
        }
        mean /= weights.iter().sum::<f64>();
        assert!((mean - 1.0).abs() < 1e-10, "mean={mean}");
    }

    #[test]
    fn quantization_caps_categories() {
        let mut p = RateHeterogeneity::psr(100);
        let rates: Vec<f64> = (0..100).map(|i| 0.1 + i as f64 * 0.05).collect();
        let weights = vec![1.0; 100];
        p.set_pattern_rates(&rates, &weights, 25);
        assert!(p.distinct_rates().len() <= 25);
        assert!(
            p.distinct_rates().len() >= 20,
            "{}",
            p.distinct_rates().len()
        );
        // Quantization preserves rate ordering.
        for i in 1..100 {
            assert!(p.pattern_rate(i).unwrap() >= p.pattern_rate(i - 1).unwrap() - 1e-12);
        }
    }

    #[test]
    fn quantization_fewer_patterns_than_categories() {
        let mut p = RateHeterogeneity::psr(3);
        p.set_pattern_rates(&[1.0, 2.0, 3.0], &[1.0; 3], 25);
        assert_eq!(p.distinct_rates().len(), 3);
    }

    #[test]
    fn identical_rates_collapse() {
        let mut p = RateHeterogeneity::psr(5);
        p.set_pattern_rates(&[2.0; 5], &[1.0; 5], 25);
        // All rates identical → every category rate is 1 after normalization.
        for i in 0..5 {
            assert!((p.pattern_rate(i).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "set_alpha on a PSR model")]
    fn alpha_on_psr_panics() {
        RateHeterogeneity::psr(2).set_alpha(1.0);
    }

    #[test]
    #[should_panic(expected = "set_pattern_rates on a Gamma model")]
    fn pattern_rates_on_gamma_panics() {
        RateHeterogeneity::gamma(1.0).set_pattern_rates(&[1.0], &[1.0], 25);
    }
}
