//! Transition-probability matrices `P(t) = e^{Qt}` and their branch-length
//! derivatives, computed in the GTR eigenbasis.

use super::gtr::GtrModel;
use exa_bio::dna::NUM_STATES;

/// A 4×4 transition matrix, `p[i][j] = P(state j at child | state i at parent)`.
pub type ProbMatrix = [[f64; NUM_STATES]; NUM_STATES];

/// `P(r·t) = V · diag(e^{λ_k r t}) · V⁻¹` for branch length `t` and rate
/// multiplier `r` (the rate-category or per-site rate).
pub fn prob_matrix(model: &GtrModel, t: f64, r: f64) -> ProbMatrix {
    debug_assert!(t >= 0.0 && r >= 0.0, "negative branch length or rate");
    let lam = model.eigenvalues();
    let v = model.v();
    let vi = model.v_inv();
    let mut ex = [0.0; NUM_STATES];
    for k in 0..NUM_STATES {
        ex[k] = (lam[k] * r * t).exp();
    }
    let mut p = [[0.0; NUM_STATES]; NUM_STATES];
    for i in 0..NUM_STATES {
        for j in 0..NUM_STATES {
            let mut s = 0.0;
            for k in 0..NUM_STATES {
                s += v[i][k] * ex[k] * vi[k][j];
            }
            // Round-off can push tiny probabilities fractionally negative;
            // clamp so downstream likelihoods stay non-negative.
            p[i][j] = s.max(0.0);
        }
    }
    p
}

/// `(P, dP/dt, d²P/dt²)` at `t` with rate multiplier `r`:
/// derivative factors are `(λ_k r)` and `(λ_k r)²` in the eigenbasis.
pub fn prob_matrix_derivs(
    model: &GtrModel,
    t: f64,
    r: f64,
) -> (ProbMatrix, ProbMatrix, ProbMatrix) {
    let lam = model.eigenvalues();
    let v = model.v();
    let vi = model.v_inv();
    let mut p = [[0.0; NUM_STATES]; NUM_STATES];
    let mut d1 = [[0.0; NUM_STATES]; NUM_STATES];
    let mut d2 = [[0.0; NUM_STATES]; NUM_STATES];
    for k in 0..NUM_STATES {
        let lk = lam[k] * r;
        let e = (lk * t).exp();
        for i in 0..NUM_STATES {
            let vik = v[i][k];
            for j in 0..NUM_STATES {
                let w = vik * e * vi[k][j];
                p[i][j] += w;
                d1[i][j] += w * lk;
                d2[i][j] += w * lk * lk;
            }
        }
    }
    for row in p.iter_mut() {
        for x in row.iter_mut() {
            *x = x.max(0.0);
        }
    }
    (p, d1, d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GtrModel {
        GtrModel::new([1.3, 3.2, 0.9, 1.1, 4.0, 1.0], [0.3, 0.2, 0.25, 0.25])
    }

    #[test]
    fn identity_at_zero() {
        let p = prob_matrix(&sample(), 0.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expect).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn rows_are_distributions() {
        for &t in &[0.001, 0.1, 1.0, 10.0] {
            let p = prob_matrix(&sample(), t, 1.0);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-10, "t={t} row {i}: {s}");
                for &x in row {
                    assert!((0.0..=1.0 + 1e-12).contains(&x));
                }
            }
        }
    }

    #[test]
    fn stationary_limit() {
        let m = sample();
        let p = prob_matrix(&m, 1e4, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((p[i][j] - m.freqs()[j]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s+t) = P(s) · P(t).
        let m = sample();
        let (s, t) = (0.17, 0.45);
        let ps = prob_matrix(&m, s, 1.0);
        let pt = prob_matrix(&m, t, 1.0);
        let pst = prob_matrix(&m, s + t, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let mut prod = 0.0;
                for k in 0..4 {
                    prod += ps[i][k] * pt[k][j];
                }
                assert!((prod - pst[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn rate_multiplier_scales_time() {
        let m = sample();
        let a = prob_matrix(&m, 2.0, 0.5);
        let b = prob_matrix(&m, 1.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[i][j] - b[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let m = sample();
        let t = 0.3;
        let h = 1e-6;
        let (p, d1, d2) = prob_matrix_derivs(&m, t, 1.3);
        let pp = prob_matrix(&m, t + h, 1.3);
        let pm = prob_matrix(&m, t - h, 1.3);
        for i in 0..4 {
            for j in 0..4 {
                let fd1 = (pp[i][j] - pm[i][j]) / (2.0 * h);
                let fd2 = (pp[i][j] - 2.0 * p[i][j] + pm[i][j]) / (h * h);
                assert!(
                    (d1[i][j] - fd1).abs() < 1e-6,
                    "d1 ({i},{j}): {} vs {fd1}",
                    d1[i][j]
                );
                assert!(
                    (d2[i][j] - fd2).abs() < 1e-3,
                    "d2 ({i},{j}): {} vs {fd2}",
                    d2[i][j]
                );
            }
        }
    }

    #[test]
    fn derivative_rows_sum_to_zero() {
        // d/dt of a stochastic matrix has zero row sums.
        let (_, d1, d2) = prob_matrix_derivs(&sample(), 0.7, 1.0);
        for i in 0..4 {
            assert!(d1[i].iter().sum::<f64>().abs() < 1e-10);
            assert!(d2[i].iter().sum::<f64>().abs() < 1e-9);
        }
    }
}
