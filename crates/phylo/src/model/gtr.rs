//! The General Time Reversible (GTR) nucleotide substitution model.
//!
//! A GTR model is defined by six exchangeability rates `r(AC), r(AG), r(AT),
//! r(CG), r(CT), r(GT)` (the last is fixed to 1 as the reference) and the
//! stationary base frequencies π. The instantaneous rate matrix is
//! `Q[i][j] = r(ij)·π[j]` for `i ≠ j`, diagonal set so rows sum to zero, and
//! the whole matrix scaled so the expected substitution rate at stationarity
//! is 1 (`-Σ π_i Q[i][i] = 1`), which makes branch lengths expected
//! substitutions per site.
//!
//! Because GTR is time-reversible, `B = D^{1/2} Q D^{-1/2}` with
//! `D = diag(π)` is symmetric; its eigendecomposition `B = U Λ Uᵀ` gives
//! `Q = V Λ V⁻¹` with `V = D^{-1/2} U`, `V⁻¹ = Uᵀ D^{1/2}`. Transition
//! matrices and likelihood derivatives are computed in this eigenbasis
//! (exactly the scheme RAxML uses).

use crate::numerics::eigen::sym_eigen;
use exa_bio::dna::NUM_STATES;
use serde::{Deserialize, Serialize};

/// Number of free exchangeability rates (the sixth, GT, is the reference).
pub const NUM_FREE_RATES: usize = 5;
/// Total exchangeability rates.
pub const NUM_RATES: usize = 6;

/// Lower/upper bounds RAxML applies to exchangeability rates during
/// optimization.
pub const RATE_MIN: f64 = 1e-4;
pub const RATE_MAX: f64 = 1e4;

/// Index of the exchangeability rate for the unordered state pair `(i, j)`.
fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < NUM_STATES);
    match (i, j) {
        (0, 1) => 0, // AC
        (0, 2) => 1, // AG
        (0, 3) => 2, // AT
        (1, 2) => 3, // CG
        (1, 3) => 4, // CT
        (2, 3) => 5, // GT (reference)
        _ => unreachable!(),
    }
}

/// A fully-specified GTR model with its cached eigendecomposition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GtrModel {
    /// Exchangeabilities `[AC, AG, AT, CG, CT, GT]`; `GT` is held at 1.
    rates: [f64; NUM_RATES],
    /// Stationary frequencies π (positive, sum 1).
    freqs: [f64; NUM_STATES],
    /// Eigenvalues of Q (all ≤ 0; one is exactly 0).
    eigenvalues: [f64; NUM_STATES],
    /// `V[i][k] = U[i][k] / sqrt(π_i)` — right eigenvectors of Q as columns.
    v: [[f64; NUM_STATES]; NUM_STATES],
    /// `V⁻¹[k][j] = U[j][k] · sqrt(π_j)`.
    v_inv: [[f64; NUM_STATES]; NUM_STATES],
}

impl GtrModel {
    /// Jukes-Cantor-like default: all exchangeabilities 1, uniform π.
    pub fn jukes_cantor() -> GtrModel {
        GtrModel::new([1.0; NUM_RATES], [0.25; NUM_STATES])
    }

    /// Build a GTR model; normalizes frequencies and fixes `rates[5] = 1`.
    ///
    /// # Panics
    /// Panics on non-positive rates or frequencies.
    pub fn new(mut rates: [f64; NUM_RATES], mut freqs: [f64; NUM_STATES]) -> GtrModel {
        for r in &rates {
            assert!(*r > 0.0 && r.is_finite(), "non-positive GTR rate {r}");
        }
        for f in &freqs {
            assert!(*f > 0.0 && f.is_finite(), "non-positive base frequency {f}");
        }
        // Normalize to the GT = 1 convention and Σπ = 1.
        let reference = rates[NUM_RATES - 1];
        for r in rates.iter_mut() {
            *r /= reference;
        }
        let fsum: f64 = freqs.iter().sum();
        for f in freqs.iter_mut() {
            *f /= fsum;
        }

        let mut m = GtrModel {
            rates,
            freqs,
            eigenvalues: [0.0; NUM_STATES],
            v: [[0.0; NUM_STATES]; NUM_STATES],
            v_inv: [[0.0; NUM_STATES]; NUM_STATES],
        };
        m.decompose();
        m
    }

    /// The (normalized) instantaneous rate matrix Q.
    pub fn q_matrix(&self) -> [[f64; NUM_STATES]; NUM_STATES] {
        let mut q = [[0.0; NUM_STATES]; NUM_STATES];
        for i in 0..NUM_STATES {
            let mut rowsum = 0.0;
            for j in 0..NUM_STATES {
                if i == j {
                    continue;
                }
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                q[i][j] = self.rates[pair_index(a, b)] * self.freqs[j];
                rowsum += q[i][j];
            }
            q[i][i] = -rowsum;
        }
        // Scale so the mean rate at stationarity is 1.
        let mean: f64 = (0..NUM_STATES).map(|i| -self.freqs[i] * q[i][i]).sum();
        for row in q.iter_mut() {
            for x in row.iter_mut() {
                *x /= mean;
            }
        }
        q
    }

    fn decompose(&mut self) {
        let q = self.q_matrix();
        // B = D^{1/2} Q D^{-1/2} is symmetric.
        let sqrt_pi: Vec<f64> = self.freqs.iter().map(|f| f.sqrt()).collect();
        let b: Vec<Vec<f64>> = (0..NUM_STATES)
            .map(|i| {
                (0..NUM_STATES)
                    .map(|j| q[i][j] * sqrt_pi[i] / sqrt_pi[j])
                    .collect()
            })
            .collect();
        // Symmetrize away round-off before handing to the Jacobi solver.
        let mut bs = b.clone();
        for i in 0..NUM_STATES {
            for j in 0..NUM_STATES {
                bs[i][j] = 0.5 * (b[i][j] + b[j][i]);
            }
        }
        let e = sym_eigen(&bs);
        for k in 0..NUM_STATES {
            self.eigenvalues[k] = e.values[k];
            for i in 0..NUM_STATES {
                self.v[i][k] = e.vectors[i][k] / sqrt_pi[i];
                self.v_inv[k][i] = e.vectors[i][k] * sqrt_pi[i];
            }
        }
    }

    /// Exchangeability rates `[AC, AG, AT, CG, CT, GT]`.
    pub fn rates(&self) -> &[f64; NUM_RATES] {
        &self.rates
    }

    /// Stationary frequencies π.
    pub fn freqs(&self) -> &[f64; NUM_STATES] {
        &self.freqs
    }

    /// Eigenvalues of Q, ascending.
    pub fn eigenvalues(&self) -> &[f64; NUM_STATES] {
        &self.eigenvalues
    }

    /// Right eigenvectors (columns of V).
    pub fn v(&self) -> &[[f64; NUM_STATES]; NUM_STATES] {
        &self.v
    }

    /// Inverse eigenvector matrix (rows of V⁻¹).
    pub fn v_inv(&self) -> &[[f64; NUM_STATES]; NUM_STATES] {
        &self.v_inv
    }

    /// Replace one free exchangeability rate (0..=4) and refresh the
    /// decomposition. The value is clamped into `[RATE_MIN, RATE_MAX]`.
    pub fn set_rate(&mut self, index: usize, value: f64) {
        assert!(
            index < NUM_FREE_RATES,
            "rate index {index} out of range (GT is fixed)"
        );
        self.rates[index] = value.clamp(RATE_MIN, RATE_MAX);
        self.decompose();
    }

    /// Replace all free exchangeability rates at once (batch proposal form).
    pub fn set_rates(&mut self, values: &[f64; NUM_FREE_RATES]) {
        for (i, &v) in values.iter().enumerate() {
            self.rates[i] = v.clamp(RATE_MIN, RATE_MAX);
        }
        self.decompose();
    }
}

impl PartialEq for GtrModel {
    fn eq(&self, other: &Self) -> bool {
        self.rates == other.rates && self.freqs == other.freqs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GtrModel {
        GtrModel::new([1.3, 3.2, 0.9, 1.1, 4.0, 1.0], [0.3, 0.2, 0.25, 0.25])
    }

    #[test]
    fn q_rows_sum_to_zero() {
        let q = sample().q_matrix();
        for row in q {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12, "{row:?}");
        }
    }

    #[test]
    fn q_mean_rate_is_one() {
        let m = sample();
        let q = m.q_matrix();
        let mean: f64 = (0..4).map(|i| -m.freqs()[i] * q[i][i]).sum();
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detailed_balance() {
        // Time reversibility: π_i Q_ij = π_j Q_ji.
        let m = sample();
        let q = m.q_matrix();
        for i in 0..4 {
            for j in 0..4 {
                let lhs = m.freqs()[i] * q[i][j];
                let rhs = m.freqs()[j] * q[j][i];
                assert!((lhs - rhs).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigen_reconstructs_q() {
        let m = sample();
        let q = m.q_matrix();
        for i in 0..4 {
            for j in 0..4 {
                let mut x = 0.0;
                for k in 0..4 {
                    x += m.v()[i][k] * m.eigenvalues()[k] * m.v_inv()[k][j];
                }
                assert!((x - q[i][j]).abs() < 1e-10, "({i},{j}): {x} vs {}", q[i][j]);
            }
        }
    }

    #[test]
    fn one_zero_eigenvalue_rest_negative() {
        let m = sample();
        let ev = m.eigenvalues();
        // Ascending order: last is the zero eigenvalue.
        assert!(ev[3].abs() < 1e-10, "{ev:?}");
        for &l in &ev[..3] {
            assert!(l < -1e-6, "{ev:?}");
        }
    }

    #[test]
    fn v_vinv_are_inverses() {
        let m = sample();
        for i in 0..4 {
            for j in 0..4 {
                let mut x = 0.0;
                for k in 0..4 {
                    x += m.v()[i][k] * m.v_inv()[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((x - expect).abs() < 1e-10, "({i},{j}): {x}");
            }
        }
    }

    #[test]
    fn normalization_conventions() {
        let m = GtrModel::new([2.0, 4.0, 2.0, 2.0, 8.0, 2.0], [1.0, 1.0, 1.0, 1.0]);
        // GT scaled to 1, frequencies to 1/4.
        assert!((m.rates()[5] - 1.0).abs() < 1e-15);
        assert!((m.rates()[1] - 2.0).abs() < 1e-15);
        for f in m.freqs() {
            assert!((f - 0.25).abs() < 1e-15);
        }
    }

    #[test]
    fn set_rate_clamps_and_redecomposes() {
        let mut m = sample();
        m.set_rate(0, 1e9);
        assert_eq!(m.rates()[0], RATE_MAX);
        // Still a valid decomposition.
        let q = m.q_matrix();
        for row in q {
            assert!(row.iter().sum::<f64>().abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(std::panic::catch_unwind(|| GtrModel::new([0.0; 6], [0.25; 4])).is_err());
        assert!(
            std::panic::catch_unwind(|| GtrModel::new([1.0; 6], [0.0, 0.5, 0.25, 0.25])).is_err()
        );
    }

    #[test]
    fn jukes_cantor_has_symmetric_q() {
        let q = GtrModel::jukes_cantor().q_matrix();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!((q[i][j] - 1.0 / 3.0).abs() < 1e-12);
                }
            }
        }
    }
}
