//! Models of molecular evolution: the GTR substitution matrix (Tavaré 1986)
//! and the two rate-heterogeneity models the RAxML family implements —
//! Γ (Yang 1994) and PSR/CAT (Stamatakis 2006).

pub mod gtr;
pub mod pmatrix;
pub mod rates;

pub use gtr::GtrModel;
pub use pmatrix::{prob_matrix, prob_matrix_derivs};
pub use rates::{RateHeterogeneity, RateModelKind};
