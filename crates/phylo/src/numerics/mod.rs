//! Self-contained numerical routines.
//!
//! Nothing here is phylogenetics-specific; these are the classical special
//! functions and optimizers the likelihood engine needs, implemented locally
//! so the workspace has no linear-algebra or special-function dependencies
//! (see DESIGN.md §6).

pub mod brent;
pub mod eigen;
pub mod gamma;
