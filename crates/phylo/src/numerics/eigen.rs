//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The GTR rate matrix is similar to a symmetric matrix (see
//! [`crate::model::gtr`]), so a symmetric eigensolver is all the engine
//! needs. The Jacobi method is exact enough (~1e-14) and has no
//! degenerate-case trouble at 4×4 size.

/// Eigendecomposition of a symmetric matrix: `a = V · diag(values) · Vᵀ`,
/// eigen-`values` ascending, `vectors` column-major (column k is the k-th
/// eigenvector, stored as `vectors[row][k]`).
#[derive(Debug, Clone)]
pub struct SymEigen {
    pub values: Vec<f64>,
    /// `vectors[i][k]`: component `i` of eigenvector `k` (orthonormal).
    pub vectors: Vec<Vec<f64>>,
}

/// Decompose the symmetric `n×n` matrix `a` (row-major, `a[i][j]`).
///
/// # Panics
/// Panics if `a` is not square or not symmetric to 1e-9.
pub fn sym_eigen(a: &[Vec<f64>]) -> SymEigen {
    let n = a.len();
    for row in a {
        assert_eq!(row.len(), n, "matrix must be square");
    }
    for i in 0..n {
        for j in 0..i {
            assert!(
                (a[i][j] - a[j][i]).abs() <= 1e-9 * (1.0 + a[i][j].abs()),
                "matrix not symmetric at ({i},{j}): {} vs {}",
                a[i][j],
                a[j][i]
            );
        }
    }
    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    for _sweep in 0..100 {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[i][j] * m[i][j];
            }
        }
        if off < 1e-30 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if m[p][q].abs() < 1e-300 {
                    continue;
                }
                // Classic Jacobi rotation annihilating m[p][q].
                let theta = (m[q][q] - m[p][p]) / (2.0 * m[p][q]);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                for k in 0..n {
                    let mkp = m[k][p];
                    let mkq = m[k][q];
                    m[k][p] = c * mkp - s * mkq;
                    m[k][q] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[p][k];
                    let mqk = m[q][k];
                    m[p][k] = c * mpk - s * mqk;
                    m[q][k] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue, permuting eigenvector columns along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[i][i].partial_cmp(&m[j][j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[i][i]).collect();
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|row| order.iter().map(|&k| v[row][k]).collect())
        .collect();
    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEigen) -> Vec<Vec<f64>> {
        let n = e.values.len();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    out[i][j] += e.vectors[i][k] * e.values[k] * e.vectors[j][k];
                }
            }
        }
        out
    }

    #[test]
    fn diagonal_matrix() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let e = sym_eigen(&a);
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let e = sym_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_4x4() {
        let a = vec![
            vec![4.0, 1.0, 0.5, 0.2],
            vec![1.0, 3.0, 0.7, 0.1],
            vec![0.5, 0.7, 2.0, 0.3],
            vec![0.2, 0.1, 0.3, 1.0],
        ];
        let e = sym_eigen(&a);
        let r = reconstruct(&e);
        for i in 0..4 {
            for j in 0..4 {
                assert!(
                    (r[i][j] - a[i][j]).abs() < 1e-10,
                    "({i},{j}): {} vs {}",
                    r[i][j],
                    a[i][j]
                );
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 5.0, -1.0],
            vec![3.0, -1.0, 0.5],
        ];
        let e = sym_eigen(&a);
        for p in 0..3 {
            for q in 0..3 {
                let dot: f64 = (0..3).map(|i| e.vectors[i][p] * e.vectors[i][q]).sum();
                let expect = if p == q { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({p},{q}): {dot}");
            }
        }
    }

    #[test]
    fn repeated_eigenvalues() {
        // Identity: all eigenvalues 1, any orthonormal basis valid.
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let e = sym_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        let r = reconstruct(&e);
        assert!((r[0][0] - 1.0).abs() < 1e-12 && r[0][1].abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric() {
        let a = vec![vec![1.0, 2.0], vec![0.0, 1.0]];
        assert!(std::panic::catch_unwind(|| sym_eigen(&a)).is_err());
    }

    #[test]
    fn trace_preserved() {
        let a = vec![
            vec![2.5, -0.8, 0.0, 1.1],
            vec![-0.8, 0.9, 0.4, 0.0],
            vec![0.0, 0.4, -1.7, 0.6],
            vec![1.1, 0.0, 0.6, 3.3],
        ];
        let e = sym_eigen(&a);
        let trace: f64 = (0..4).map(|i| a[i][i]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }
}
