//! Gamma special functions and the discrete-Γ rate heterogeneity
//! discretization of Yang (1994), which the paper's Γ model uses.
//!
//! The chain is: `ln_gamma` → regularized incomplete gamma `P(a, x)` →
//! its inverse (χ² quantiles) → the four category rates as the means of the
//! quartiles of a Gamma(α, α) distribution.

/// Natural log of the gamma function (Lanczos approximation, g = 7, n = 9).
///
/// Accurate to ~1e-13 over the positive reals.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps the approximation in its sweet spot.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)` via series (x < a+1)
/// or continued fraction (x >= a+1). Follows Numerical Recipes' `gammp`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - gln).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let gln = ln_gamma(a);
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - gln).exp() * h
}

/// Inverse of `P(a, ·)`: the value `x` with `P(a, x) = p`.
///
/// Bisection refined by Newton steps; robust for the α range the Γ model
/// uses (α ∈ [0.01, 100]).
pub fn inv_gamma_p(a: f64, p: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&p),
        "inv_gamma_p requires p in [0,1), got {p}"
    );
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root.
    let mut lo = 0.0f64;
    let mut hi = a.max(1.0);
    while gamma_p(a, hi) < p {
        hi *= 2.0;
        assert!(hi.is_finite(), "inv_gamma_p failed to bracket");
    }
    // Bisection with occasional Newton acceleration.
    let gln = ln_gamma(a);
    let mut x = 0.5 * (lo + hi);
    for _ in 0..200 {
        let f = gamma_p(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        // Newton step from the density; fall back to bisection midpoint if
        // the step leaves the bracket.
        let dens = (-x + (a - 1.0) * x.ln() - gln).exp();
        let mut next = if dens > 0.0 {
            x - f / dens
        } else {
            0.5 * (lo + hi)
        };
        if !(next > lo && next < hi && next.is_finite()) {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-14 * x.abs() + 1e-300 {
            return next;
        }
        x = next;
    }
    x
}

/// Quantile of the χ² distribution with `df` degrees of freedom:
/// `chi2_quantile(p, df)` is `x` with `P(df/2, x/2) = p`.
pub fn chi2_quantile(p: f64, df: f64) -> f64 {
    2.0 * inv_gamma_p(df / 2.0, p)
}

/// Yang (1994) mean-of-quartiles discretization of the Γ(α, α) distribution
/// into `k` equal-probability rate categories. The category rates have
/// (weighted) mean exactly 1, preserving branch-length identifiability.
///
/// This is the discretization RAxML/ExaML use for their Γ model (k = 4).
pub fn discrete_gamma_rates(alpha: f64, k: usize) -> Vec<f64> {
    assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
    assert!(k >= 1, "need at least one category");
    if k == 1 {
        return vec![1.0];
    }
    // Cut points: quantiles of Gamma(alpha, beta=alpha) at i/k.
    let cuts: Vec<f64> = (1..k)
        .map(|i| inv_gamma_p(alpha, i as f64 / k as f64) / alpha)
        .collect();
    // Mean of each slice: using the identity
    //   E[X · 1{X < t}] = P(alpha+1, alpha·t) / beta-adjusted terms,
    // the mean rate in (t_{i-1}, t_i] is
    //   k · [P(alpha+1, alpha·t_i) - P(alpha+1, alpha·t_{i-1})]   (mean 1).
    let mut rates = Vec::with_capacity(k);
    let mut prev = 0.0f64;
    for i in 0..k {
        let next = if i + 1 < k {
            gamma_p(alpha + 1.0, alpha * cuts[i])
        } else {
            1.0
        };
        rates.push(k as f64 * (next - prev));
        prev = next;
    }
    // Exact renormalization against accumulated round-off.
    let mean: f64 = rates.iter().sum::<f64>() / k as f64;
    for r in rates.iter_mut() {
        *r /= mean;
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // Γ(x+1) = x·Γ(x) over a broad range.
        for &x in &[0.1, 0.7, 1.3, 2.9, 7.5, 23.0, 101.5] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = x.ln() + ln_gamma(x);
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!((gamma_p(2.0, 1e6) - 1.0).abs() < 1e-12);
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1f64, 0.5, 1.0, 3.0, 10.0] {
            let exact = 1.0 - (-x).exp();
            assert!((gamma_p(1.0, x) - exact).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn gamma_p_chi2_known_value() {
        // χ²(df=1) at its median 0.4549... -> p = 0.5.
        let median = chi2_quantile(0.5, 1.0);
        assert!((median - 0.454_936_423_119_572_8).abs() < 1e-8, "{median}");
    }

    #[test]
    fn inv_gamma_p_inverts() {
        for &a in &[0.05, 0.3, 1.0, 2.5, 10.0, 80.0] {
            for &p in &[0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = inv_gamma_p(a, p);
                let back = gamma_p(a, x);
                assert!((back - p).abs() < 1e-9, "a={a} p={p}: x={x} back={back}");
            }
        }
    }

    #[test]
    fn discrete_gamma_mean_is_one() {
        for &alpha in &[0.05, 0.2, 0.5, 1.0, 2.0, 10.0, 50.0] {
            for &k in &[1usize, 2, 4, 8, 25] {
                let rates = discrete_gamma_rates(alpha, k);
                assert_eq!(rates.len(), k);
                let mean: f64 = rates.iter().sum::<f64>() / k as f64;
                assert!(
                    (mean - 1.0).abs() < 1e-10,
                    "alpha={alpha} k={k} mean={mean}"
                );
                // Rates are sorted ascending by construction.
                for w in rates.windows(2) {
                    assert!(w[0] <= w[1] + 1e-12, "alpha={alpha} k={k}: {rates:?}");
                }
                assert!(rates[0] > 0.0);
            }
        }
    }

    #[test]
    fn discrete_gamma_spread_shrinks_with_alpha() {
        // Large alpha → rates concentrate near 1; small alpha → extreme spread.
        let tight = discrete_gamma_rates(100.0, 4);
        let wide = discrete_gamma_rates(0.1, 4);
        assert!(tight[3] - tight[0] < 0.5, "{tight:?}");
        assert!(wide[3] - wide[0] > 2.0, "{wide:?}");
        assert!(
            wide[0] < 1e-3,
            "lowest category under strong heterogeneity: {wide:?}"
        );
    }

    #[test]
    fn discrete_gamma_matches_yang_reference() {
        // Published reference values (Yang 1994 / PAML) for alpha = 0.5, k = 4:
        // approx [0.0334, 0.2519, 0.8203, 2.8944].
        let r = discrete_gamma_rates(0.5, 4);
        let expect = [0.033_388, 0.251_916, 0.820_268, 2.894_428];
        for (a, e) in r.iter().zip(expect.iter()) {
            assert!((a - e).abs() < 2e-4, "got {r:?}");
        }
    }
}
