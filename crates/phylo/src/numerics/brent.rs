//! One-dimensional minimization: golden-section and Brent's method, plus a
//! *batched* Brent driver that advances many independent minimizations in
//! lockstep.
//!
//! The batched driver is the numerical half of the paper's load-balance fix
//! from ref. 23: when optimizing per-partition parameters (α, GTR rates), a
//! proposal must be made for **all** partitions simultaneously so one
//! parallel region evaluates all of them at once. `BatchedBrent` exposes the
//! candidate points for every partition each round; the caller evaluates them
//! in a single (parallel) likelihood call and feeds the values back.

/// Result of a scalar minimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinResult {
    pub x: f64,
    pub fx: f64,
    pub iterations: usize,
}

const GOLD: f64 = 0.381_966_011_250_105_1; // 2 - phi

/// Brent's method on `[a, b]` (no derivative), tolerance `tol` on `x`.
pub fn brent_min<F: FnMut(f64) -> f64>(
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
    mut f: F,
) -> MinResult {
    let mut st = BrentState::new(a, b);
    let mut iterations = 0;
    for _ in 0..max_iter {
        let x = match st.proposal(tol) {
            Some(x) => x,
            None => break,
        };
        iterations += 1;
        let fx = f(x);
        st.update(x, fx);
    }
    MinResult {
        x: st.best_x(),
        fx: st.best_f(),
        iterations,
    }
}

/// State machine form of Brent minimization: `proposal()` yields the next
/// point to evaluate (or `None` when converged), `update()` feeds the value
/// back. This inversion of control is what allows batching across
/// partitions.
#[derive(Debug, Clone)]
pub struct BrentState {
    a: f64,
    b: f64,
    x: f64,
    w: f64,
    v: f64,
    fx: f64,
    fw: f64,
    fv: f64,
    d: f64,
    e: f64,
    evaluated_init: u8,
    done: bool,
}

impl BrentState {
    /// Begin minimizing on `[a, b]`.
    pub fn new(a: f64, b: f64) -> BrentState {
        assert!(a < b, "invalid bracket [{a}, {b}]");
        let x = a + GOLD * (b - a);
        BrentState {
            a,
            b,
            x,
            w: x,
            v: x,
            fx: f64::INFINITY,
            fw: f64::INFINITY,
            fv: f64::INFINITY,
            d: 0.0,
            e: 0.0,
            evaluated_init: 0,
            done: false,
        }
    }

    /// Has the minimization converged?
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Best point found so far.
    pub fn best_x(&self) -> f64 {
        self.x
    }

    /// Function value at the best point.
    pub fn best_f(&self) -> f64 {
        self.fx
    }

    /// Next point to evaluate, or `None` if converged to tolerance `tol`.
    pub fn proposal(&mut self, tol: f64) -> Option<f64> {
        if self.done {
            return None;
        }
        if self.evaluated_init == 0 {
            return Some(self.x);
        }
        let xm = 0.5 * (self.a + self.b);
        let tol1 = tol * self.x.abs() + 1e-12;
        let tol2 = 2.0 * tol1;
        if (self.x - xm).abs() <= tol2 - 0.5 * (self.b - self.a) {
            self.done = true;
            return None;
        }
        let mut use_golden = true;
        let mut d_new = 0.0;
        if self.e.abs() > tol1 {
            // Parabolic fit through (x, w, v).
            let r = (self.x - self.w) * (self.fx - self.fv);
            let mut q = (self.x - self.v) * (self.fx - self.fw);
            let mut p = (self.x - self.v) * q - (self.x - self.w) * r;
            q = 2.0 * (q - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_old = self.e;
            self.e = self.d;
            if p.abs() < (0.5 * q * e_old).abs()
                && p > q * (self.a - self.x)
                && p < q * (self.b - self.x)
            {
                d_new = p / q;
                let u = self.x + d_new;
                if u - self.a < tol2 || self.b - u < tol2 {
                    d_new = if xm >= self.x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            self.e = if self.x >= xm {
                self.a - self.x
            } else {
                self.b - self.x
            };
            d_new = GOLD * self.e;
        }
        self.d = d_new;
        let u = if d_new.abs() >= tol1 {
            self.x + d_new
        } else {
            self.x + if d_new >= 0.0 { tol1 } else { -tol1 }
        };
        Some(u)
    }

    /// Feed the function value `fu` at the proposed point `u` back in.
    pub fn update(&mut self, u: f64, fu: f64) {
        if self.evaluated_init == 0 {
            self.evaluated_init = 1;
            self.fx = fu;
            return;
        }
        if fu <= self.fx {
            if u >= self.x {
                self.a = self.x;
            } else {
                self.b = self.x;
            }
            self.v = self.w;
            self.fv = self.fw;
            self.w = self.x;
            self.fw = self.fx;
            self.x = u;
            self.fx = fu;
        } else {
            if u < self.x {
                self.a = u;
            } else {
                self.b = u;
            }
            if fu <= self.fw || self.w == self.x {
                self.v = self.w;
                self.fv = self.fw;
                self.w = u;
                self.fw = fu;
            } else if fu <= self.fv || self.v == self.x || self.v == self.w {
                self.v = u;
                self.fv = fu;
            }
        }
    }
}

/// Lockstep driver over many independent Brent minimizations.
///
/// Every round, [`BatchedBrent::proposals`] returns one candidate per still-
/// active instance; the caller evaluates all of them in a single batched
/// call and reports values with [`BatchedBrent::update`]. Instances that
/// converge keep returning their current best so the batch width stays
/// constant (mirroring how ExaML evaluates all partitions every region even
/// when some parameters have converged).
#[derive(Debug, Clone)]
pub struct BatchedBrent {
    states: Vec<BrentState>,
    tol: f64,
    pending: Vec<Option<f64>>,
}

impl BatchedBrent {
    /// One instance per `(a, b)` bracket.
    pub fn new(brackets: &[(f64, f64)], tol: f64) -> BatchedBrent {
        let states = brackets
            .iter()
            .map(|&(a, b)| BrentState::new(a, b))
            .collect();
        BatchedBrent {
            states,
            tol,
            pending: vec![None; brackets.len()],
        }
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when there are no instances.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All instances converged?
    pub fn all_done(&self) -> bool {
        self.states.iter().all(|s| s.is_done())
    }

    /// The candidate vector for this round: converged instances contribute
    /// their best-so-far point. Returns `None` once every instance is done.
    pub fn proposals(&mut self) -> Option<Vec<f64>> {
        if self.all_done() {
            return None;
        }
        let mut out = Vec::with_capacity(self.states.len());
        for (i, st) in self.states.iter_mut().enumerate() {
            match st.proposal(self.tol) {
                Some(x) => {
                    self.pending[i] = Some(x);
                    out.push(x);
                }
                None => {
                    self.pending[i] = None;
                    out.push(st.best_x());
                }
            }
        }
        Some(out)
    }

    /// Report the batched function values for the last `proposals()` vector.
    pub fn update(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.states.len());
        for (i, st) in self.states.iter_mut().enumerate() {
            if let Some(u) = self.pending[i].take() {
                st.update(u, values[i]);
            }
        }
    }

    /// Best point of instance `i`.
    pub fn best_x(&self, i: usize) -> f64 {
        self.states[i].best_x()
    }

    /// Best value of instance `i`.
    pub fn best_f(&self, i: usize) -> f64 {
        self.states[i].best_f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let r = brent_min(0.0, 5.0, 1e-10, 200, |x| (x - 2.0) * (x - 2.0) + 1.0);
        assert!((r.x - 2.0).abs() < 1e-7, "{r:?}");
        assert!((r.fx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_function() {
        // min of x^4 - 3x at x = (3/4)^(1/3).
        let r = brent_min(0.0, 3.0, 1e-10, 200, |x| x.powi(4) - 3.0 * x);
        let expect = (0.75f64).powf(1.0 / 3.0);
        assert!((r.x - expect).abs() < 1e-6, "{r:?} vs {expect}");
    }

    #[test]
    fn boundary_minimum() {
        // Monotone increasing: minimum at left edge.
        let r = brent_min(1.0, 4.0, 1e-9, 200, |x| x);
        assert!(r.x < 1.01, "{r:?}");
    }

    #[test]
    fn narrow_spike() {
        let r = brent_min(0.0, 10.0, 1e-10, 500, |x| {
            -(-((x - 7.3) * (x - 7.3)) * 50.0).exp()
        });
        // Brent is a local method; from the golden start it may or may not
        // find the spike — but it must terminate and return a valid point.
        assert!((0.0..=10.0).contains(&r.x));
    }

    #[test]
    fn batched_matches_sequential() {
        let funcs: Vec<Box<dyn Fn(f64) -> f64>> = vec![
            Box::new(|x| (x - 1.0) * (x - 1.0)),
            Box::new(|x| (x - 2.5) * (x - 2.5) + 3.0),
            Box::new(|x| (x + 0.5) * (x + 0.5)),
        ];
        let brackets = [(-2.0, 4.0), (-2.0, 4.0), (-2.0, 4.0)];
        let mut batch = BatchedBrent::new(&brackets, 1e-9);
        while let Some(xs) = batch.proposals() {
            let vals: Vec<f64> = xs.iter().zip(&funcs).map(|(&x, f)| f(x)).collect();
            batch.update(&vals);
        }
        let seq: Vec<MinResult> = funcs
            .iter()
            .map(|f| brent_min(-2.0, 4.0, 1e-9, 500, f))
            .collect();
        for i in 0..3 {
            assert!((batch.best_x(i) - seq[i].x).abs() < 1e-7, "instance {i}");
            assert!((batch.best_f(i) - seq[i].fx).abs() < 1e-12, "instance {i}");
        }
    }

    #[test]
    fn batched_converges_at_different_speeds() {
        // A flat function converges immediately; a quadratic takes longer.
        let mut batch = BatchedBrent::new(&[(0.0, 1.0), (0.0, 1.0)], 1e-10);
        let mut rounds = 0;
        while let Some(xs) = batch.proposals() {
            let vals = vec![0.0, (xs[1] - 0.77) * (xs[1] - 0.77)];
            batch.update(&vals);
            rounds += 1;
            assert!(rounds < 300, "failed to converge");
        }
        assert!((batch.best_x(1) - 0.77).abs() < 1e-6);
    }

    #[test]
    fn state_machine_equivalent_to_closure_form() {
        let f = |x: f64| x * x * x * x - 2.0 * x * x + 0.3 * x;
        let direct = brent_min(-2.0, 0.5, 1e-10, 300, f);
        let mut st = BrentState::new(-2.0, 0.5);
        while let Some(x) = st.proposal(1e-10) {
            st.update(x, f(x));
        }
        assert!((st.best_x() - direct.x).abs() < 1e-12);
    }
}
