//! Site-pattern compression.
//!
//! Identical alignment columns contribute identical per-site likelihood
//! terms, so they are collapsed into one *pattern* with an integer weight.
//! Compression is performed **within each partition** (columns in different
//! partitions evolve under different models and must not be merged even if
//! textually identical). The unique-pattern count — not the raw site count —
//! determines conditional-likelihood-vector length, memory footprint and
//! kernel work, which is why the paper reports the 20 Mbp alignment's
//! 12,597,450 unique patterns as *the* scalability-relevant quantity (§IV-B).

use crate::alignment::Alignment;
use crate::dna::Nucleotide;
use crate::partition::PartitionScheme;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One partition after pattern compression.
///
/// Tip data is stored column-major: `tips[taxon][pattern]` is the 4-bit
/// nucleotide code of `taxon` at that pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedPartition {
    /// Partition name (from the scheme).
    pub name: String,
    /// `tips[taxon][pattern]`: 4-bit codes.
    pub tips: Vec<Vec<u8>>,
    /// Pattern weights: how many original columns each pattern represents.
    pub weights: Vec<u32>,
    /// For each original site of the partition (in partition-local order),
    /// the pattern index it was merged into.
    pub site_to_pattern: Vec<u32>,
}

impl CompressedPartition {
    /// Number of unique patterns.
    pub fn n_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Number of original sites.
    pub fn n_sites(&self) -> usize {
        self.site_to_pattern.len()
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.tips.len()
    }

    /// The 4-bit code of `taxon` at `pattern`.
    pub fn tip(&self, taxon: usize, pattern: usize) -> Nucleotide {
        Nucleotide(self.tips[taxon][pattern])
    }

    /// Extract a sub-partition restricted to the given pattern indices
    /// (weights preserved). Used for distributing pattern subsets to ranks.
    pub fn select_patterns(&self, indices: &[usize]) -> CompressedPartition {
        let tips = self
            .tips
            .iter()
            .map(|row| indices.iter().map(|&i| row[i]).collect())
            .collect();
        let weights = indices.iter().map(|&i| self.weights[i]).collect();
        CompressedPartition {
            name: self.name.clone(),
            tips,
            weights,
            // Site mapping is meaningless for a distributed subset.
            site_to_pattern: Vec::new(),
        }
    }
}

/// A whole alignment after per-partition pattern compression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedAlignment {
    pub taxa: Vec<String>,
    pub partitions: Vec<CompressedPartition>,
}

impl CompressedAlignment {
    /// Compress `alignment` under `scheme`.
    ///
    /// # Panics
    /// Panics if the scheme's site count does not match the alignment's.
    pub fn build(alignment: &Alignment, scheme: &PartitionScheme) -> CompressedAlignment {
        assert_eq!(
            scheme.n_sites(),
            alignment.n_sites(),
            "partition scheme does not match alignment length"
        );
        let n_taxa = alignment.n_taxa();
        let partitions = scheme
            .partitions()
            .iter()
            .map(|p| {
                let mut index: HashMap<Vec<u8>, u32> = HashMap::new();
                let mut weights: Vec<u32> = Vec::new();
                let mut site_to_pattern: Vec<u32> = Vec::with_capacity(p.len());
                let mut order: Vec<Vec<u8>> = Vec::new();
                let mut col = vec![0u8; n_taxa];
                for site in p.start..p.end {
                    for (t, c) in col.iter_mut().enumerate() {
                        *c = alignment.row(t)[site].0;
                    }
                    match index.get(&col) {
                        Some(&pat) => {
                            weights[pat as usize] += 1;
                            site_to_pattern.push(pat);
                        }
                        None => {
                            let pat = weights.len() as u32;
                            index.insert(col.clone(), pat);
                            order.push(col.clone());
                            weights.push(1);
                            site_to_pattern.push(pat);
                        }
                    }
                }
                // Transpose pattern-major columns into taxon-major rows.
                let n_patterns = weights.len();
                let mut tips = vec![vec![0u8; n_patterns]; n_taxa];
                for (pat, colv) in order.iter().enumerate() {
                    for (t, &code) in colv.iter().enumerate() {
                        tips[t][pat] = code;
                    }
                }
                CompressedPartition {
                    name: p.name.clone(),
                    tips,
                    weights,
                    site_to_pattern,
                }
            })
            .collect();
        CompressedAlignment {
            taxa: alignment.taxa().to_vec(),
            partitions,
        }
    }

    /// Total unique patterns across all partitions.
    pub fn total_patterns(&self) -> usize {
        self.partitions.iter().map(|p| p.n_patterns()).sum()
    }

    /// Total original sites across all partitions.
    pub fn total_sites(&self) -> usize {
        self.partitions.iter().map(|p| p.n_sites()).sum()
    }

    /// Number of taxa.
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;

    fn aln() -> Alignment {
        // Columns: ACGT | ACGA | ACGT | TTTT  -> patterns {ACGT(w2), ACGA, TTTT}
        Alignment::from_ascii(&[
            ("t1", "AAAT"),
            ("t2", "CCCT"),
            ("t3", "GGGT"),
            ("t4", "TATT"),
        ])
        .unwrap()
    }

    #[test]
    fn compresses_duplicate_columns() {
        let a = aln();
        let c = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(4));
        let p = &c.partitions[0];
        assert_eq!(p.n_patterns(), 3);
        assert_eq!(p.n_sites(), 4);
        assert_eq!(p.weights, vec![2, 1, 1]);
        assert_eq!(p.site_to_pattern, vec![0, 1, 0, 2]);
        assert_eq!(c.total_patterns(), 3);
        assert_eq!(c.total_sites(), 4);
    }

    #[test]
    fn weights_sum_to_site_count() {
        let a = aln();
        let c = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(4));
        let wsum: u32 = c.partitions[0].weights.iter().sum();
        assert_eq!(wsum as usize, a.n_sites());
    }

    #[test]
    fn compression_respects_partition_boundaries() {
        let a = aln();
        // Split 2+2: identical columns 0 and 2 land in different partitions
        // and must NOT be merged.
        let scheme = PartitionScheme::uniform_chunks(2, 2);
        let c = CompressedAlignment::build(&a, &scheme);
        assert_eq!(c.partitions.len(), 2);
        assert_eq!(c.partitions[0].n_patterns(), 2);
        assert_eq!(c.partitions[1].n_patterns(), 2);
        assert_eq!(c.total_patterns(), 4);
    }

    #[test]
    fn tip_accessor_returns_original_codes() {
        let a = aln();
        let c = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(4));
        let p = &c.partitions[0];
        // Pattern 0 is column 0: A/C/G/T.
        assert_eq!(p.tip(0, 0), Nucleotide::A);
        assert_eq!(p.tip(1, 0), Nucleotide::C);
        assert_eq!(p.tip(2, 0), Nucleotide::G);
        assert_eq!(p.tip(3, 0), Nucleotide::T);
    }

    #[test]
    fn select_patterns_subsets() {
        let a = aln();
        let c = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(4));
        let sub = c.partitions[0].select_patterns(&[2, 0]);
        assert_eq!(sub.n_patterns(), 2);
        assert_eq!(sub.weights, vec![1, 2]);
        assert_eq!(sub.tip(0, 1), Nucleotide::A); // original pattern 0
        assert_eq!(sub.tip(3, 0), Nucleotide::T); // original pattern 2
    }

    #[test]
    fn ambiguity_participates_in_pattern_identity() {
        let a = Alignment::from_ascii(&[("x", "AN"), ("y", "AA")]).unwrap();
        let c = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(2));
        // Column 0 (A,A) differs from column 1 (N,A).
        assert_eq!(c.partitions[0].n_patterns(), 2);
    }
}
