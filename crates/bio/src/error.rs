//! Error type shared by the parsing and validation routines.

use std::fmt;

/// Errors produced while parsing or validating sequence data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BioError {
    /// A character that is not a valid IUPAC nucleotide code was encountered.
    InvalidCharacter {
        taxon: String,
        position: usize,
        ch: char,
    },
    /// Two sequences in one alignment have different lengths.
    LengthMismatch {
        taxon: String,
        expected: usize,
        found: usize,
    },
    /// The same taxon name appears twice.
    DuplicateTaxon(String),
    /// A parse error with a human-readable description.
    Parse(String),
    /// A partition scheme does not tile the alignment correctly.
    BadPartition(String),
    /// The binary format was malformed.
    BadBinary(String),
    /// An underlying I/O error (stringified so the error stays `Clone`).
    Io(String),
}

impl fmt::Display for BioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BioError::InvalidCharacter {
                taxon,
                position,
                ch,
            } => {
                write!(
                    f,
                    "invalid character {ch:?} in taxon {taxon:?} at site {position}"
                )
            }
            BioError::LengthMismatch {
                taxon,
                expected,
                found,
            } => {
                write!(f, "taxon {taxon:?} has length {found}, expected {expected}")
            }
            BioError::DuplicateTaxon(t) => write!(f, "duplicate taxon name {t:?}"),
            BioError::Parse(msg) => write!(f, "parse error: {msg}"),
            BioError::BadPartition(msg) => write!(f, "bad partition scheme: {msg}"),
            BioError::BadBinary(msg) => write!(f, "bad binary alignment: {msg}"),
            BioError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for BioError {}

impl From<std::io::Error> for BioError {
    fn from(e: std::io::Error) -> Self {
        BioError::Io(e.to_string())
    }
}
