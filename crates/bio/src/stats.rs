//! Alignment statistics: empirical base frequencies, gap fraction, and
//! memory-footprint estimation (the quantity driving the paper's Γ-model
//! swapping discussion in §IV-C).

use crate::dna::NUM_STATES;
use crate::patterns::{CompressedAlignment, CompressedPartition};

/// Empirical base frequencies of one compressed partition, counting each
/// ambiguity code fractionally across its compatible states and weighting by
/// pattern weight (RAxML's convention). Frequencies are clamped away from
/// zero and re-normalized so downstream GTR matrices stay well-conditioned.
pub fn empirical_frequencies(p: &CompressedPartition) -> [f64; NUM_STATES] {
    let mut counts = [0.0f64; NUM_STATES];
    for (taxon_row, _) in p.tips.iter().zip(0..) {
        for (pat, &code) in taxon_row.iter().enumerate() {
            let w = p.weights[pat] as f64;
            let nbits = (code & 0xf).count_ones() as f64;
            if nbits == 0.0 {
                continue;
            }
            // Fully ambiguous characters carry no compositional signal.
            if code & 0xf == 0xf {
                continue;
            }
            let share = w / nbits;
            for (s, count) in counts.iter_mut().enumerate() {
                if code & (1 << s) != 0 {
                    *count += share;
                }
            }
        }
    }
    let total: f64 = counts.iter().sum();
    let mut freqs = if total > 0.0 {
        [
            counts[0] / total,
            counts[1] / total,
            counts[2] / total,
            counts[3] / total,
        ]
    } else {
        [0.25; NUM_STATES]
    };
    // Clamp and renormalize.
    const MIN_FREQ: f64 = 1e-4;
    let mut sum = 0.0;
    for f in freqs.iter_mut() {
        *f = f.max(MIN_FREQ);
        sum += *f;
    }
    for f in freqs.iter_mut() {
        *f /= sum;
    }
    freqs
}

/// The global per-partition empirical frequencies of a whole alignment.
/// Computed once from the *full* data — every rank derives identical models
/// from them regardless of which patterns it holds.
pub fn global_frequencies(aln: &CompressedAlignment) -> Vec<[f64; NUM_STATES]> {
    aln.partitions.iter().map(empirical_frequencies).collect()
}

/// Fraction of fully-undetermined characters (gaps / N) in a partition,
/// weighted by pattern weight.
pub fn gap_fraction(p: &CompressedPartition) -> f64 {
    let mut gaps = 0.0f64;
    let mut total = 0.0f64;
    for row in &p.tips {
        for (pat, &code) in row.iter().enumerate() {
            let w = p.weights[pat] as f64;
            total += w;
            if code & 0xf == 0xf {
                gaps += w;
            }
        }
    }
    if total > 0.0 {
        gaps / total
    } else {
        0.0
    }
}

/// Estimated conditional-likelihood-vector memory (bytes) for a full tree on
/// this alignment: one CLV per inner node (`n_taxa - 2` of them), each
/// `n_patterns × rate_categories × 4 states × 8 bytes`, plus one scaling
/// counter (u32) per pattern per inner node.
///
/// The PSR model has `rate_categories = 1`, the Γ model 4 — hence the paper's
/// "PSR requires four times less memory than Γ" (§IV-C).
pub fn clv_memory_bytes(aln: &CompressedAlignment, rate_categories: usize) -> u64 {
    let inner_nodes = aln.n_taxa().saturating_sub(2) as u64;
    let patterns = aln.total_patterns() as u64;
    let clv = patterns * rate_categories as u64 * NUM_STATES as u64 * 8;
    let scalers = patterns * 4;
    inner_nodes * (clv + scalers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::partition::PartitionScheme;
    use crate::patterns::CompressedAlignment;

    fn comp(rows: &[(&str, &str)]) -> CompressedAlignment {
        let a = Alignment::from_ascii(rows).unwrap();
        let scheme = PartitionScheme::unpartitioned(a.n_sites());
        CompressedAlignment::build(&a, &scheme)
    }

    #[test]
    fn uniform_composition() {
        let c = comp(&[("a", "ACGT"), ("b", "ACGT")]);
        let f = empirical_frequencies(&c.partitions[0]);
        for x in f {
            assert!((x - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn skewed_composition() {
        let c = comp(&[("a", "AAAA"), ("b", "AAAC")]);
        let f = empirical_frequencies(&c.partitions[0]);
        assert!(f[0] > 0.8, "A-rich: {f:?}");
        assert!(f[1] > 0.0 && f[1] < 0.2);
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaps_ignored_in_frequencies() {
        let with_gaps = comp(&[("a", "A-N?"), ("b", "A--A")]);
        let f = empirical_frequencies(&with_gaps.partitions[0]);
        assert!(f[0] > 0.99 - 3.0 * 1e-4, "{f:?}");
    }

    #[test]
    fn ambiguity_split_fractionally() {
        // R = A|G, counted half/half.
        let c = comp(&[("a", "R")]);
        let f = empirical_frequencies(&c.partitions[0]);
        assert!((f[0] - f[2]).abs() < 1e-12);
        assert!(f[0] > 0.49);
    }

    #[test]
    fn all_gap_partition_falls_back_to_uniform() {
        let c = comp(&[("a", "--"), ("b", "NN")]);
        let f = empirical_frequencies(&c.partitions[0]);
        for x in f {
            assert!((x - 0.25).abs() < 1e-12);
        }
        assert!((gap_fraction(&c.partitions[0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gap_fraction_weighted() {
        let c = comp(&[("a", "A-A-"), ("b", "AAAA")]);
        assert!((gap_fraction(&c.partitions[0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn psr_uses_quarter_of_gamma_memory() {
        let c = comp(&[
            ("a", "ACGTACGT"),
            ("b", "ACGAACGA"),
            ("c", "TTGAACGA"),
            ("d", "ACGATTTT"),
        ]);
        let gamma = clv_memory_bytes(&c, 4);
        let psr = clv_memory_bytes(&c, 1);
        // The CLV part is exactly 4×; scaler overhead shifts the total a bit.
        assert!(
            gamma > 3 * psr && gamma <= 4 * psr,
            "gamma={gamma} psr={psr}"
        );
    }
}
