//! 4-bit nucleotide encoding with IUPAC ambiguity codes.
//!
//! Each nucleotide is stored as a 4-bit mask over the states `{A, C, G, T}`
//! (bit 0 = A, bit 1 = C, bit 2 = G, bit 3 = T). Ambiguity codes set several
//! bits; a gap or `N` sets all four. This is the encoding RAxML and ExaML use
//! internally: the tip conditional likelihood for state `s` is `1.0` iff bit
//! `s` is set, which lets the likelihood kernels treat ambiguous characters
//! uniformly.

/// Number of nucleotide states.
pub const NUM_STATES: usize = 4;

/// A 4-bit encoded nucleotide (possibly ambiguous).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Nucleotide(pub u8);

impl Nucleotide {
    pub const A: Nucleotide = Nucleotide(0b0001);
    pub const C: Nucleotide = Nucleotide(0b0010);
    pub const G: Nucleotide = Nucleotide(0b0100);
    pub const T: Nucleotide = Nucleotide(0b1000);
    /// Fully ambiguous (gap, `N`, `?`, `X`).
    pub const ANY: Nucleotide = Nucleotide(0b1111);

    /// Decode one IUPAC character (case-insensitive). Returns `None` for
    /// characters that are not valid nucleotide codes.
    pub fn from_char(c: char) -> Option<Nucleotide> {
        let bits = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'R' => 0b0101, // A|G
            'Y' => 0b1010, // C|T
            'S' => 0b0110, // C|G
            'W' => 0b1001, // A|T
            'K' => 0b1100, // G|T
            'M' => 0b0011, // A|C
            'B' => 0b1110, // C|G|T
            'D' => 0b1101, // A|G|T
            'H' => 0b1011, // A|C|T
            'V' => 0b0111, // A|C|G
            'N' | '?' | 'X' | '-' | '.' | 'O' => 0b1111,
            _ => return None,
        };
        Some(Nucleotide(bits))
    }

    /// Encode back to the canonical IUPAC character.
    pub fn to_char(self) -> char {
        match self.0 {
            0b0001 => 'A',
            0b0010 => 'C',
            0b0100 => 'G',
            0b1000 => 'T',
            0b0101 => 'R',
            0b1010 => 'Y',
            0b0110 => 'S',
            0b1001 => 'W',
            0b1100 => 'K',
            0b0011 => 'M',
            0b1110 => 'B',
            0b1101 => 'D',
            0b1011 => 'H',
            0b0111 => 'V',
            0b1111 => '-',
            _ => '?',
        }
    }

    /// Is this a concrete (unambiguous) nucleotide?
    pub fn is_concrete(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Is this a gap / fully undetermined character?
    pub fn is_gap(self) -> bool {
        self.0 == 0b1111
    }

    /// The concrete state index (0=A, 1=C, 2=G, 3=T), if unambiguous.
    pub fn state(self) -> Option<usize> {
        if self.is_concrete() {
            Some(self.0.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Build from a concrete state index (0=A .. 3=T).
    ///
    /// # Panics
    /// Panics if `state >= 4`.
    pub fn from_state(state: usize) -> Nucleotide {
        assert!(state < NUM_STATES, "nucleotide state out of range: {state}");
        Nucleotide(1u8 << state)
    }

    /// Tip likelihood entries: 1.0 for each compatible state, 0.0 otherwise.
    pub fn tip_likelihood(self) -> [f64; NUM_STATES] {
        let mut out = [0.0; NUM_STATES];
        for (s, o) in out.iter_mut().enumerate() {
            if self.0 & (1 << s) != 0 {
                *o = 1.0;
            }
        }
        out
    }

    /// Iterate over the concrete states compatible with this code.
    pub fn compatible_states(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..NUM_STATES).filter(move |s| bits & (1 << s) != 0)
    }
}

impl std::fmt::Display for Nucleotide {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Decode an ASCII sequence into nucleotides, reporting the first bad
/// character's position.
pub fn decode_sequence(s: &str) -> Result<Vec<Nucleotide>, (usize, char)> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .enumerate()
        .map(|(i, c)| Nucleotide::from_char(c).ok_or((i, c)))
        .collect()
}

/// Encode nucleotides back to an ASCII string.
pub fn encode_sequence(seq: &[Nucleotide]) -> String {
    seq.iter().map(|n| n.to_char()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_roundtrip() {
        for (c, s) in [('A', 0), ('C', 1), ('G', 2), ('T', 3)] {
            let n = Nucleotide::from_char(c).unwrap();
            assert!(n.is_concrete());
            assert_eq!(n.state(), Some(s));
            assert_eq!(n.to_char(), c);
            assert_eq!(Nucleotide::from_state(s), n);
        }
    }

    #[test]
    fn ambiguity_codes_roundtrip() {
        for c in "RYSWKMBDHV".chars() {
            let n = Nucleotide::from_char(c).unwrap();
            assert!(!n.is_concrete());
            assert!(!n.is_gap());
            assert_eq!(n.to_char(), c);
        }
    }

    #[test]
    fn gap_variants_all_map_to_any() {
        for c in "N?X-.".chars() {
            assert_eq!(Nucleotide::from_char(c).unwrap(), Nucleotide::ANY);
        }
        assert!(Nucleotide::ANY.is_gap());
    }

    #[test]
    fn uracil_is_thymine() {
        assert_eq!(Nucleotide::from_char('U'), Nucleotide::from_char('T'));
        assert_eq!(Nucleotide::from_char('u'), Nucleotide::from_char('T'));
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(Nucleotide::from_char('a'), Some(Nucleotide::A));
        assert_eq!(Nucleotide::from_char('y'), Nucleotide::from_char('Y'));
    }

    #[test]
    fn invalid_characters_rejected() {
        for c in ['Z', 'J', '1', '*', ' '] {
            assert_eq!(Nucleotide::from_char(c), None, "char {c:?}");
        }
    }

    #[test]
    fn tip_likelihood_matches_bits() {
        let r = Nucleotide::from_char('R').unwrap(); // A|G
        assert_eq!(r.tip_likelihood(), [1.0, 0.0, 1.0, 0.0]);
        assert_eq!(Nucleotide::ANY.tip_likelihood(), [1.0; 4]);
        assert_eq!(Nucleotide::C.tip_likelihood(), [0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn compatible_states_enumeration() {
        let y = Nucleotide::from_char('Y').unwrap(); // C|T
        assert_eq!(y.compatible_states().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(Nucleotide::ANY.compatible_states().count(), 4);
    }

    #[test]
    fn decode_sequence_reports_position() {
        assert_eq!(decode_sequence("ACGZ"), Err((3, 'Z')));
        let seq = decode_sequence("AC GT\n").unwrap();
        assert_eq!(encode_sequence(&seq), "ACGT");
    }

    #[test]
    fn from_state_panics_out_of_range() {
        let r = std::panic::catch_unwind(|| Nucleotide::from_state(4));
        assert!(r.is_err());
    }
}
