//! Biological sequence handling for `examl-rs`.
//!
//! This crate provides the data substrate the likelihood engine operates on:
//!
//! * [`dna`] — 4-bit nucleotide encoding with full IUPAC ambiguity support,
//! * [`alignment`] — the multiple-sequence alignment container,
//! * [`partition`] — partition schemes (per-gene / per-codon-position blocks),
//! * [`patterns`] — site-pattern compression (identical alignment columns are
//!   collapsed into weighted patterns; the compressed pattern count is what
//!   determines conditional-likelihood-vector length and therefore memory and
//!   compute cost, exactly as discussed in §IV-B of the paper),
//! * [`phylip`] / [`fasta`] — text parsers and writers,
//! * [`binary`] — the binary alignment format the paper's §V announces for
//!   fast (re-)distribution of data after checkpoint/restart or rank failure,
//! * [`repeats`] — subtree-repeat classes (Kobert-style bottom-up ids) that
//!   let the likelihood engine compute conditional likelihoods only once per
//!   repeated induced tip pattern,
//! * [`stats`] — basic alignment statistics (empirical base frequencies etc.).

pub mod alignment;
pub mod binary;
pub mod dna;
pub mod error;
pub mod fasta;
pub mod partition;
pub mod patterns;
pub mod phylip;
pub mod repeats;
pub mod stats;

pub use alignment::Alignment;
pub use dna::Nucleotide;
pub use error::BioError;
pub use partition::{Partition, PartitionScheme};
pub use patterns::{CompressedAlignment, CompressedPartition};
pub use repeats::{pair_classes_into, ClassSource, RepeatClasses, TIP_CLASS_COUNT};
