//! Relaxed (RAxML-style) sequential PHYLIP parsing and writing.
//!
//! The header line holds taxon and site counts; each following non-empty
//! line is `name whitespace sequence...`; sequences may be wrapped across
//! lines in interleaved-free "relaxed sequential" style where every line
//! carries the taxon name (the format RAxML/ExaML consume).

use crate::alignment::Alignment;
use crate::dna::decode_sequence;
use crate::error::BioError;

/// Parse a relaxed sequential PHYLIP file.
pub fn parse_phylip(text: &str) -> Result<Alignment, BioError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| BioError::Parse("empty file".into()))?;
    let mut hp = header.split_whitespace();
    let n_taxa: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| BioError::Parse("bad PHYLIP header: taxon count".into()))?;
    let n_sites: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| BioError::Parse("bad PHYLIP header: site count".into()))?;

    let mut taxa = Vec::with_capacity(n_taxa);
    let mut rows = Vec::with_capacity(n_taxa);
    for line in lines {
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| BioError::Parse("sequence line without name".into()))?
            .to_string();
        let seq: String = it.collect();
        let decoded = decode_sequence(&seq).map_err(|(pos, ch)| BioError::InvalidCharacter {
            taxon: name.clone(),
            position: pos,
            ch,
        })?;
        taxa.push(name);
        rows.push(decoded);
    }
    if taxa.len() != n_taxa {
        return Err(BioError::Parse(format!(
            "header declares {n_taxa} taxa but file has {}",
            taxa.len()
        )));
    }
    let aln = Alignment::new(taxa, rows)?;
    if aln.n_sites() != n_sites {
        return Err(BioError::Parse(format!(
            "header declares {n_sites} sites but sequences have {}",
            aln.n_sites()
        )));
    }
    Ok(aln)
}

/// Parse interleaved PHYLIP: the first block carries taxon names, later
/// blocks (separated by blank lines) carry continuation chunks in the same
/// taxon order without names.
pub fn parse_phylip_interleaved(text: &str) -> Result<Alignment, BioError> {
    let mut lines = text.lines();
    let header = loop {
        match lines.next() {
            Some(l) if !l.trim().is_empty() => break l,
            Some(_) => continue,
            None => return Err(BioError::Parse("empty file".into())),
        }
    };
    let mut hp = header.split_whitespace();
    let n_taxa: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| BioError::Parse("bad PHYLIP header: taxon count".into()))?;
    let n_sites: usize = hp
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| BioError::Parse("bad PHYLIP header: site count".into()))?;
    if n_taxa == 0 {
        return Err(BioError::Parse("zero taxa".into()));
    }

    let mut taxa: Vec<String> = Vec::with_capacity(n_taxa);
    let mut seqs: Vec<String> = vec![String::new(); n_taxa];
    let mut row_in_block = 0usize;
    let mut first_block = true;
    for line in lines {
        if line.trim().is_empty() {
            if row_in_block != 0 {
                return Err(BioError::Parse(format!(
                    "interleaved block ended after {row_in_block} of {n_taxa} rows"
                )));
            }
            continue;
        }
        if first_block {
            let mut it = line.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| BioError::Parse("sequence line without name".into()))?
                .to_string();
            taxa.push(name);
            seqs[row_in_block].extend(it.flat_map(|w| w.chars()));
        } else {
            seqs[row_in_block].extend(line.split_whitespace().flat_map(|w| w.chars()));
        }
        row_in_block += 1;
        if row_in_block == n_taxa {
            row_in_block = 0;
            first_block = false;
        }
    }
    if first_block && taxa.len() != n_taxa {
        return Err(BioError::Parse(format!(
            "header declares {n_taxa} taxa but first block has {}",
            taxa.len()
        )));
    }
    if row_in_block != 0 {
        return Err(BioError::Parse("file ends mid-block".into()));
    }

    let mut rows = Vec::with_capacity(n_taxa);
    for (name, seq) in taxa.iter().zip(&seqs) {
        let decoded = decode_sequence(seq).map_err(|(pos, ch)| BioError::InvalidCharacter {
            taxon: name.clone(),
            position: pos,
            ch,
        })?;
        rows.push(decoded);
    }
    let aln = Alignment::new(taxa, rows)?;
    if aln.n_sites() != n_sites {
        return Err(BioError::Parse(format!(
            "header declares {n_sites} sites but sequences have {}",
            aln.n_sites()
        )));
    }
    Ok(aln)
}

/// Parse PHYLIP, auto-detecting sequential vs interleaved layout: try
/// sequential first (the RAxML default), fall back to interleaved.
pub fn parse_phylip_auto(text: &str) -> Result<Alignment, BioError> {
    match parse_phylip(text) {
        Ok(a) => Ok(a),
        Err(seq_err) => parse_phylip_interleaved(text).map_err(|_| seq_err),
    }
}

/// Render an alignment as relaxed sequential PHYLIP.
pub fn write_phylip(aln: &Alignment) -> String {
    let mut out = format!("{} {}\n", aln.n_taxa(), aln.n_sites());
    for (i, name) in aln.taxa().iter().enumerate() {
        out.push_str(name);
        out.push(' ');
        out.push_str(&aln.row_ascii(i));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let a = Alignment::from_ascii(&[("alpha", "ACGT-N"), ("beta", "TTGRYA")]).unwrap();
        let text = write_phylip(&a);
        let b = parse_phylip(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_header_mismatch() {
        assert!(parse_phylip("3 4\nt1 ACGT\nt2 ACGT\n").is_err());
        assert!(parse_phylip("2 5\nt1 ACGT\nt2 ACGT\n").is_err());
    }

    #[test]
    fn rejects_missing_header() {
        assert!(parse_phylip("").is_err());
        assert!(parse_phylip("hello\n").is_err());
    }

    #[test]
    fn tolerates_blank_lines_and_split_sequences() {
        let text = "2 8\n\nt1 ACGT ACGT\nt2 TTTT TTTT\n\n";
        let a = parse_phylip(text).unwrap();
        assert_eq!(a.n_sites(), 8);
        assert_eq!(a.row_ascii(1), "TTTTTTTT");
    }

    #[test]
    fn interleaved_roundtrip() {
        let text = "2 12\nalpha ACGT\nbeta  TTTT\n\nACGT\nCCCC\n\nGGGG\nAAAA\n";
        let a = parse_phylip_interleaved(text).unwrap();
        assert_eq!(a.n_taxa(), 2);
        assert_eq!(a.n_sites(), 12);
        assert_eq!(a.row_ascii(0), "ACGTACGTGGGG");
        assert_eq!(a.row_ascii(1), "TTTTCCCCAAAA");
    }

    #[test]
    fn interleaved_rejects_ragged_blocks() {
        // Second block has only one row.
        let text = "2 8\na ACGT\nb TTTT\n\nACGT\n";
        assert!(parse_phylip_interleaved(text).is_err());
    }

    #[test]
    fn interleaved_rejects_wrong_totals() {
        let text = "2 10\na ACGT\nb TTTT\n\nACGT\nCCCC\n";
        assert!(parse_phylip_interleaved(text).is_err());
    }

    #[test]
    fn auto_detect_handles_both_layouts() {
        let sequential = "2 8\nx ACGTACGT\ny TTTTTTTT\n";
        let interleaved = "2 8\nx ACGT\ny TTTT\n\nACGT\nTTTT\n";
        let a = parse_phylip_auto(sequential).unwrap();
        let b = parse_phylip_auto(interleaved).unwrap();
        assert_eq!(a.n_sites(), 8);
        assert_eq!(b.n_sites(), 8);
        assert_eq!(a.row_ascii(0), b.row_ascii(0));
    }

    #[test]
    fn reports_invalid_character_with_taxon() {
        let err = parse_phylip("1 4\nbad ACQT\n").unwrap_err();
        match err {
            BioError::InvalidCharacter { taxon, ch, .. } => {
                assert_eq!(taxon, "bad");
                assert_eq!(ch, 'Q');
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
