//! The multiple-sequence alignment container.

use crate::dna::{decode_sequence, encode_sequence, Nucleotide};
use crate::error::BioError;

/// A multiple-sequence DNA alignment: `n_taxa` rows × `n_sites` columns.
///
/// Sequences are stored row-major (one `Vec<Nucleotide>` per taxon), which is
/// the natural parse order; the pattern-compression step transposes into the
/// column-major layout the likelihood kernels need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    taxa: Vec<String>,
    rows: Vec<Vec<Nucleotide>>,
    n_sites: usize,
}

impl Alignment {
    /// Build an alignment from taxon names and decoded rows.
    pub fn new(taxa: Vec<String>, rows: Vec<Vec<Nucleotide>>) -> Result<Alignment, BioError> {
        if taxa.len() != rows.len() {
            return Err(BioError::Parse(format!(
                "{} taxon names but {} sequences",
                taxa.len(),
                rows.len()
            )));
        }
        if taxa.is_empty() {
            return Err(BioError::Parse("empty alignment".into()));
        }
        let n_sites = rows[0].len();
        for (t, r) in taxa.iter().zip(&rows) {
            if r.len() != n_sites {
                return Err(BioError::LengthMismatch {
                    taxon: t.clone(),
                    expected: n_sites,
                    found: r.len(),
                });
            }
        }
        let mut seen = std::collections::HashSet::new();
        for t in &taxa {
            if !seen.insert(t.as_str()) {
                return Err(BioError::DuplicateTaxon(t.clone()));
            }
        }
        Ok(Alignment {
            taxa,
            rows,
            n_sites,
        })
    }

    /// Build from raw ASCII sequences.
    pub fn from_ascii(named: &[(&str, &str)]) -> Result<Alignment, BioError> {
        let mut taxa = Vec::with_capacity(named.len());
        let mut rows = Vec::with_capacity(named.len());
        for (name, seq) in named {
            let decoded = decode_sequence(seq).map_err(|(pos, ch)| BioError::InvalidCharacter {
                taxon: (*name).to_string(),
                position: pos,
                ch,
            })?;
            taxa.push((*name).to_string());
            rows.push(decoded);
        }
        Alignment::new(taxa, rows)
    }

    /// Number of taxa (rows).
    pub fn n_taxa(&self) -> usize {
        self.taxa.len()
    }

    /// Number of alignment columns (sites).
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// Taxon names, in row order.
    pub fn taxa(&self) -> &[String] {
        &self.taxa
    }

    /// The row (sequence) of taxon `i`.
    pub fn row(&self, i: usize) -> &[Nucleotide] {
        &self.rows[i]
    }

    /// Look up a taxon index by name.
    pub fn taxon_index(&self, name: &str) -> Option<usize> {
        self.taxa.iter().position(|t| t == name)
    }

    /// One alignment column as a freshly collected vector.
    pub fn column(&self, site: usize) -> Vec<Nucleotide> {
        self.rows.iter().map(|r| r[site]).collect()
    }

    /// The ASCII rendering of row `i` (for writers and debugging).
    pub fn row_ascii(&self, i: usize) -> String {
        encode_sequence(&self.rows[i])
    }

    /// Extract the sub-alignment covering columns `[start, end)`.
    pub fn slice_sites(&self, start: usize, end: usize) -> Alignment {
        assert!(
            start <= end && end <= self.n_sites,
            "site slice out of bounds"
        );
        let rows: Vec<Vec<Nucleotide>> = self.rows.iter().map(|r| r[start..end].to_vec()).collect();
        Alignment {
            taxa: self.taxa.clone(),
            rows,
            n_sites: end - start,
        }
    }

    /// Concatenate several alignments over identical taxa (in identical
    /// order) into one super-alignment, returning it together with the
    /// per-block site ranges.
    pub fn concatenate(blocks: &[Alignment]) -> Result<(Alignment, Vec<(usize, usize)>), BioError> {
        let first = blocks
            .first()
            .ok_or_else(|| BioError::Parse("cannot concatenate zero blocks".into()))?;
        let mut rows: Vec<Vec<Nucleotide>> = vec![Vec::new(); first.n_taxa()];
        let mut ranges = Vec::with_capacity(blocks.len());
        let mut offset = 0usize;
        for b in blocks {
            if b.taxa != first.taxa {
                return Err(BioError::Parse(
                    "concatenated blocks must share taxa in identical order".into(),
                ));
            }
            for (row, brow) in rows.iter_mut().zip(&b.rows) {
                row.extend_from_slice(brow);
            }
            ranges.push((offset, offset + b.n_sites));
            offset += b.n_sites;
        }
        let aln = Alignment::new(first.taxa.clone(), rows)?;
        Ok((aln, ranges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Alignment {
        Alignment::from_ascii(&[("t1", "ACGT"), ("t2", "ACGA"), ("t3", "TCGA")]).unwrap()
    }

    #[test]
    fn dimensions() {
        let a = small();
        assert_eq!(a.n_taxa(), 3);
        assert_eq!(a.n_sites(), 4);
        assert_eq!(a.taxa(), &["t1", "t2", "t3"]);
    }

    #[test]
    fn column_access() {
        let a = small();
        let col = a.column(0);
        assert_eq!(col, vec![Nucleotide::A, Nucleotide::A, Nucleotide::T]);
    }

    #[test]
    fn taxon_lookup() {
        let a = small();
        assert_eq!(a.taxon_index("t2"), Some(1));
        assert_eq!(a.taxon_index("nope"), None);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = Alignment::from_ascii(&[("a", "ACGT"), ("b", "ACG")]).unwrap_err();
        assert!(matches!(err, BioError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_duplicate_taxa() {
        let err = Alignment::from_ascii(&[("a", "ACGT"), ("a", "ACGT")]).unwrap_err();
        assert_eq!(err, BioError::DuplicateTaxon("a".into()));
    }

    #[test]
    fn rejects_empty() {
        assert!(Alignment::from_ascii(&[]).is_err());
    }

    #[test]
    fn rejects_bad_character() {
        let err = Alignment::from_ascii(&[("a", "ACZT")]).unwrap_err();
        assert!(matches!(
            err,
            BioError::InvalidCharacter { position: 2, .. }
        ));
    }

    #[test]
    fn slice_sites_extracts_block() {
        let a = small();
        let s = a.slice_sites(1, 3);
        assert_eq!(s.n_sites(), 2);
        assert_eq!(s.row_ascii(0), "CG");
        assert_eq!(s.row_ascii(2), "CG");
    }

    #[test]
    fn concatenate_blocks() {
        let a = small();
        let b = small();
        let (cat, ranges) = Alignment::concatenate(&[a, b]).unwrap();
        assert_eq!(cat.n_sites(), 8);
        assert_eq!(ranges, vec![(0, 4), (4, 8)]);
        assert_eq!(cat.row_ascii(0), "ACGTACGT");
    }

    #[test]
    fn concatenate_rejects_mismatched_taxa() {
        let a = small();
        let b = Alignment::from_ascii(&[("x", "AC"), ("y", "AC"), ("z", "AC")]).unwrap();
        assert!(Alignment::concatenate(&[a, b]).is_err());
    }
}
