//! Partition schemes: how an alignment is sub-divided into blocks that get
//! independent model parameters (per-gene or per-codon-position partitions,
//! §I of the paper).

use crate::error::BioError;
use serde::{Deserialize, Serialize};

/// One partition: a named, contiguous block of alignment columns
/// `[start, end)`.
///
/// Real partition files can list non-contiguous column sets (e.g. codon
/// positions `1-99\3`); those are normalized to contiguous blocks by column
/// reordering before they reach the engine, so the engine-facing type only
/// needs ranges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

impl Partition {
    /// Number of sites in this partition.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the partition contains no sites.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A full partition scheme over an alignment of `n_sites` columns: an ordered
/// list of disjoint blocks that exactly tile `[0, n_sites)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionScheme {
    partitions: Vec<Partition>,
    n_sites: usize,
}

impl PartitionScheme {
    /// A single partition covering the whole alignment.
    pub fn unpartitioned(n_sites: usize) -> PartitionScheme {
        PartitionScheme {
            partitions: vec![Partition {
                name: "ALL".into(),
                start: 0,
                end: n_sites,
            }],
            n_sites,
        }
    }

    /// Validate and build a scheme from explicit blocks. Blocks must be
    /// sorted, non-overlapping, non-empty, and tile the alignment exactly.
    pub fn new(partitions: Vec<Partition>, n_sites: usize) -> Result<PartitionScheme, BioError> {
        if partitions.is_empty() {
            return Err(BioError::BadPartition("no partitions".into()));
        }
        let mut expected_start = 0usize;
        for p in &partitions {
            if p.start != expected_start {
                return Err(BioError::BadPartition(format!(
                    "partition {:?} starts at {} but previous block ended at {}",
                    p.name, p.start, expected_start
                )));
            }
            if p.is_empty() {
                return Err(BioError::BadPartition(format!(
                    "partition {:?} is empty",
                    p.name
                )));
            }
            expected_start = p.end;
        }
        if expected_start != n_sites {
            return Err(BioError::BadPartition(format!(
                "partitions cover {expected_start} sites but alignment has {n_sites}"
            )));
        }
        Ok(PartitionScheme {
            partitions,
            n_sites,
        })
    }

    /// Cut the first `count` equally-sized chunks of `chunk_len` sites, the
    /// construction the paper uses for the partition-scaling experiments
    /// (§IV-B: "we divided the original alignment into partitions of
    /// [~1000 bp] size" and extracted the first 10/50/100/500/1000).
    pub fn uniform_chunks(count: usize, chunk_len: usize) -> PartitionScheme {
        assert!(count > 0 && chunk_len > 0);
        let partitions = (0..count)
            .map(|i| Partition {
                name: format!("gene{i}"),
                start: i * chunk_len,
                end: (i + 1) * chunk_len,
            })
            .collect();
        PartitionScheme {
            partitions,
            n_sites: count * chunk_len,
        }
    }

    /// Build from per-block lengths (heterogeneous gene lengths).
    pub fn from_lengths<I: IntoIterator<Item = usize>>(lengths: I) -> PartitionScheme {
        let mut partitions = Vec::new();
        let mut start = 0usize;
        for (i, len) in lengths.into_iter().enumerate() {
            assert!(len > 0, "zero-length partition");
            partitions.push(Partition {
                name: format!("gene{i}"),
                start,
                end: start + len,
            });
            start += len;
        }
        assert!(!partitions.is_empty(), "no partitions");
        PartitionScheme {
            partitions,
            n_sites: start,
        }
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True if the scheme has no partitions (never constructible).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total number of alignment sites covered.
    pub fn n_sites(&self) -> usize {
        self.n_sites
    }

    /// The blocks, in alignment order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Which partition contains alignment column `site`.
    pub fn partition_of_site(&self, site: usize) -> Option<usize> {
        if site >= self.n_sites {
            return None;
        }
        // Binary search over the sorted, tiling blocks.
        let idx = self.partitions.partition_point(|p| p.end <= site);
        Some(idx)
    }

    /// Restrict the scheme to its first `count` partitions, also returning
    /// the number of sites of the restricted alignment.
    pub fn take_first(&self, count: usize) -> Result<PartitionScheme, BioError> {
        if count == 0 || count > self.partitions.len() {
            return Err(BioError::BadPartition(format!(
                "cannot take {count} of {} partitions",
                self.partitions.len()
            )));
        }
        let partitions: Vec<Partition> = self.partitions[..count].to_vec();
        let n_sites = partitions.last().unwrap().end;
        Ok(PartitionScheme {
            partitions,
            n_sites,
        })
    }
}

/// Parse a RAxML-style partition file. Each line has the form
/// `DNA, name = start-end` with 1-based inclusive coordinates, e.g.
/// `DNA, gene0 = 1-1000`.
pub fn parse_partition_file(text: &str, n_sites: usize) -> Result<PartitionScheme, BioError> {
    let mut partitions = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: &str| BioError::Parse(format!("partition file line {}: {msg}", lineno + 1));
        let (_model, rest) = line.split_once(',').ok_or_else(|| err("missing ','"))?;
        let (name, range) = rest.split_once('=').ok_or_else(|| err("missing '='"))?;
        let (lo, hi) = range
            .trim()
            .split_once('-')
            .ok_or_else(|| err("missing '-' in range"))?;
        let lo: usize = lo.trim().parse().map_err(|_| err("bad range start"))?;
        let hi: usize = hi.trim().parse().map_err(|_| err("bad range end"))?;
        if lo == 0 || hi < lo {
            return Err(err("range must be 1-based and non-empty"));
        }
        partitions.push(Partition {
            name: name.trim().to_string(),
            start: lo - 1,
            end: hi,
        });
    }
    PartitionScheme::new(partitions, n_sites)
}

/// Render a scheme in the RAxML partition-file syntax.
pub fn write_partition_file(scheme: &PartitionScheme) -> String {
    let mut out = String::new();
    for p in scheme.partitions() {
        out.push_str(&format!("DNA, {} = {}-{}\n", p.name, p.start + 1, p.end));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpartitioned_is_single_block() {
        let s = PartitionScheme::unpartitioned(100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.n_sites(), 100);
        assert_eq!(s.partition_of_site(99), Some(0));
        assert_eq!(s.partition_of_site(100), None);
    }

    #[test]
    fn uniform_chunks_tile() {
        let s = PartitionScheme::uniform_chunks(10, 1000);
        assert_eq!(s.len(), 10);
        assert_eq!(s.n_sites(), 10_000);
        assert_eq!(s.partition_of_site(0), Some(0));
        assert_eq!(s.partition_of_site(999), Some(0));
        assert_eq!(s.partition_of_site(1000), Some(1));
        assert_eq!(s.partition_of_site(9999), Some(9));
    }

    #[test]
    fn from_lengths_heterogeneous() {
        let s = PartitionScheme::from_lengths([3, 5, 2]);
        assert_eq!(s.n_sites(), 10);
        assert_eq!(s.partitions()[1].start, 3);
        assert_eq!(s.partitions()[1].end, 8);
        assert_eq!(s.partition_of_site(7), Some(1));
        assert_eq!(s.partition_of_site(8), Some(2));
    }

    #[test]
    fn validation_catches_gap() {
        let parts = vec![
            Partition {
                name: "a".into(),
                start: 0,
                end: 4,
            },
            Partition {
                name: "b".into(),
                start: 5,
                end: 10,
            },
        ];
        assert!(PartitionScheme::new(parts, 10).is_err());
    }

    #[test]
    fn validation_catches_short_cover() {
        let parts = vec![Partition {
            name: "a".into(),
            start: 0,
            end: 4,
        }];
        assert!(PartitionScheme::new(parts, 10).is_err());
    }

    #[test]
    fn take_first_restricts() {
        let s = PartitionScheme::uniform_chunks(5, 100);
        let t = s.take_first(2).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.n_sites(), 200);
        assert!(s.take_first(0).is_err());
        assert!(s.take_first(6).is_err());
    }

    #[test]
    fn partition_file_roundtrip() {
        let s = PartitionScheme::from_lengths([100, 250, 50]);
        let text = write_partition_file(&s);
        let parsed = parse_partition_file(&text, 400).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn partition_file_rejects_garbage() {
        assert!(parse_partition_file("DNA gene0 1-100", 100).is_err());
        assert!(parse_partition_file("DNA, g = 0-100", 100).is_err());
        assert!(parse_partition_file("DNA, g = 5-4", 100).is_err());
    }

    #[test]
    fn partition_file_skips_comments_and_blanks() {
        let text = "# comment\n\nDNA, g = 1-10\n";
        let s = parse_partition_file(text, 10).unwrap();
        assert_eq!(s.len(), 1);
    }
}
