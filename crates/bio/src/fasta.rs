//! FASTA parsing and writing (aligned FASTA: all records equal length).

use crate::alignment::Alignment;
use crate::dna::decode_sequence;
use crate::error::BioError;

/// Parse an aligned FASTA file into an [`Alignment`].
pub fn parse_fasta(text: &str) -> Result<Alignment, BioError> {
    let mut taxa: Vec<String> = Vec::new();
    let mut seqs: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let name = header.split_whitespace().next().unwrap_or("").to_string();
            if name.is_empty() {
                return Err(BioError::Parse(format!(
                    "empty FASTA header at line {}",
                    lineno + 1
                )));
            }
            taxa.push(name);
            seqs.push(String::new());
        } else {
            let cur = seqs
                .last_mut()
                .ok_or_else(|| BioError::Parse("sequence data before first '>' header".into()))?;
            cur.push_str(line.trim());
        }
    }
    if taxa.is_empty() {
        return Err(BioError::Parse("no FASTA records".into()));
    }
    let mut rows = Vec::with_capacity(taxa.len());
    for (name, seq) in taxa.iter().zip(&seqs) {
        let decoded = decode_sequence(seq).map_err(|(pos, ch)| BioError::InvalidCharacter {
            taxon: name.clone(),
            position: pos,
            ch,
        })?;
        rows.push(decoded);
    }
    Alignment::new(taxa, rows)
}

/// Render an alignment as FASTA, wrapping sequence lines at `width` columns.
pub fn write_fasta(aln: &Alignment, width: usize) -> String {
    let width = width.max(1);
    let mut out = String::new();
    for (i, name) in aln.taxa().iter().enumerate() {
        out.push('>');
        out.push_str(name);
        out.push('\n');
        let seq = aln.row_ascii(i);
        for chunk in seq.as_bytes().chunks(width) {
            out.push_str(std::str::from_utf8(chunk).expect("ascii"));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_wrapping() {
        let a = Alignment::from_ascii(&[("s1", "ACGTACGTAC"), ("s2", "TTTTTTTTTT")]).unwrap();
        let text = write_fasta(&a, 4);
        assert!(text.contains(">s1\nACGT\nACGT\nAC\n"));
        let b = parse_fasta(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn header_description_is_dropped() {
        let a = parse_fasta(">tax1 some description here\nACGT\n>tax2\nAAAA\n").unwrap();
        assert_eq!(a.taxa(), &["tax1", "tax2"]);
    }

    #[test]
    fn rejects_data_before_header() {
        assert!(parse_fasta("ACGT\n>t\nACGT\n").is_err());
    }

    #[test]
    fn rejects_unaligned_records() {
        assert!(parse_fasta(">a\nACGT\n>b\nAC\n").is_err());
    }

    #[test]
    fn rejects_empty_input() {
        assert!(parse_fasta("").is_err());
        assert!(parse_fasta("\n\n").is_err());
    }
}
