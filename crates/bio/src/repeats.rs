//! Subtree-repeat classes over compressed patterns (Kobert et al.'s
//! bottom-up identifiers).
//!
//! Pattern compression ([`crate::patterns`]) collapses columns that are
//! identical over *all* taxa. But during a tree traversal far more
//! redundancy is visible: two patterns whose tip states agree on the taxa
//! under one subtree induce bitwise-identical conditional likelihood
//! columns at that subtree's root, even if they differ elsewhere in the
//! alignment. This module computes, per inner node, a *repeat class* for
//! every pattern such that two patterns share a class iff they induce the
//! same tip-state vector under that node — incrementally, from the two
//! children's class ids, in O(patterns) per node:
//!
//! * at a tip, a pattern's class is its 4-bit ambiguity code (≤ 16 classes),
//! * at an inner node, the pair `(left class, right class)` is deduplicated
//!   into a dense id via a bounded lookup table.
//!
//! The likelihood engine then computes `newview` only for each class's
//! *representative* (the first pattern of the class) and copies the
//! representative's CLV column into the duplicate slots.

use serde::{Deserialize, Serialize};

/// Number of distinct tip classes: the 4-bit ambiguity codes.
pub const TIP_CLASS_COUNT: usize = 16;

/// Repeat classes of one node: a dense class id per pattern plus the first
/// pattern index of each class ("representative", in increasing pattern
/// order — so a representative always precedes its duplicates).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepeatClasses {
    /// `class_of[pattern]` — dense ids `0..n_classes()`.
    pub class_of: Vec<u32>,
    /// `representatives[class]` — the first pattern carrying that class.
    pub representatives: Vec<u32>,
}

impl RepeatClasses {
    /// Number of patterns classified.
    pub fn n_patterns(&self) -> usize {
        self.class_of.len()
    }

    /// Number of distinct classes.
    pub fn n_classes(&self) -> usize {
        self.representatives.len()
    }

    /// Whether any pattern is a duplicate of an earlier one.
    pub fn is_compressing(&self) -> bool {
        self.n_classes() < self.n_patterns()
    }

    /// Compression factor `patterns / classes` (≥ 1.0; 1.0 = no repeats).
    pub fn compression_ratio(&self) -> f64 {
        if self.representatives.is_empty() {
            1.0
        } else {
            self.class_of.len() as f64 / self.representatives.len() as f64
        }
    }

    /// Reset to the identity classification (every pattern its own class).
    pub fn set_identity(&mut self, n_patterns: usize) {
        self.class_of.clear();
        self.representatives.clear();
        self.class_of.extend(0..n_patterns as u32);
        self.representatives.extend(0..n_patterns as u32);
    }
}

/// One child's per-pattern class stream: raw tip codes (class = code,
/// ≤ [`TIP_CLASS_COUNT`] classes) or a previously computed inner table.
#[derive(Debug, Clone, Copy)]
pub enum ClassSource<'a> {
    Tips(&'a [u8]),
    Inner(&'a [u32]),
}

impl ClassSource<'_> {
    /// Number of patterns in the stream.
    pub fn len(&self) -> usize {
        match self {
            ClassSource::Tips(codes) => codes.len(),
            ClassSource::Inner(ids) => ids.len(),
        }
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn class(&self, i: usize) -> u32 {
        match self {
            ClassSource::Tips(codes) => (codes[i] & 0xf) as u32,
            ClassSource::Inner(ids) => ids[i],
        }
    }
}

/// Lookup-table budget per node, in entries: the dense pair table is only
/// used while `n_left · n_right` stays within `max(4·patterns, 65536)`.
/// Beyond that the node is classified as identity (no repeats) — the class
/// product only explodes when nearly every pattern is unique under the
/// subtree anyway, so capping costs (almost) no compression and bounds
/// memory exactly as RAxML's site-repeats implementation does.
fn table_budget(n_patterns: usize) -> u64 {
    (4 * n_patterns as u64).max(1 << 16)
}

/// Deduplicate the per-pattern pair `(left class, right class)` into dense
/// ids, reusing `out`'s and `table`'s allocations. `n_left`/`n_right` bound
/// the children's class ids (tips: [`TIP_CLASS_COUNT`]).
///
/// Representatives come out in increasing pattern order because patterns
/// are scanned in order and a class is created at its first occurrence.
pub fn pair_classes_into(
    left: ClassSource,
    n_left: usize,
    right: ClassSource,
    n_right: usize,
    out: &mut RepeatClasses,
    table: &mut Vec<u32>,
) {
    let n = left.len();
    assert_eq!(n, right.len(), "children classify different pattern counts");
    let span = n_left as u64 * n_right as u64;
    if span > table_budget(n) {
        out.set_identity(n);
        return;
    }
    out.class_of.clear();
    out.representatives.clear();
    table.clear();
    table.resize(span as usize, u32::MAX);
    for i in 0..n {
        let key = left.class(i) as usize * n_right + right.class(i) as usize;
        let mut cls = table[key];
        if cls == u32::MAX {
            cls = out.representatives.len() as u32;
            table[key] = cls;
            out.representatives.push(i as u32);
        }
        out.class_of.push(cls);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;
    use crate::patterns::CompressedAlignment;
    use crate::Alignment;

    fn classes(left: ClassSource, nl: usize, right: ClassSource, nr: usize) -> RepeatClasses {
        let mut out = RepeatClasses::default();
        let mut table = Vec::new();
        pair_classes_into(left, nl, right, nr, &mut out, &mut table);
        out
    }

    #[test]
    fn cherry_classes_follow_tip_pairs() {
        // Patterns:      0    1    2    3    4
        let a: Vec<u8> = vec![1, 2, 1, 1, 2];
        let b: Vec<u8> = vec![4, 4, 4, 8, 4];
        let c = classes(
            ClassSource::Tips(&a),
            TIP_CLASS_COUNT,
            ClassSource::Tips(&b),
            TIP_CLASS_COUNT,
        );
        // (1,4) (2,4) (1,4) (1,8) (2,4) → classes 0 1 0 2 1.
        assert_eq!(c.class_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(c.representatives, vec![0, 1, 3]);
        assert!(c.is_compressing());
        assert!((c.compression_ratio() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn representatives_always_precede_duplicates() {
        let l: Vec<u32> = vec![3, 0, 3, 1, 0, 3];
        let r: Vec<u32> = vec![1, 1, 1, 0, 1, 1];
        let c = classes(ClassSource::Inner(&l), 4, ClassSource::Inner(&r), 2);
        for (i, &cls) in c.class_of.iter().enumerate() {
            assert!(c.representatives[cls as usize] as usize <= i);
        }
        // First occurrences exactly.
        assert_eq!(c.representatives, vec![0, 1, 3]);
    }

    #[test]
    fn identity_when_no_repeats() {
        let l: Vec<u32> = (0..8).collect();
        let r: Vec<u32> = vec![0; 8];
        let c = classes(ClassSource::Inner(&l), 8, ClassSource::Inner(&r), 1);
        assert_eq!(c.n_classes(), 8);
        assert!(!c.is_compressing());
        assert_eq!(c.compression_ratio(), 1.0);
    }

    #[test]
    fn oversized_class_product_degrades_to_identity() {
        let n = 4;
        let l: Vec<u32> = (0..n as u32).collect();
        let r: Vec<u32> = vec![0; n];
        // Claimed class counts far beyond the table budget.
        let c = classes(
            ClassSource::Inner(&l),
            1 << 20,
            ClassSource::Inner(&r),
            1 << 20,
        );
        assert_eq!(c.class_of, vec![0, 1, 2, 3]);
        assert_eq!(c.representatives, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_classes() {
        let c = classes(
            ClassSource::Tips(&[]),
            TIP_CLASS_COUNT,
            ClassSource::Tips(&[]),
            TIP_CLASS_COUNT,
        );
        assert_eq!(c.n_patterns(), 0);
        assert_eq!(c.n_classes(), 0);
        assert_eq!(c.compression_ratio(), 1.0);
    }

    /// Bottom-up over a real compressed partition: classes at a node must
    /// coincide exactly with the induced tip-state vectors under that node.
    #[test]
    fn bottom_up_classes_match_induced_subtree_patterns() {
        // 4 taxa; the subtree {t1, t2} sees repeated (A, C) columns that the
        // full-alignment compression cannot merge.
        let a = Alignment::from_ascii(&[
            ("t1", "AAGAA"),
            ("t2", "CCTCC"),
            ("t3", "ACGTA"),
            ("t4", "TTGCA"),
        ])
        .unwrap();
        let comp = CompressedAlignment::build(&a, &PartitionScheme::unpartitioned(5));
        let p = &comp.partitions[0];
        assert_eq!(p.n_patterns(), 5); // all columns distinct overall

        let cherry = classes(
            ClassSource::Tips(&p.tips[0]),
            TIP_CLASS_COUNT,
            ClassSource::Tips(&p.tips[1]),
            TIP_CLASS_COUNT,
        );
        // Induced patterns under {t1,t2}: (A,C) (A,C) (G,T) (A,C) (A,C).
        assert_eq!(cherry.n_classes(), 2);
        assert_eq!(cherry.class_of, vec![0, 0, 1, 0, 0]);

        // One level up, joining tip t3: (A,C,A) (A,C,C) (G,T,G) (A,C,T) (A,C,A).
        let upper = classes(
            ClassSource::Inner(&cherry.class_of),
            cherry.n_classes(),
            ClassSource::Tips(&p.tips[2]),
            TIP_CLASS_COUNT,
        );
        assert_eq!(upper.class_of, vec![0, 1, 2, 3, 0]);
    }
}
