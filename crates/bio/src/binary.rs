//! The binary alignment format.
//!
//! §V of the paper: "We have already developed a binary data format for
//! storing input alignments and plan to use MPI parallel I/O routines to
//! further accelerate data (re-)distribution." This module implements that
//! format for the *compressed* alignment (parsing and pattern compression are
//! done once; every rank — and every restart or post-failure redistribution —
//! then reads the cheap binary form).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "EXML"           4 B
//! version u32             4 B
//! n_taxa  u64
//! taxa: n_taxa × (u64 len, utf-8 bytes)
//! n_partitions u64
//! per partition:
//!     name (u64 len, utf-8)
//!     n_patterns u64
//!     n_sites u64
//!     weights:  n_patterns × u32
//!     tips:     n_taxa × n_patterns × u8
//!     site_map: n_sites × u32
//! checksum u64 (FNV-1a over everything before it)
//! ```

use crate::error::BioError;
use crate::patterns::{CompressedAlignment, CompressedPartition};

const MAGIC: &[u8; 4] = b"EXML";
const VERSION: u32 = 1;

/// FNV-1a 64-bit, used as an integrity checksum for the binary file. The
/// implementation is shared with the replica-fingerprint machinery and
/// lives in `exa-obs`; this re-export keeps existing call sites working.
pub use exa_obs::fnv1a;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BioError> {
        if self.pos + n > self.buf.len() {
            return Err(BioError::BadBinary(format!(
                "truncated: need {n} bytes at offset {}, file has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u32(&mut self) -> Result<u32, BioError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, BioError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len(&mut self, what: &str) -> Result<usize, BioError> {
        let v = self.u64()?;
        // Guard against absurd lengths from corrupt files before allocating.
        if v > self.buf.len() as u64 {
            return Err(BioError::BadBinary(format!(
                "implausible {what} length {v}"
            )));
        }
        Ok(v as usize)
    }
    fn str(&mut self) -> Result<String, BioError> {
        let n = self.len("string")?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BioError::BadBinary("non-utf8 string".into()))
    }
}

/// Serialize a compressed alignment to the binary format.
pub fn to_bytes(aln: &CompressedAlignment) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u64(aln.taxa.len() as u64);
    for t in &aln.taxa {
        w.str(t);
    }
    w.u64(aln.partitions.len() as u64);
    for p in &aln.partitions {
        w.str(&p.name);
        w.u64(p.n_patterns() as u64);
        w.u64(p.site_to_pattern.len() as u64);
        for &wt in &p.weights {
            w.u32(wt);
        }
        for row in &p.tips {
            debug_assert_eq!(row.len(), p.n_patterns());
            w.buf.extend_from_slice(row);
        }
        for &s in &p.site_to_pattern {
            w.u32(s);
        }
    }
    let sum = fnv1a(&w.buf);
    w.u64(sum);
    w.buf
}

/// Deserialize the binary format.
pub fn from_bytes(bytes: &[u8]) -> Result<CompressedAlignment, BioError> {
    if bytes.len() < 8 {
        return Err(BioError::BadBinary("file shorter than checksum".into()));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    let actual = fnv1a(body);
    if stored != actual {
        return Err(BioError::BadBinary(format!(
            "checksum mismatch: stored {stored:#x}, computed {actual:#x}"
        )));
    }
    let mut r = Reader { buf: body, pos: 0 };
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(BioError::BadBinary("bad magic".into()));
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(BioError::BadBinary(format!(
            "unsupported version {version}"
        )));
    }
    let n_taxa = r.len("taxa")?;
    let mut taxa = Vec::with_capacity(n_taxa);
    for _ in 0..n_taxa {
        taxa.push(r.str()?);
    }
    let n_parts = r.len("partition")?;
    let mut partitions = Vec::with_capacity(n_parts);
    for _ in 0..n_parts {
        let name = r.str()?;
        let n_patterns = r.len("pattern")?;
        let n_sites = r.len("site")?;
        let mut weights = Vec::with_capacity(n_patterns);
        for _ in 0..n_patterns {
            weights.push(r.u32()?);
        }
        let mut tips = Vec::with_capacity(n_taxa);
        for _ in 0..n_taxa {
            tips.push(r.take(n_patterns)?.to_vec());
        }
        let mut site_to_pattern = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            let s = r.u32()?;
            if s as usize >= n_patterns {
                return Err(BioError::BadBinary(format!(
                    "site maps to pattern {s} of {n_patterns}"
                )));
            }
            site_to_pattern.push(s);
        }
        partitions.push(CompressedPartition {
            name,
            tips,
            weights,
            site_to_pattern,
        });
    }
    if r.pos != body.len() {
        return Err(BioError::BadBinary(format!(
            "{} trailing bytes after last partition",
            body.len() - r.pos
        )));
    }
    Ok(CompressedAlignment { taxa, partitions })
}

/// Write the binary format to a file.
pub fn write_file(path: &std::path::Path, aln: &CompressedAlignment) -> Result<(), BioError> {
    std::fs::write(path, to_bytes(aln))?;
    Ok(())
}

/// Read the binary format from a file.
pub fn read_file(path: &std::path::Path) -> Result<CompressedAlignment, BioError> {
    let bytes = std::fs::read(path)?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::Alignment;
    use crate::partition::PartitionScheme;

    fn sample() -> CompressedAlignment {
        let a = Alignment::from_ascii(&[
            ("tx1", "ACGTACGT"),
            ("tx2", "ACGAACGA"),
            ("tx3", "TCGATNGA"),
        ])
        .unwrap();
        CompressedAlignment::build(&a, &PartitionScheme::uniform_chunks(2, 4))
    }

    #[test]
    fn roundtrip() {
        let c = sample();
        let bytes = to_bytes(&c);
        let d = from_bytes(&bytes).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn detects_corruption_anywhere() {
        let c = sample();
        let bytes = to_bytes(&c);
        // Flip one byte in a handful of positions spread over the file.
        for pos in [0, 4, 10, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x5a;
            assert!(
                from_bytes(&bad).is_err(),
                "corruption at {pos} not detected"
            );
        }
    }

    #[test]
    fn detects_truncation() {
        let bytes = to_bytes(&sample());
        for cut in [0, 3, 7, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "truncation to {cut} accepted"
            );
        }
    }

    #[test]
    fn rejects_wrong_magic_and_version() {
        let mut bytes = to_bytes(&sample());
        bytes[0] = b'X';
        // Restore the checksum so the magic check itself is exercised.
        let n = bytes.len();
        let sum = fnv1a(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(from_bytes(&bytes), Err(BioError::BadBinary(_))));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("examl_bio_binary_test.exml");
        let c = sample();
        write_file(&path, &c).unwrap();
        let d = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(c, d);
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
