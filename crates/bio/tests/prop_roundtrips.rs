//! Property-based tests: format round-trips and pattern-compression
//! invariants over arbitrary inputs.

use exa_bio::alignment::Alignment;
use exa_bio::binary;
use exa_bio::dna::Nucleotide;
use exa_bio::fasta::{parse_fasta, write_fasta};
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_bio::phylip::{parse_phylip, write_phylip};
use proptest::prelude::*;

const ALPHABET: &[u8] = b"ACGTRYSWKMBDHVN-";

prop_compose! {
    /// A well-formed alignment: 2..8 taxa, 1..60 sites, IUPAC characters.
    fn arb_alignment()(n_taxa in 2usize..8, n_sites in 1usize..60)
        (rows in prop::collection::vec(
            prop::collection::vec(0usize..ALPHABET.len(), n_sites..=n_sites),
            n_taxa..=n_taxa,
        )) -> Alignment {
        let named: Vec<(String, String)> = rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let seq: String = r.iter().map(|&k| ALPHABET[k] as char).collect();
                (format!("taxon{i}"), seq)
            })
            .collect();
        let refs: Vec<(&str, &str)> =
            named.iter().map(|(n, s)| (n.as_str(), s.as_str())).collect();
        Alignment::from_ascii(&refs).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn phylip_roundtrip(aln in arb_alignment()) {
        let text = write_phylip(&aln);
        let back = parse_phylip(&text).unwrap();
        prop_assert_eq!(aln, back);
    }

    #[test]
    fn fasta_roundtrip(aln in arb_alignment(), width in 1usize..80) {
        let text = write_fasta(&aln, width);
        let back = parse_fasta(&text).unwrap();
        prop_assert_eq!(aln, back);
    }

    #[test]
    fn binary_roundtrip(aln in arb_alignment()) {
        let scheme = PartitionScheme::unpartitioned(aln.n_sites());
        let comp = CompressedAlignment::build(&aln, &scheme);
        let bytes = binary::to_bytes(&comp);
        let back = binary::from_bytes(&bytes).unwrap();
        prop_assert_eq!(comp, back);
    }

    #[test]
    fn binary_detects_single_byte_corruption(aln in arb_alignment(), idx in any::<prop::sample::Index>(), flip in 1u8..=255) {
        let scheme = PartitionScheme::unpartitioned(aln.n_sites());
        let comp = CompressedAlignment::build(&aln, &scheme);
        let mut bytes = binary::to_bytes(&comp);
        let pos = idx.index(bytes.len());
        bytes[pos] ^= flip;
        // Any single-byte change must be rejected (FNV checksum) or, at
        // minimum, never silently produce a different alignment.
        match binary::from_bytes(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert_eq!(comp, back),
        }
    }

    #[test]
    fn compression_preserves_site_count(aln in arb_alignment(), parts in 1usize..4) {
        // Build a scheme of `parts` blocks (last takes the remainder).
        let n = aln.n_sites();
        prop_assume!(n >= parts);
        let base = n / parts;
        let mut lengths = vec![base; parts];
        *lengths.last_mut().unwrap() += n - base * parts;
        let scheme = PartitionScheme::from_lengths(lengths);
        let comp = CompressedAlignment::build(&aln, &scheme);
        prop_assert_eq!(comp.total_sites(), n);
        let wsum: u32 = comp.partitions.iter().flat_map(|p| p.weights.iter()).sum();
        prop_assert_eq!(wsum as usize, n);
    }

    #[test]
    fn compression_is_reversible(aln in arb_alignment()) {
        // Every original column must be recoverable from its pattern.
        let scheme = PartitionScheme::unpartitioned(aln.n_sites());
        let comp = CompressedAlignment::build(&aln, &scheme);
        let p = &comp.partitions[0];
        for site in 0..aln.n_sites() {
            let pat = p.site_to_pattern[site] as usize;
            for taxon in 0..aln.n_taxa() {
                let original: Nucleotide = aln.row(taxon)[site];
                prop_assert_eq!(p.tip(taxon, pat), original, "taxon {} site {}", taxon, site);
            }
        }
    }

    #[test]
    fn pattern_count_never_exceeds_sites(aln in arb_alignment()) {
        let scheme = PartitionScheme::unpartitioned(aln.n_sites());
        let comp = CompressedAlignment::build(&aln, &scheme);
        prop_assert!(comp.total_patterns() <= aln.n_sites());
        prop_assert!(comp.total_patterns() >= 1);
    }
}
