//! `examl-bench` — shared harness code for regenerating every table and
//! figure of the paper (see DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results).
//!
//! Binaries:
//! * `figure3` — node-count sweep on the large unpartitioned alignment,
//! * `figure4` — partition-count sweep, ExaML vs RAxML-Light (`--mode
//!   joint|per-partition` for Fig. 4(a)/4(b)),
//! * `table1`  — fork-join communication-cost breakdown.
//!
//! Criterion benches cover the kernels, the communicator, the distribution
//! strategies, and the design-choice ablations called out in DESIGN.md §5.

use exa_comm::cluster::RunProfile;
use exa_comm::{CommCategory, CommStats};
use exa_phylo::engine::WorkCounters;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Where harness binaries drop their JSON/markdown artifacts.
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir.canonicalize().unwrap_or(dir)
}

/// Write a serializable result as pretty JSON under `results/`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results json");
    eprintln!("wrote {}", path.display());
}

/// Write a rendered markdown table under `results/`.
pub fn write_markdown(name: &str, content: &str) {
    let path = results_dir().join(format!("{name}.md"));
    std::fs::write(&path, content).expect("write results markdown");
    eprintln!("wrote {}", path.display());
}

/// One measured scheme execution, reduced to the rank-count-independent
/// profile the cluster model consumes.
#[derive(Debug, Clone, Serialize)]
pub struct MeasuredRun {
    pub lnl: f64,
    pub iterations: usize,
    pub regions: u64,
    pub bytes: u64,
    pub work: u64,
    pub mem_bytes: u64,
    pub dispatches: u64,
    pub wall_seconds: f64,
    pub per_category: Vec<(String, u64, u64)>, // (label, regions, bytes)
}

impl MeasuredRun {
    /// Assemble from driver outputs.
    pub fn new(
        lnl: f64,
        iterations: usize,
        stats: &CommStats,
        work: &WorkCounters,
        mem_bytes: u64,
        wall_seconds: f64,
    ) -> MeasuredRun {
        let per_category = CommCategory::ALL
            .iter()
            .map(|&c| {
                let s = stats.get(c);
                (c.label().to_string(), s.regions, s.bytes)
            })
            .collect();
        MeasuredRun {
            lnl,
            iterations,
            regions: stats.total_regions(),
            bytes: stats.total_bytes(),
            work: work.total(),
            mem_bytes,
            dispatches: work.dispatches,
            wall_seconds,
            per_category,
        }
    }

    /// The cluster-model profile, scaled to a larger dataset: `scale` is
    /// the target-to-measured pattern ratio. Kernel work and memory scale
    /// with patterns; collective *counts* do not; message payloads are
    /// dominated by fixed-size reductions and taxa-sized descriptors, so
    /// bytes are left unscaled (conservative in the baseline's favour).
    /// `mem_overhead` accounts for non-CLV memory the engine does not track
    /// (alignment, buffers, OS — calibrated in EXPERIMENTS.md).
    pub fn profile_scaled(&self, scale: f64, mem_overhead: f64) -> RunProfile {
        RunProfile {
            work: (self.work as f64 * scale) as u64,
            regions: self.regions,
            bytes: self.bytes,
            mem_bytes: (self.mem_bytes as f64 * scale * mem_overhead) as u64,
            // Dispatch counts follow the partition/batch structure, not the
            // per-partition pattern count — scaling patterns leaves them put.
            dispatches: self.dispatches,
        }
    }
}

/// Format seconds human-readably for harness tables.
pub fn fmt_secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.3}")
    }
}
