//! **Gradient-BLO guard** — one-pass analytic full-tree branch gradients vs
//! the classic per-edge seed loop, on a 64-taxon run (125 edges).
//!
//! ```text
//! cargo run -p examl-bench --release --bin gradient -- \
//!     [--taxa 64] [--partitions 4] [--chunk 150] [--ranks 4] [--guard]
//! ```
//!
//! Both runs execute for real (in-process ranks, reproducible reductions)
//! and must produce bitwise identical lnL — `--gradient` changes how each
//! smoothing round's all-edge derivative vector is *reduced* (one fat
//! collective vs one per edge), never its bits. The comparison counts the
//! collectives spent inside branch-length smoothing via the metrics
//! registry (`exa_blo_collectives_total` / `exa_gradient_sweeps_total`):
//! because the two trajectories are bitwise identical, both runs execute
//! the same Newton rounds, so the per-round (= per-pass) collective ratio
//! equals the run-total ratio. With `--guard`, exits non-zero if the drop
//! is below 10x.

use exa_comm::ReduceChoice;
use exa_phylo::engine::GradientChoice;
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::BranchMode;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown, MeasuredRun};
use serde::Serialize;

#[derive(Serialize)]
struct GradientReport {
    taxa: usize,
    edges: usize,
    gradient_on: MeasuredRun,
    gradient_off: MeasuredRun,
    newton_rounds: u64,
    blo_collectives_on: u64,
    blo_collectives_off: u64,
    collectives_per_round_on: f64,
    collectives_per_round_off: f64,
    collective_drop: f64,
    lnl_bitwise_identical: bool,
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Run once and return the measurement plus the BLO collectives this run
/// added to the (monotonic, process-global) registry counter.
fn run_once(
    w: &workloads::Workload,
    ranks: usize,
    search: &SearchConfig,
    gradient: GradientChoice,
) -> (MeasuredRun, u64, u64) {
    let reg = exa_obs::metrics::global();
    let blo = reg.counter("exa_blo_collectives_total", "", &[]);
    let sweeps = reg.counter("exa_gradient_sweeps_total", "", &[]);
    let (blo0, sweeps0) = (blo.get(), sweeps.get());
    let mut cfg = examl_core::RunConfig::new(ranks);
    cfg.rate_model = RateModelKind::Gamma;
    cfg.branch_mode = BranchMode::Joint;
    cfg.search = search.clone();
    cfg.seed = 5;
    cfg.reduce = ReduceChoice::Reproducible;
    cfg.gradient = gradient;
    let t0 = std::time::Instant::now();
    let out = cfg.run(&w.compressed).unwrap();
    let run = MeasuredRun::new(
        out.result.lnl,
        out.result.iterations,
        &out.comm_stats,
        &out.work,
        out.mem_bytes,
        t0.elapsed().as_secs_f64(),
    );
    (run, blo.get() - blo0, sweeps.get() - sweeps0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = arg_value(&args, "--taxa")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let partitions: usize = arg_value(&args, "--partitions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let chunk: usize = arg_value(&args, "--chunk")
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let ranks: usize = arg_value(&args, "--ranks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let guard = args.iter().any(|a| a == "--guard");

    exa_obs::metrics::global().set_enabled(true);
    let search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.05,
        spr_radius: 3,
        smoothing_passes: 1,
        optimize_model: true,
        model_tol: 1e-2,
    };
    eprintln!("generating {taxa}-taxon workload ({partitions} x {chunk} bp)...");
    let w = workloads::partitioned(taxa, partitions, chunk, 7);
    let edges = 2 * taxa - 3;

    eprintln!("  --gradient off (per-edge seed collectives) ...");
    let (off, blo_off, sweeps_off) = run_once(&w, ranks, &search, GradientChoice::Off);
    eprintln!("  --gradient on (one-pass full-tree sweep) ...");
    let (on, blo_on, sweeps_on) = run_once(&w, ranks, &search, GradientChoice::On);

    let identical = on.lnl.to_bits() == off.lnl.to_bits();
    assert!(
        identical,
        "gradient mode changed the likelihood: {} vs {}",
        on.lnl, off.lnl
    );
    assert_eq!(
        sweeps_off, 0,
        "the per-edge route must not tick the sweep counter"
    );
    assert!(sweeps_on > 0, "the sweep route must tick the sweep counter");

    // Bitwise-identical trajectories execute identical Newton rounds, so
    // the sweep counter of the `on` run names the shared denominator.
    let rounds = sweeps_on;
    let per_round_on = blo_on as f64 / rounds as f64;
    let per_round_off = blo_off as f64 / rounds as f64;
    let drop = per_round_off / per_round_on;

    let mut md = String::new();
    md.push_str("# Gradient-BLO guard: one-pass sweep vs per-edge seeds\n\n");
    md.push_str(&format!(
        "{taxa} taxa ({edges} edges), {partitions} partitions, GAMMA, joint \
         branch lengths, {ranks} ranks, reproducible reductions. Collectives \
         counted inside branch-length smoothing only; both trajectories are \
         bitwise identical, so their Newton rounds coincide and the \
         per-round ratio equals the run-total ratio.\n\n",
    ));
    md.push_str("| variant | BLO collectives | per round | rounds | lnL |\n");
    md.push_str("|---|---|---|---|---|\n");
    md.push_str(&format!(
        "| gradient on | {blo_on} | {per_round_on:.1} | {rounds} | {:.6} |\n",
        on.lnl
    ));
    md.push_str(&format!(
        "| gradient off | {blo_off} | {per_round_off:.1} | {rounds} | {:.6} |\n",
        off.lnl
    ));
    md.push_str(&format!(
        "\nCollective drop per smoothing round: **{drop:.1}x** (guard \
         threshold 10x). Likelihoods are bitwise identical.\n",
    ));
    println!("{md}");

    let report = GradientReport {
        taxa,
        edges,
        gradient_on: on,
        gradient_off: off,
        newton_rounds: rounds,
        blo_collectives_on: blo_on,
        blo_collectives_off: blo_off,
        collectives_per_round_on: per_round_on,
        collectives_per_round_off: per_round_off,
        collective_drop: drop,
        lnl_bitwise_identical: identical,
    };
    write_markdown("gradient", &md);
    write_json("gradient", &report);

    if guard && drop < 10.0 {
        eprintln!("GUARD FAILED: per-round collective drop {drop:.1}x < 10x");
        std::process::exit(1);
    }
}
