//! Checkpoint-overhead micro-harness: full de-centralized runs with
//! `--checkpoint-every {1,10,100}` against an identical run with
//! checkpointing off.
//!
//! ```text
//! cargo run -p examl-bench --release --bin checkpoint -- [taxa=12] [sites=1500] [reps=5]
//! ```
//!
//! A checkpoint is tiny under maximum state redundancy — the replicated
//! snapshot plus (under PSR) the gathered rates — so the cost of a commit
//! is one JSON encode, an `fsync`'d temp file and a rename. The target is
//! <2% wall-clock overhead at the operational cadence of 10; cadence 1
//! bounds the worst case, cadence 100 the amortized-away regime. Runs are
//! interleaved across repetitions and summarized by medians so machine
//! drift cancels instead of landing on one configuration.

use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use examl_core::RunConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Serialize)]
struct CadenceRow {
    cadence: String,
    median_ms: f64,
    /// Wall-clock overhead versus the no-checkpoint baseline, percent.
    overhead_percent: f64,
    /// Checkpoint generations committed per run.
    writes_per_run: u64,
    /// Search iterations executed (identical across rows by construction).
    iterations: usize,
}

#[derive(Serialize)]
struct CheckpointReport {
    taxa: usize,
    sites: usize,
    reps: usize,
    ranks: usize,
    target_percent_at_10: f64,
    meets_target: bool,
    rows: Vec<CadenceRow>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig::new(2).seed(seed).search(SearchConfig {
        max_iterations: 12,
        epsilon: 1e-9,
        ..SearchConfig::fast()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1500);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);

    eprintln!("simulating workload ({taxa} taxa x {sites} bp, 2 partitions)...");
    let w = workloads::partitioned(taxa, 2, sites, 7);
    let dir = std::env::temp_dir().join(format!("examl_bench_ckpt_{}", std::process::id()));

    // Cadence 0 encodes "checkpointing off" (the baseline).
    let cadences: [usize; 4] = [0, 1, 10, 100];
    let mut times: Vec<Vec<f64>> = vec![Vec::new(); cadences.len()];
    let mut writes = vec![0u64; cadences.len()];
    let mut iterations = 0usize;
    for _ in 0..reps {
        for (i, &every) in cadences.iter().enumerate() {
            std::fs::remove_dir_all(&dir).ok();
            let mut c = cfg(7);
            if every > 0 {
                c = c.checkpoint(&dir, every);
            }
            let t0 = Instant::now();
            let out = c.run(&w.compressed).expect("bench run failed");
            times[i].push(t0.elapsed().as_secs_f64() * 1e3);
            iterations = out.result.iterations;
            // The boundary hook fires before every iteration, committing at
            // each multiple of the cadence (iteration 0 included).
            writes[i] = if every > 0 {
                (0..out.result.iterations)
                    .filter(|it| it % every == 0)
                    .count() as u64
            } else {
                0
            };
        }
    }
    std::fs::remove_dir_all(&dir).ok();

    let baseline = median(times[0].clone());
    let mut rows = Vec::new();
    let mut overhead_at_10 = 0.0;
    for (i, &every) in cadences.iter().enumerate() {
        let t = median(times[i].clone());
        let overhead = (t - baseline) / baseline * 100.0;
        if every == 10 {
            overhead_at_10 = overhead;
        }
        rows.push(CadenceRow {
            cadence: if every == 0 {
                "off".to_string()
            } else {
                every.to_string()
            },
            median_ms: t,
            overhead_percent: overhead,
            writes_per_run: writes[i],
            iterations,
        });
    }

    let report = CheckpointReport {
        taxa,
        sites,
        reps,
        ranks: 2,
        target_percent_at_10: 2.0,
        meets_target: overhead_at_10 < 2.0,
        rows,
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Checkpoint overhead: full de-centralized runs ({taxa} taxa x {sites} bp, 2 ranks, {} iterations)\n",
        iterations
    );
    let _ = writeln!(md, "| cadence | median wall | overhead | writes/run |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in &report.rows {
        let _ = writeln!(
            md,
            "| {} | {:.1} ms | {:+.2}% | {} |",
            r.cadence, r.median_ms, r.overhead_percent, r.writes_per_run
        );
    }
    let _ = writeln!(
        md,
        "\nTarget: <2% overhead at cadence 10 — {}.",
        if report.meets_target { "met" } else { "MISSED" }
    );
    print!("{md}");

    write_json("checkpoint", &report);
    write_markdown("checkpoint", &md);
}
