//! Subtree-repeat CLV compression: `newview` with `--site-repeats on` vs
//! `off`, per kernel backend, on a repeat-rich (low-divergence) and a
//! repeat-poor (high-divergence) simulated alignment.
//!
//! ```text
//! cargo run -p examl-bench --release --bin repeats -- [taxa=24] [sites=4000] [reps=9]
//! ```
//!
//! Compression never changes results — representatives are computed once
//! and duplicate columns filled by copying — which this harness re-asserts
//! bitwise on the measured engines before timing. Low-divergence data is
//! where the technique pays: most sites agree under most subtrees, so the
//! repeat classes collapse heavily. High-divergence data bounds the
//! overhead in the regime with nothing to compress. Medians over
//! interleaved repetitions cancel machine drift.

use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::model::GtrModel;
use exa_phylo::tree::Tree;
use exa_phylo::SiteRepeats;
use exa_simgen::{random_tree_with_lengths, simulate, SimModel, SimRates};
use examl_bench::{write_json, write_markdown};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Serialize)]
struct RepeatRow {
    workload: String,
    backend: String,
    patterns: usize,
    off_ns_per_call: f64,
    on_ns_per_call: f64,
    speedup: f64,
    /// (computed + copied) / computed CLV columns under compression.
    repeat_ratio: f64,
    /// Fraction of CLV column-updates replaced by copies.
    saved_fraction: f64,
}

#[derive(Serialize)]
struct RepeatsReport {
    taxa: usize,
    sites: usize,
    reps: usize,
    rate_model: String,
    simd_backend: String,
    rows: Vec<RepeatRow>,
}

/// Simulate an unpartitioned GTR+Γ alignment on a tree with log-uniform
/// branch lengths in `[min_bl, max_bl]`: short branches give low divergence
/// (repeat-rich columns), long branches near-saturate the sites.
fn simulated(
    taxa: usize,
    sites: usize,
    min_bl: f64,
    max_bl: f64,
    seed: u64,
) -> CompressedAlignment {
    let tree = random_tree_with_lengths(taxa, 1, min_bl, max_bl, seed);
    let scheme = PartitionScheme::unpartitioned(sites);
    let model = SimModel {
        gtr: GtrModel::new([1.2, 2.9, 0.8, 1.1, 3.4, 1.0], [0.27, 0.23, 0.24, 0.26]),
        rates: SimRates::Gamma { alpha: 0.8 },
    };
    let aln = simulate(&tree, &scheme, &[model], seed);
    CompressedAlignment::build(&aln, &scheme)
}

fn engine_for(comp: &CompressedAlignment, kernel: KernelKind, repeats: SiteRepeats) -> Engine {
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    Engine::with_config(
        comp.n_taxa(),
        slices,
        RateModelKind::Gamma,
        0.8,
        kernel,
        repeats,
    )
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn time_ns(iters: usize, mut op: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        op();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn measure(
    comp: &CompressedAlignment,
    workload: &str,
    backend: KernelKind,
    reps: usize,
    seed: u64,
) -> RepeatRow {
    let taxa = comp.n_taxa();
    let mut on = engine_for(comp, backend, SiteRepeats::On);
    let mut off = engine_for(comp, backend, SiteRepeats::Off);
    let mut tree = Tree::random(taxa, 1, seed);
    let d = tree.full_traversal_descriptor(0);

    // The bitwise contract, on the very engines we are about to time. The
    // warmup execute also builds the repeat classes, so the timed calls see
    // the steady state the search loop runs in (cached class tables).
    on.execute(&d);
    off.execute(&d);
    let (la, lb) = (on.evaluate(&d), off.evaluate(&d));
    for (a, b) in la.iter().zip(&lb) {
        assert_eq!(a.to_bits(), b.to_bits(), "on/off must agree bitwise");
    }

    let (mut ns_on, mut ns_off) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        ns_on.push(time_ns(3, || on.execute(&d)));
        ns_off.push(time_ns(3, || off.execute(&d)));
    }
    let (t_on, t_off) = (median(ns_on), median(ns_off));

    // Both engines executed identical descriptors, so the compressed side's
    // computed + copied columns equal the uncompressed side's total.
    let (won, woff) = (on.work(), off.work());
    assert_eq!(won.clv_updates + won.clv_saved, woff.clv_updates);
    RepeatRow {
        workload: workload.to_string(),
        backend: backend.label().to_string(),
        patterns: comp.partitions[0].n_patterns(),
        off_ns_per_call: t_off,
        on_ns_per_call: t_on,
        speedup: t_off / t_on,
        repeat_ratio: won.repeat_ratio(),
        saved_fraction: won.clv_saved as f64 / woff.clv_updates as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(24);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(9);

    eprintln!("simulating repeat-rich and repeat-poor workloads ({taxa} taxa x {sites} bp)...");
    let rich = simulated(taxa, sites, 0.0005, 0.02, 7);
    let poor = simulated(taxa, sites, 0.5, 2.5, 7);

    let mut rows = Vec::new();
    for (name, comp) in [("repeat-rich", &rich), ("repeat-poor", &poor)] {
        for backend in [KernelKind::Scalar, KernelKind::Simd] {
            rows.push(measure(comp, name, backend, reps, 7));
        }
    }

    let report = RepeatsReport {
        taxa,
        sites,
        reps,
        rate_model: "Gamma (4 categories)".to_string(),
        simd_backend: if exa_phylo::simd_available() {
            "avx2".to_string()
        } else {
            "portable-chunks".to_string()
        },
        rows,
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Subtree-repeat compression: newview on vs off ({taxa} taxa x {sites} bp Γ DNA, {} SIMD path)\n",
        report.simd_backend
    );
    let _ = writeln!(
        md,
        "| workload | backend | patterns | off | on | speedup | repeat ratio | columns saved |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|---|---|---|");
    for r in &report.rows {
        let _ = writeln!(
            md,
            "| {} | {} | {} | {:.1} µs/call | {:.1} µs/call | {:.2}x | {:.2} | {:.1}% |",
            r.workload,
            r.backend,
            r.patterns,
            r.off_ns_per_call / 1e3,
            r.on_ns_per_call / 1e3,
            r.speedup,
            r.repeat_ratio,
            r.saved_fraction * 100.0
        );
    }
    print!("{md}");

    write_json("repeats", &report);
    write_markdown("repeats", &md);
}
