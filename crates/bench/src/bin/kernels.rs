//! Scalar vs SIMD likelihood-kernel backends, per kernel — the measurement
//! behind the `KernelBackend` abstraction: the three kernels (`newview`,
//! `evaluate`, the Newton–Raphson sumtable derivatives) are >90% of runtime
//! (§II), so backend speedup is whole-inference speedup.
//!
//! ```text
//! cargo run -p examl-bench --release --bin kernels -- [taxa=24] [sites=4000] [reps=9]
//! ```
//!
//! Both backends are bitwise-identical by construction (no FMA, scalar
//! association order), which this harness re-asserts on the measured
//! engines before timing. Medians over interleaved repetitions cancel
//! machine drift.

use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, KernelKind, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    scalar_ns_per_call: f64,
    simd_ns_per_call: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct KernelsReport {
    taxa: usize,
    sites: usize,
    patterns: usize,
    rate_model: String,
    simd_backend: String,
    rows: Vec<KernelRow>,
}

fn setup(taxa: usize, sites: usize, kernel: KernelKind) -> (Engine, Tree) {
    let w = workloads::large_unpartitioned(taxa, sites, 5);
    let scheme = PartitionScheme::unpartitioned(sites);
    let comp = CompressedAlignment::build(&w.alignment, &scheme);
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    // Repeat compression pinned off: this harness isolates backend speed on
    // the uncompressed kernels; the `repeats` harness owns the on/off axis.
    let engine = Engine::with_config(
        taxa,
        slices,
        RateModelKind::Gamma,
        0.8,
        kernel,
        exa_phylo::SiteRepeats::Off,
    );
    let tree = Tree::random(taxa, 1, 5);
    (engine, tree)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Median ns/call of `op`, interleaved by the caller across backends.
fn time_ns(reps: usize, iters: usize, mut op: impl FnMut()) -> Vec<f64> {
    // Warmup.
    op();
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                op();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(24);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(9);

    eprintln!("generating the Γ DNA workload ({taxa} taxa x {sites} bp)...");
    let (mut scalar, mut tree_s) = setup(taxa, sites, KernelKind::Scalar);
    let (mut simd, mut tree_v) = setup(taxa, sites, KernelKind::Simd);
    let patterns = scalar.total_patterns();
    let d_s = tree_s.full_traversal_descriptor(0);
    let d_v = tree_v.full_traversal_descriptor(0);

    // The bitwise contract, on the very engines we are about to time.
    scalar.execute(&d_s);
    simd.execute(&d_v);
    let (ls, lv) = (scalar.evaluate(&d_s), simd.evaluate(&d_v));
    assert_eq!(ls.len(), lv.len());
    for (a, b) in ls.iter().zip(&lv) {
        assert_eq!(a.to_bits(), b.to_bits(), "backends must agree bitwise");
    }

    // newview — interleave scalar/SIMD timing batches.
    let (mut ns_s, mut ns_v) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        ns_s.extend(time_ns(1, 3, || scalar.execute(&d_s)));
        ns_v.extend(time_ns(1, 3, || simd.execute(&d_v)));
    }
    let newview = (median(ns_s), median(ns_v));

    // evaluate.
    let (mut ns_s, mut ns_v) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        ns_s.extend(time_ns(1, 10, || {
            std::hint::black_box(scalar.evaluate(&d_s));
        }));
        ns_v.extend(time_ns(1, 10, || {
            std::hint::black_box(simd.evaluate(&d_v));
        }));
    }
    let evaluate = (median(ns_s), median(ns_v));

    // derivatives (sumtable prepared once, as in Newton–Raphson).
    scalar.prepare_derivatives(&d_s);
    simd.prepare_derivatives(&d_v);
    let (mut ns_s, mut ns_v) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        ns_s.extend(time_ns(1, 10, || {
            std::hint::black_box(scalar.derivatives(&[0.13]));
        }));
        ns_v.extend(time_ns(1, 10, || {
            std::hint::black_box(simd.derivatives(&[0.13]));
        }));
    }
    let derivatives = (median(ns_s), median(ns_v));

    let rows: Vec<KernelRow> = [
        ("newview", newview),
        ("evaluate", evaluate),
        ("derivatives", derivatives),
    ]
    .into_iter()
    .map(|(kernel, (s, v))| KernelRow {
        kernel: kernel.to_string(),
        scalar_ns_per_call: s,
        simd_ns_per_call: v,
        speedup: s / v,
    })
    .collect();

    let report = KernelsReport {
        taxa,
        sites,
        patterns,
        rate_model: "Gamma (4 categories)".to_string(),
        simd_backend: if exa_phylo::simd_available() {
            "avx2".to_string()
        } else {
            "portable-chunks".to_string()
        },
        rows,
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Kernel backends: scalar vs SIMD ({taxa} taxa x {sites} bp Γ DNA, {patterns} patterns, {} SIMD path)\n",
        report.simd_backend
    );
    let _ = writeln!(md, "| kernel | scalar | simd | speedup |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in &report.rows {
        let _ = writeln!(
            md,
            "| {} | {:.1} µs/call | {:.1} µs/call | {:.2}x |",
            r.kernel,
            r.scalar_ns_per_call / 1e3,
            r.simd_ns_per_call / 1e3,
            r.speedup
        );
    }
    print!("{md}");

    write_json("kernels", &report);
    write_markdown("kernels", &md);
}
