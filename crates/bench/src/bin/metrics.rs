//! Metrics-registry overhead micro-harness: identical de-centralized runs
//! with the global registry enabled versus disabled.
//!
//! ```text
//! cargo run -p examl-bench --release --bin metrics -- [taxa=12] [sites=1500] [reps=7]
//! ```
//!
//! The registry's hot path is a relaxed atomic add behind an `Arc` the
//! instrumented site already holds; the only per-event cost beyond it is
//! the pair of `Instant` reads at timing sites (collectives, checkpoint
//! commits), and those are gated on `metrics::enabled()` so a disabled
//! registry skips even the clock reads. The target is <2% wall-clock
//! overhead for enabled-vs-disabled. Runs are interleaved across
//! repetitions and summarized by medians so machine drift cancels instead
//! of landing on one configuration.

use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use examl_core::{RunConfig, Scheme};
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Serialize)]
struct ModeRow {
    scheme: String,
    metrics: String,
    median_ms: f64,
    /// Wall-clock overhead versus the disabled-registry baseline, percent.
    overhead_percent: f64,
}

#[derive(Serialize)]
struct MetricsReport {
    taxa: usize,
    sites: usize,
    reps: usize,
    ranks: usize,
    iterations: usize,
    target_percent: f64,
    meets_target: bool,
    /// Sanity: series the enabled runs actually populated.
    series_observed: Vec<String>,
    rows: Vec<ModeRow>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn cfg(scheme: Scheme) -> RunConfig {
    RunConfig::new(2)
        .scheme(scheme)
        .seed(7)
        .search(SearchConfig {
            max_iterations: 12,
            epsilon: 1e-9,
            ..SearchConfig::fast()
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(12);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1500);
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(7);

    eprintln!("simulating workload ({taxa} taxa x {sites} bp, 2 partitions)...");
    let w = workloads::partitioned(taxa, 2, sites, 7);
    let registry = exa_obs::metrics::global();

    let schemes = [Scheme::Decentralized, Scheme::ForkJoin];
    // times[scheme][0] = disabled, times[scheme][1] = enabled.
    let mut times: Vec<[Vec<f64>; 2]> = vec![[Vec::new(), Vec::new()]; schemes.len()];
    let mut iterations = 0usize;
    for _ in 0..reps {
        for (s, &scheme) in schemes.iter().enumerate() {
            for (m, enabled) in [false, true].into_iter().enumerate() {
                registry.set_enabled(enabled);
                let t0 = Instant::now();
                let out = cfg(scheme).run(&w.compressed).expect("bench run failed");
                times[s][m].push(t0.elapsed().as_secs_f64() * 1e3);
                iterations = out.result.iterations;
            }
        }
    }
    registry.set_enabled(false);

    let mut rows = Vec::new();
    let mut worst = f64::MIN;
    for (s, &scheme) in schemes.iter().enumerate() {
        let name = match scheme {
            Scheme::Decentralized => "decentralized",
            Scheme::ForkJoin => "forkjoin",
        };
        let baseline = median(times[s][0].clone());
        for (m, label) in ["disabled", "enabled"].into_iter().enumerate() {
            let t = median(times[s][m].clone());
            let overhead = (t - baseline) / baseline * 100.0;
            if m == 1 {
                worst = worst.max(overhead);
            }
            rows.push(ModeRow {
                scheme: name.to_string(),
                metrics: label.to_string(),
                median_ms: t,
                overhead_percent: overhead,
            });
        }
    }

    // The enabled runs must actually have exercised the instrumented
    // paths, otherwise the comparison is vacuous.
    let series_observed: Vec<String> = ["exa_runs_completed_total", "exa_collectives_total"]
        .iter()
        .filter(|name| {
            registry
                .render()
                .lines()
                .any(|l| l.starts_with(**name) && !l.ends_with(" 0"))
        })
        .map(|s| s.to_string())
        .collect();

    let report = MetricsReport {
        taxa,
        sites,
        reps,
        ranks: 2,
        iterations,
        target_percent: 2.0,
        meets_target: worst < 2.0,
        series_observed,
        rows,
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Metrics-registry overhead: full runs ({taxa} taxa x {sites} bp, 2 ranks, {} iterations)\n",
        iterations
    );
    let _ = writeln!(md, "| scheme | registry | median wall | overhead |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in &report.rows {
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} ms | {:+.2}% |",
            r.scheme, r.metrics, r.median_ms, r.overhead_percent
        );
    }
    let _ = writeln!(
        md,
        "\nTarget: <2% overhead with the registry enabled — {}.",
        if report.meets_target { "met" } else { "MISSED" }
    );
    print!("{md}");

    write_json("metrics", &report);
    write_markdown("metrics", &md);
}
