//! **Figure 3** — log-scaled ExaML runtimes under PSR and Γ on the large
//! unpartitioned alignment (paper: 150 taxa × 20,000,000 bp, 12,597,450
//! unique patterns) for 1–32 nodes of 48 cores.
//!
//! ```text
//! cargo run -p examl-bench --release --bin figure3 -- \
//!     [--taxa 150] [--sites 20000] [--ranks 4]
//! ```
//!
//! The run executes for real at `--sites` scale; the measured profile is
//! rescaled to the paper's 12.6M patterns and mapped onto the Magny-Cours
//! cluster model, including the per-node memory capacity that made the
//! paper's Γ runs swap on 1–2 nodes (super-linear speedups, §IV-C). Also
//! reproduces the §IV-C ExaML-vs-RAxML-Light comparison at 32 nodes.

use exa_comm::cluster::{modeled_time, ClusterSpec};
use exa_forkjoin::{execute, ForkJoinConfig};
use exa_phylo::model::rates::RateModelKind;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{fmt_secs, write_json, write_markdown, MeasuredRun};
use serde::Serialize;

/// The paper's pattern count for this dataset.
const PAPER_PATTERNS: f64 = 12_597_450.0;
/// The paper's taxon count (CLV work and memory scale with `taxa - 2`
/// inner nodes as well as with patterns).
const PAPER_TAXA: f64 = 150.0;
/// Non-CLV memory overhead (alignment, tip data, buffers, OS) relative to
/// CLV bytes; calibrated so the Γ footprint exceeds one 256 GB node and two
/// nodes' capacity, as observed in §IV-C (see EXPERIMENTS.md).
const MEM_OVERHEAD: f64 = 2.3;

#[derive(Serialize)]
struct Figure3Point {
    model: String,
    nodes: usize,
    modeled_seconds: f64,
    swapped: bool,
    speedup_vs_1_node: f64,
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = arg_value(&args, "--taxa")
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    let sites: usize = arg_value(&args, "--sites")
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let ranks: usize = arg_value(&args, "--ranks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    eprintln!("generating the large unpartitioned workload ({taxa} taxa x {sites} bp)...");
    let w = workloads::large_unpartitioned(taxa, sites, 9);
    let measured_patterns = w.compressed.total_patterns() as f64;
    let scale = (PAPER_PATTERNS / measured_patterns) * ((PAPER_TAXA - 2.0) / (taxa as f64 - 2.0));
    eprintln!(
        "  {measured_patterns} unique patterns measured; scaling work/memory x{scale:.0} \
         to the paper's 12.6M patterns x 150 taxa"
    );

    let search = SearchConfig {
        max_iterations: 2,
        epsilon: 0.05,
        spr_radius: 3,
        smoothing_passes: 1,
        optimize_model: true,
        model_tol: 1e-2,
    };
    let node_counts = [1usize, 2, 4, 8, 16, 32];

    let mut points: Vec<Figure3Point> = Vec::new();
    let mut comparison_rows: Vec<String> = Vec::new();
    for kind in [RateModelKind::Psr, RateModelKind::Gamma] {
        let label = match kind {
            RateModelKind::Psr => "PSR",
            RateModelKind::Gamma => "GAMMA",
        };
        eprintln!("running ExaML under {label} on {ranks} in-process ranks ...");
        let mut cfg = examl_core::RunConfig::new(ranks);
        cfg.rate_model = kind;
        cfg.search = search.clone();
        cfg.seed = 11;
        let t0 = std::time::Instant::now();
        let out = cfg.run(&w.compressed).unwrap();
        let ex = MeasuredRun::new(
            out.result.lnl,
            out.result.iterations,
            &out.comm_stats,
            &out.work,
            out.mem_bytes,
            t0.elapsed().as_secs_f64(),
        );

        let profile = ex.profile_scaled(scale, MEM_OVERHEAD);
        let mut t1 = f64::NAN;
        for &n in &node_counts {
            let spec = ClusterSpec::magny_cours(n);
            let m = modeled_time(&spec, &profile);
            if n == 1 {
                t1 = m.total_s;
            }
            points.push(Figure3Point {
                model: label.into(),
                nodes: n,
                modeled_seconds: m.total_s,
                swapped: m.swapped,
                speedup_vs_1_node: t1 / m.total_s,
            });
        }

        // §IV-C comparison at 32 nodes: ExaML vs RAxML-Light (reduction in
        // collective count is the only difference — unpartitioned data).
        eprintln!("running RAxML-Light under {label} for the 32-node comparison ...");
        let mut fcfg = ForkJoinConfig::new(ranks);
        fcfg.rate_model = kind;
        fcfg.search = search.clone();
        fcfg.seed = 11;
        let t0 = std::time::Instant::now();
        let fj_out = execute(&w.compressed, &fcfg, None);
        let fj = MeasuredRun::new(
            fj_out.result.lnl,
            fj_out.result.iterations,
            &fj_out.comm_stats,
            &fj_out.work,
            fj_out.mem_bytes,
            t0.elapsed().as_secs_f64(),
        );
        let spec32 = ClusterSpec::magny_cours(32);
        let ex32 = modeled_time(&spec32, &profile).total_s;
        let fj32 = modeled_time(&spec32, &fj.profile_scaled(scale, MEM_OVERHEAD)).total_s;
        comparison_rows.push(format!(
            "| {label} | {} | {} | {:+.1}% |\n",
            fmt_secs(ex32),
            fmt_secs(fj32),
            100.0 * (fj32 - ex32) / fj32
        ));
    }

    let mut md = String::new();
    md.push_str("# Figure 3 reproduction: node sweep on the large unpartitioned alignment\n\n");
    md.push_str(&format!(
        "Profiles measured at {taxa} taxa x {sites} bp on {ranks} in-process ranks, \
         rescaled to the paper's 12.6M unique patterns; times modeled for the \
         Magny-Cours cluster (48 cores/node, 256 GB/node).\n\n"
    ));
    md.push_str("| model | nodes | modeled time (s) | speedup vs 1 node | swapping |\n");
    md.push_str("|---|---|---|---|---|\n");
    for p in &points {
        md.push_str(&format!(
            "| {} | {} | {} | {:.1} | {} |\n",
            p.model,
            p.nodes,
            fmt_secs(p.modeled_seconds),
            p.speedup_vs_1_node,
            if p.swapped { "YES" } else { "" }
        ));
    }
    md.push_str(
        "\nPaper reference: PSR speedups 6.9 @ 8 nodes and 26.9 @ 32 nodes (vs 1 node); \
         Γ super-linear on 1-2 nodes because the footprint exceeded node memory and \
         swapped.\n\n## ExaML vs RAxML-Light at 32 nodes (§IV-C)\n\n",
    );
    md.push_str("| model | ExaML (s) | RAxML-Light (s) | improvement |\n|---|---|---|---|\n");
    for r in &comparison_rows {
        md.push_str(r);
    }
    md.push_str(
        "\nPaper: 4990 s vs 6108 s under Γ (6.0-35.8% improvement range across node \
         counts); PSR execution times similar between the two codes.\n",
    );

    println!("{md}");
    write_markdown("figure3", &md);
    write_json("figure3", &points);
}
