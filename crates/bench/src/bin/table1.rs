//! **Table I** — relative contribution of the four parallel-region classes
//! to the fork-join baseline's total communication, on the 10-partition
//! dataset, for the four configurations (Γ/PSR × per-partition/joint branch
//! lengths).
//!
//! ```text
//! cargo run -p examl-bench --release --bin table1 -- [chunk_len=200] [ranks=4]
//! ```
//!
//! Paper reference (Table I):
//!
//! | | Γ,per-part | Γ,joint | PSR,per-part | PSR,joint |
//! |---|---|---|---|---|
//! | branch length optimization [%]  | 29.22 | 1.17 | 68.16 | 1.11 |
//! | per-site/partition lnLs [%]     | 0.25  | 0.40 | 0.51  | 0.39 |
//! | model parameters [%]            | 0.33  | 0.52 | 0.99  | 2.78 |
//! | traversal descriptor [%]        | 70.20 | 97.91| 30.34 | 95.72|
//! | # parallel regions (millions)   | 5.8   | 1.7  | 8.3   | 0.6  |
//! | # bytes (MB)                    | 2841  | 1809 | 1763  | 626  |

use exa_comm::CommCategory;
use exa_forkjoin::{execute, ForkJoinConfig};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::BranchMode;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use serde::Serialize;

#[derive(Serialize)]
struct Table1Column {
    config: String,
    branch_length_pct: f64,
    site_likelihoods_pct: f64,
    model_params_pct: f64,
    traversal_descriptor_pct: f64,
    regions: u64,
    bytes: u64,
    lnl: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chunk_len: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(200);
    let ranks: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    eprintln!("generating the 10-partition dataset (52 taxa x 10 x {chunk_len} bp)...");
    let w = workloads::partitioned_52taxa(10, chunk_len, 1);

    let configs = [
        (
            "Gamma, per-partition",
            RateModelKind::Gamma,
            BranchMode::PerPartition,
        ),
        ("Gamma, joint", RateModelKind::Gamma, BranchMode::Joint),
        (
            "PSR, per-partition",
            RateModelKind::Psr,
            BranchMode::PerPartition,
        ),
        ("PSR, joint", RateModelKind::Psr, BranchMode::Joint),
    ];

    let mut columns = Vec::new();
    for (label, kind, mode) in configs {
        eprintln!("running fork-join: {label} ...");
        let mut cfg = ForkJoinConfig::new(ranks);
        cfg.rate_model = kind;
        cfg.branch_mode = mode;
        cfg.search = SearchConfig {
            max_iterations: 3,
            epsilon: 0.05,
            ..SearchConfig::default()
        };
        cfg.seed = 7;
        let out = execute(&w.compressed, &cfg, None);
        let s = &out.comm_stats;
        columns.push(Table1Column {
            config: label.to_string(),
            branch_length_pct: s.byte_share(CommCategory::BranchLength),
            site_likelihoods_pct: s.byte_share(CommCategory::SiteLikelihoods),
            model_params_pct: s.byte_share(CommCategory::ModelParams),
            traversal_descriptor_pct: s.byte_share(CommCategory::TraversalDescriptor),
            regions: s.total_regions(),
            bytes: s.total_bytes(),
            lnl: out.result.lnl,
        });
    }

    // Render the table.
    let mut md = String::new();
    md.push_str("# Table I (reproduction): fork-join communication breakdown\n\n");
    md.push_str(&format!(
        "10-partition dataset (52 taxa x 10 x {chunk_len} bp), {ranks} ranks. \
         Percentages are shares of total payload bytes (paper convention).\n\n"
    ));
    md.push_str("| | Γ, per-partition | Γ, joint | PSR, per-partition | PSR, joint |\n");
    md.push_str("|---|---|---|---|---|\n");
    let row = |label: &str, f: &dyn Fn(&Table1Column) -> String| {
        format!(
            "| {label} | {} | {} | {} | {} |\n",
            f(&columns[0]),
            f(&columns[1]),
            f(&columns[2]),
            f(&columns[3])
        )
    };
    md.push_str(&row("branch length optimization [%]", &|c| {
        format!("{:.2}", c.branch_length_pct)
    }));
    md.push_str(&row("per-site/per-partition likelihoods [%]", &|c| {
        format!("{:.2}", c.site_likelihoods_pct)
    }));
    md.push_str(&row("model parameters [%]", &|c| {
        format!("{:.2}", c.model_params_pct)
    }));
    md.push_str(&row("traversal descriptor [%]", &|c| {
        format!("{:.2}", c.traversal_descriptor_pct)
    }));
    md.push_str(&row("# parallel regions", &|c| format!("{}", c.regions)));
    md.push_str(&row("# bytes communicated (MB)", &|c| {
        format!("{:.1}", c.bytes as f64 / 1e6)
    }));
    md.push_str(
        "\nPaper (Table I): descriptor share 70.2 / 97.9 / 30.3 / 95.7 %; branch-length \
         share 29.2 / 1.2 / 68.2 / 1.1 %; regions 5.8M / 1.7M / 8.3M / 0.6M; \
         bytes 2841 / 1809 / 1763 / 626 MB. Absolute numbers scale with dataset size \
         and iteration count; the *shape* to verify is: the traversal descriptor \
         dominates under joint branch lengths, and branch-length traffic takes a \
         large share under per-partition (-M) mode.\n",
    );

    println!("{md}");
    write_markdown("table1", &md);
    write_json("table1", &columns);
}
