//! **Batched-kernel guard** — fused (packed-batch) vs unbatched dispatch on
//! the 1000-partition workload, the regime where per-dispatch overhead
//! dominates kernel time (Fig. 4's right edge).
//!
//! ```text
//! cargo run -p examl-bench --release --bin batch -- \
//!     [--partitions 1000] [--chunk 25] [--ranks 4] [--guard]
//! ```
//!
//! Both runs execute for real (in-process ranks) and must produce bitwise
//! identical lnL — batching is purely a dispatch-structure change. The
//! throughput comparison maps the two measured profiles onto the paper's
//! 4-node cluster: the fused run carries the hybrid one-rank-per-node
//! threading path that packed batches unlock (`--threads`), the unbatched
//! run dispatches every partition separately in a flat rank world. With
//! `--guard`, exits non-zero if fused modeled throughput is below 1.5x the
//! unbatched baseline.

use exa_comm::cluster::{modeled_time, ClusterSpec};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::BranchMode;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{fmt_secs, write_json, write_markdown, MeasuredRun};
use serde::Serialize;

#[derive(Serialize)]
struct BatchReport {
    partitions: usize,
    fused: MeasuredRun,
    unbatched: MeasuredRun,
    fused_modeled_seconds: f64,
    unbatched_modeled_seconds: f64,
    speedup: f64,
    lnl_bitwise_identical: bool,
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run_once(
    w: &workloads::Workload,
    ranks: usize,
    search: &SearchConfig,
    batch: bool,
) -> MeasuredRun {
    let mut cfg = examl_core::RunConfig::new(ranks);
    cfg.rate_model = RateModelKind::Gamma;
    cfg.branch_mode = BranchMode::Joint;
    cfg.strategy = exa_sched::Strategy::MonolithicLpt;
    cfg.search = search.clone();
    cfg.seed = 5;
    cfg.batch = batch;
    let t0 = std::time::Instant::now();
    let out = cfg.run(&w.compressed).unwrap();
    MeasuredRun::new(
        out.result.lnl,
        out.result.iterations,
        &out.comm_stats,
        &out.work,
        out.mem_bytes,
        t0.elapsed().as_secs_f64(),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let partitions: usize = arg_value(&args, "--partitions")
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let chunk: usize = arg_value(&args, "--chunk")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let ranks: usize = arg_value(&args, "--ranks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let guard = args.iter().any(|a| a == "--guard");

    let search = SearchConfig {
        max_iterations: 2,
        epsilon: 0.05,
        spr_radius: 3,
        smoothing_passes: 1,
        optimize_model: true,
        model_tol: 1e-2,
    };
    eprintln!(
        "generating {partitions}-partition workload (52 taxa x {partitions} x {chunk} bp)..."
    );
    let w = workloads::partitioned_52taxa(partitions, chunk, 3);

    eprintln!("  fused (packed batches) ...");
    let fused = run_once(&w, ranks, &search, true);
    eprintln!("  unbatched (one dispatch per partition) ...");
    let unbatched = run_once(&w, ranks, &search, false);

    let identical = fused.lnl.to_bits() == unbatched.lnl.to_bits();
    assert!(
        identical,
        "batching changed the likelihood: {} vs {}",
        fused.lnl, unbatched.lnl
    );
    assert!(
        fused.dispatches < unbatched.dispatches,
        "packing must shrink the dispatch count ({} vs {})",
        fused.dispatches,
        unbatched.dispatches
    );

    let flat = ClusterSpec::magny_cours(4);
    let hybrid = ClusterSpec {
        hybrid_collectives: true,
        ..flat
    };
    let tf = modeled_time(&hybrid, &fused.profile_scaled(1.0, 1.0));
    let tu = modeled_time(&flat, &unbatched.profile_scaled(1.0, 1.0));
    let speedup = tu.total_s / tf.total_s;

    let mut md = String::new();
    md.push_str("# Batched-kernel guard: fused vs unbatched dispatch\n\n");
    md.push_str(&format!(
        "{partitions} partitions, GAMMA, joint branch lengths, {ranks} ranks. \
         Modeled on the paper's 4-node x 48-core cluster; the fused run uses \
         packed batches plus the hybrid threading path they unlock, the \
         unbatched run dispatches each partition separately in a flat rank \
         world.\n\n",
    ));
    md.push_str("| variant | dispatches | modeled (s) | wall (s) | lnL |\n");
    md.push_str("|---|---|---|---|---|\n");
    md.push_str(&format!(
        "| fused | {} | {} | {} | {:.6} |\n",
        fused.dispatches,
        fmt_secs(tf.total_s),
        fmt_secs(fused.wall_seconds),
        fused.lnl
    ));
    md.push_str(&format!(
        "| unbatched | {} | {} | {} | {:.6} |\n",
        unbatched.dispatches,
        fmt_secs(tu.total_s),
        fmt_secs(unbatched.wall_seconds),
        unbatched.lnl
    ));
    md.push_str(&format!(
        "\nFused throughput: **{speedup:.2}x** the unbatched baseline \
         (guard threshold 1.5x). Likelihoods are bitwise identical.\n",
    ));
    println!("{md}");

    let report = BatchReport {
        partitions,
        fused,
        unbatched,
        fused_modeled_seconds: tf.total_s,
        unbatched_modeled_seconds: tu.total_s,
        speedup,
        lnl_bitwise_identical: identical,
    };
    write_markdown("batch", &md);
    write_json("batch", &report);

    if guard && speedup < 1.5 {
        eprintln!("GUARD FAILED: fused throughput {speedup:.2}x < 1.5x unbatched");
        std::process::exit(1);
    }
}
