//! `--reduce fast` vs `--reduce reproducible` whole-inference overhead —
//! the cost of rank-count-invariant collectives. The reproducible path
//! routes every site-likelihood, derivative and rate-optimization sum
//! through binned superaccumulators (exchange the bins, render once), so
//! the overhead is per-site accumulation work plus a wider collective
//! payload. The acceptance bar is <5% on the end-to-end search.
//!
//! ```text
//! cargo run -p examl-bench --release --bin reduce -- [taxa=64] [sites=2000] [ranks=4] [reps=5]
//! ```

use exa_comm::{BinnedSum, ReduceChoice};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use examl_core::RunConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::time::Instant;

#[derive(Serialize)]
struct MicroRow {
    addends: usize,
    naive_ns_per_elem: f64,
    binned_ns_per_elem: f64,
    slowdown: f64,
}

#[derive(Serialize)]
struct ReduceReport {
    taxa: usize,
    sites: usize,
    ranks: usize,
    reps: usize,
    iterations: usize,
    fast_wall_s: f64,
    reproducible_wall_s: f64,
    /// End-to-end overhead of the reproducible mode, percent.
    overhead_pct: f64,
    fast_lnl: f64,
    reproducible_lnl: f64,
    /// |fast - reproducible| in units of the last place of the fast lnL.
    lnl_ulp_distance: u64,
    micro: Vec<MicroRow>,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn ulp_distance(a: f64, b: f64) -> u64 {
    fn key(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN ^ bits
        } else {
            bits
        }
    }
    key(a).abs_diff(key(b))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let taxa: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(64);
    let sites: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let ranks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let reps: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(5);
    let iterations = 3;

    eprintln!("generating the Γ DNA workload ({taxa} taxa x {sites} bp)...");
    let w = workloads::large_unpartitioned(taxa, sites, 5);
    let scheme = exa_bio::partition::PartitionScheme::unpartitioned(sites);
    let comp = exa_bio::patterns::CompressedAlignment::build(&w.alignment, &scheme);

    let config = |reduce: ReduceChoice| {
        RunConfig::new(ranks)
            .reduce(reduce)
            .seed(23)
            .search(SearchConfig {
                max_iterations: iterations,
                epsilon: 1e-9,
                ..SearchConfig::fast()
            })
    };
    let run = |reduce: ReduceChoice| {
        let t0 = Instant::now();
        let out = config(reduce).run(&comp).expect("bench run failed");
        (t0.elapsed().as_secs_f64(), out.result.lnl)
    };

    // Warmup both paths, then interleave the timed repetitions so machine
    // drift hits both modes equally.
    let (_, fast_lnl) = run(ReduceChoice::Fast);
    let (_, repro_lnl) = run(ReduceChoice::Reproducible);
    let (mut fast_s, mut repro_s) = (Vec::new(), Vec::new());
    for rep in 0..reps {
        eprintln!("rep {}/{reps}...", rep + 1);
        fast_s.push(run(ReduceChoice::Fast).0);
        repro_s.push(run(ReduceChoice::Reproducible).0);
    }
    let fast_wall_s = median(fast_s);
    let reproducible_wall_s = median(repro_s);
    let overhead_pct = (reproducible_wall_s / fast_wall_s - 1.0) * 100.0;

    // Micro view: per-element cost of the binned accumulator vs a naive
    // running sum — the per-site work the whole-run overhead comes from.
    let mut micro = Vec::new();
    for addends in [1usize << 10, 1 << 14, 1 << 18] {
        let xs: Vec<f64> = (0..addends)
            .map(|i| -((i % 977) as f64).mul_add(1e-4, 2.0))
            .collect();
        let naive = median(
            (0..9)
                .map(|_| {
                    let t0 = Instant::now();
                    let mut acc = 0.0f64;
                    for &x in &xs {
                        acc += x;
                    }
                    std::hint::black_box(acc);
                    t0.elapsed().as_nanos() as f64 / addends as f64
                })
                .collect(),
        );
        let binned = median(
            (0..9)
                .map(|_| {
                    let t0 = Instant::now();
                    let mut acc = BinnedSum::new();
                    acc.add_slice(&xs);
                    std::hint::black_box(acc.render());
                    t0.elapsed().as_nanos() as f64 / addends as f64
                })
                .collect(),
        );
        micro.push(MicroRow {
            addends,
            naive_ns_per_elem: naive,
            binned_ns_per_elem: binned,
            slowdown: binned / naive,
        });
    }

    let report = ReduceReport {
        taxa,
        sites,
        ranks,
        reps,
        iterations,
        fast_wall_s,
        reproducible_wall_s,
        overhead_pct,
        fast_lnl,
        reproducible_lnl: repro_lnl,
        lnl_ulp_distance: ulp_distance(fast_lnl, repro_lnl),
        micro,
    };

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Reproducible reductions: end-to-end overhead ({taxa} taxa x {sites} bp Γ DNA, {ranks} ranks, {iterations} iterations, median of {reps})\n"
    );
    let _ = writeln!(md, "| mode | wall | final lnL |");
    let _ = writeln!(md, "|---|---|---|");
    let _ = writeln!(md, "| fast | {fast_wall_s:.3} s | {fast_lnl:.6} |");
    let _ = writeln!(
        md,
        "| reproducible | {reproducible_wall_s:.3} s | {:.6} |",
        repro_lnl
    );
    let _ = writeln!(
        md,
        "\n**Overhead: {overhead_pct:+.2}%** (bar: <5%). Final lnL agreement: {} ULP.\n",
        report.lnl_ulp_distance
    );
    let _ = writeln!(md, "| addends | naive sum | binned sum | slowdown |");
    let _ = writeln!(md, "|---|---|---|---|");
    for r in &report.micro {
        let _ = writeln!(
            md,
            "| {} | {:.2} ns/elem | {:.2} ns/elem | {:.2}x |",
            r.addends, r.naive_ns_per_elem, r.binned_ns_per_elem, r.slowdown
        );
    }
    print!("{md}");

    write_json("reduce", &report);
    write_markdown("reduce", &md);
}
