//! Measured vs predicted load imbalance — checks the scheduler's
//! pattern-count prediction against *measured* per-rank kernel time (from
//! the `exa-obs` kernel events) for the cyclic and monolithic (`-Q`)
//! distributions on the partitioned 52-taxon dataset.
//!
//! ```text
//! cargo run -p examl-bench --release --bin imbalance -- [partitions=10] [chunk_len=200] [ranks=4]
//! ```
//!
//! The paper's premise for per-site cyclic distribution (§IV-A) is that
//! pattern counts predict runtime well enough to balance on; this harness
//! quantifies how true that is, and how much worse the prediction gets for
//! monolithic per-partition assignment where per-partition cost variation
//! is not averaged away.

use exa_sched::balance::{balance_stats, measured_balance};
use exa_sched::Strategy;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use examl_core::RunConfig;
use serde::Serialize;
use std::fmt::Write as _;

#[derive(Serialize)]
struct ImbalanceRow {
    strategy: String,
    predicted_imbalance: f64,
    measured_imbalance: f64,
    ratio: f64,
    per_rank_ms: Vec<f64>,
    hottest_partitions: Vec<(u32, u64)>,
    lnl: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let partitions: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let chunk_len: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    let ranks: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    eprintln!("generating the partitioned dataset (52 taxa x {partitions} x {chunk_len} bp)...");
    let w = workloads::partitioned_52taxa(partitions, chunk_len, 1);

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("cyclic", Strategy::Cyclic),
        ("monolithic (-Q)", Strategy::MonolithicLpt),
    ] {
        eprintln!("running de-centralized, {label} ...");
        let mut cfg = RunConfig::new(ranks);
        cfg.strategy = strategy;
        cfg.search = SearchConfig {
            max_iterations: 3,
            epsilon: 0.05,
            ..SearchConfig::default()
        };
        cfg.seed = 7;

        let predicted = balance_stats(
            &w.compressed,
            &exa_sched::distribute(&w.compressed, ranks, strategy),
        );

        let out = cfg.clone().collect_trace(true).run(&w.compressed).unwrap();
        let trace = out
            .trace
            .as_ref()
            .expect("collect_trace(true) yields a trace");
        let measured = measured_balance(&trace.kernel_profile().per_rank, 5);

        rows.push(ImbalanceRow {
            strategy: label.to_string(),
            predicted_imbalance: predicted.imbalance,
            measured_imbalance: measured.imbalance,
            ratio: measured.ratio_to_predicted(&predicted).unwrap_or(0.0),
            per_rank_ms: measured
                .per_rank_ns
                .iter()
                .map(|&ns| ns as f64 / 1e6)
                .collect(),
            hottest_partitions: measured.hottest.clone(),
            lnl: out.result.lnl,
        });
    }

    let mut md = String::new();
    let _ = writeln!(
        md,
        "# Measured vs predicted load imbalance ({} taxa, {partitions} partitions x {chunk_len} bp, {ranks} ranks)\n",
        w.compressed.n_taxa()
    );
    let _ = writeln!(
        md,
        "| strategy | predicted (max/mean patterns) | measured (max/mean kernel ns) | measured/predicted | hottest partitions (ms) |"
    );
    let _ = writeln!(md, "|---|---|---|---|---|");
    for r in &rows {
        let hottest: Vec<String> = r
            .hottest_partitions
            .iter()
            .map(|&(p, ns)| format!("p{p}: {:.1}", ns as f64 / 1e6))
            .collect();
        let _ = writeln!(
            md,
            "| {} | {:.3} | {:.3} | {:.3} | {} |",
            r.strategy,
            r.predicted_imbalance,
            r.measured_imbalance,
            r.ratio,
            hottest.join(", ")
        );
    }
    print!("{md}");

    write_json("imbalance", &rows);
    write_markdown("imbalance", &md);
}
