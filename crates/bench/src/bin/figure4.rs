//! **Figure 4** — execution times of ExaML vs RAxML-Light on alignments
//! with an increasing number of partitions (10/50/100/500/1000), under PSR
//! and Γ, on 4 nodes (192 cores); MPS enabled for ≥ 500 partitions.
//! `--mode joint` reproduces Fig. 4(a), `--mode per-partition` Fig. 4(b)
//! (the `-M` option).
//!
//! ```text
//! cargo run -p examl-bench --release --bin figure4 -- \
//!     [--mode joint|per-partition] [--chunk 25] [--ranks 4] [--sizes 10,50,100,500,1000]
//! ```
//!
//! Both schemes run for real (in-process ranks); their measured, rank-count
//! independent profiles (kernel work, parallel regions, payload bytes) are
//! then mapped onto the paper's 4-node × 48-core cluster with the analytic
//! model in `exa_comm::cluster` (substitution documented in DESIGN.md §2).

use exa_comm::cluster::{modeled_time, ClusterSpec};
use exa_forkjoin::{execute, ForkJoinConfig};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::BranchMode;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_bench::{fmt_secs, write_json, write_markdown, MeasuredRun};
use serde::Serialize;

#[derive(Serialize)]
struct Figure4Point {
    partitions: usize,
    model: String,
    scheme: String,
    mps: bool,
    measured: MeasuredRun,
    modeled_seconds: f64,
}

fn arg_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Run once to warm the allocator and page cache, then three more times and
/// keep the median wall time. Everything else in a `MeasuredRun` (lnL, comm
/// stats, work counters) is deterministic across repeats, so the last
/// measurement is kept with only its wall time replaced.
fn median_of_three(mut run: impl FnMut() -> MeasuredRun) -> MeasuredRun {
    let _ = run();
    let runs = [run(), run(), run()];
    let mut walls = [
        runs[0].wall_seconds,
        runs[1].wall_seconds,
        runs[2].wall_seconds,
    ];
    walls.sort_by(f64::total_cmp);
    let [_, _, last] = runs;
    MeasuredRun {
        wall_seconds: walls[1],
        ..last
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match arg_value(&args, "--mode").as_deref() {
        Some("per-partition") => BranchMode::PerPartition,
        _ => BranchMode::Joint,
    };
    let chunk: usize = arg_value(&args, "--chunk")
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let ranks: usize = arg_value(&args, "--ranks")
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let sizes: Vec<usize> = arg_value(&args, "--sizes")
        .map(|s| s.split(',').filter_map(|x| x.parse().ok()).collect())
        .unwrap_or_else(|| vec![10, 50, 100, 500, 1000]);

    let search = SearchConfig {
        max_iterations: 2,
        epsilon: 0.05,
        spr_radius: 3,
        smoothing_passes: 1,
        optimize_model: true,
        model_tol: 1e-2,
    };
    // The paper runs on 4 nodes (192 cores). ExaML carries the §V hybrid
    // execution this codebase implements (`--threads`: one rank per node,
    // a worker pool inside), so its collectives span nodes; RAxML-Light's
    // fork-join stays a flat per-core rank world.
    let spec = ClusterSpec::magny_cours(4);
    let hybrid = ClusterSpec {
        hybrid_collectives: true,
        ..spec
    };

    let mut points: Vec<Figure4Point> = Vec::new();
    for &p in &sizes {
        // MPS (-Q) for >= 500 partitions, exactly like the paper.
        let mps = p >= 500;
        let strategy = if mps {
            exa_sched::Strategy::MonolithicLpt
        } else {
            exa_sched::Strategy::Cyclic
        };
        eprintln!("generating {p}-partition workload (52 taxa x {p} x {chunk} bp)...");
        let w = workloads::partitioned_52taxa(p, chunk, 3);

        for kind in [RateModelKind::Psr, RateModelKind::Gamma] {
            let model_label = match kind {
                RateModelKind::Psr => "PSR",
                RateModelKind::Gamma => "GAMMA",
            };
            // --- ExaML (de-centralized, batched kernels) ---
            eprintln!("  ExaML, {model_label} ...");
            let measured = median_of_three(|| {
                let mut cfg = examl_core::RunConfig::new(ranks);
                cfg.rate_model = kind;
                cfg.branch_mode = mode;
                cfg.strategy = strategy;
                cfg.search = search.clone();
                cfg.seed = 5;
                cfg.batch = true;
                let t0 = std::time::Instant::now();
                let out = cfg.run(&w.compressed).unwrap();
                MeasuredRun::new(
                    out.result.lnl,
                    out.result.iterations,
                    &out.comm_stats,
                    &out.work,
                    out.mem_bytes,
                    t0.elapsed().as_secs_f64(),
                )
            });
            let modeled = modeled_time(&hybrid, &measured.profile_scaled(1.0, 1.0));
            points.push(Figure4Point {
                partitions: p,
                model: model_label.into(),
                scheme: "ExaML".into(),
                mps,
                measured,
                modeled_seconds: modeled.total_s,
            });

            // --- RAxML-Light (fork-join, per-partition dispatch) ---
            eprintln!("  RAxML-Light, {model_label} ...");
            let measured = median_of_three(|| {
                let mut cfg = ForkJoinConfig::new(ranks);
                cfg.rate_model = kind;
                cfg.branch_mode = mode;
                cfg.strategy = strategy;
                cfg.search = search.clone();
                cfg.seed = 5;
                cfg.batch = false;
                let t0 = std::time::Instant::now();
                let out = execute(&w.compressed, &cfg, None);
                MeasuredRun::new(
                    out.result.lnl,
                    out.result.iterations,
                    &out.comm_stats,
                    &out.work,
                    out.mem_bytes,
                    t0.elapsed().as_secs_f64(),
                )
            });
            let modeled = modeled_time(&spec, &measured.profile_scaled(1.0, 1.0));
            points.push(Figure4Point {
                partitions: p,
                model: model_label.into(),
                scheme: "RAxML-Light".into(),
                mps,
                measured,
                modeled_seconds: modeled.total_s,
            });
        }
    }

    // Render.
    let suffix = match mode {
        BranchMode::Joint => "a",
        BranchMode::PerPartition => "b",
    };
    let mut md = String::new();
    md.push_str(&format!(
        "# Figure 4({suffix}) reproduction: partition-count sweep ({} branch lengths)\n\n",
        match mode {
            BranchMode::Joint => "joint",
            BranchMode::PerPartition => "per-partition (-M)",
        }
    ));
    md.push_str(
        "Modeled times are for the paper's 4-node x 48-core cluster, from measured \
         work/communication/dispatch profiles. ExaML runs with packed partition \
         batches and hybrid (one-rank-per-node) collectives; RAxML-Light dispatches \
         each partition separately in a flat rank world. Wall times are the \
         in-process measurement (median of 3 after one warm-up run).\n\n",
    );
    md.push_str(
        "| partitions | model | MPS | ExaML modeled (s) | RAxML-Light modeled (s) | speedup | ExaML wall (s) | RAxML-Light wall (s) | identical lnL |\n",
    );
    md.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for &p in &sizes {
        for model in ["PSR", "GAMMA"] {
            let ex = points
                .iter()
                .find(|x| x.partitions == p && x.model == model && x.scheme == "ExaML")
                .unwrap();
            let fj = points
                .iter()
                .find(|x| x.partitions == p && x.model == model && x.scheme == "RAxML-Light")
                .unwrap();
            md.push_str(&format!(
                "| {p} | {model} | {} | {} | {} | {:.2}x | {} | {} | {} |\n",
                if ex.mps { "yes" } else { "no" },
                fmt_secs(ex.modeled_seconds),
                fmt_secs(fj.modeled_seconds),
                fj.modeled_seconds / ex.modeled_seconds,
                fmt_secs(ex.measured.wall_seconds),
                fmt_secs(fj.measured.wall_seconds),
                (ex.measured.lnl - fj.measured.lnl).abs() < 1e-6
            ));
        }
    }
    md.push_str(
        "\nPaper reference, Fig. 4(a): ExaML ~= RAxML-Light on 10/50/100 partitions under \
         PSR, ~30% faster under Γ; 3.1x/2.6x (Γ) and 3.2x/2.7x (PSR) faster on 500/1000. \
         Fig. 4(b) (-M): up to 1.7x (Γ) / 2.0x (PSR). The expected shape: the speedup \
         factor grows with the partition count because fork-join traffic (descriptors + \
         parameter arrays) grows with partitions while ExaML's collectives stay small.\n",
    );
    println!("{md}");
    write_markdown(&format!("figure4{suffix}"), &md);
    write_json(&format!("figure4{suffix}"), &points);
}
