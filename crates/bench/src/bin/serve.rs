//! Daemon throughput/starvation harness: a flood of small interactive jobs
//! sharing the worker pool with one large background run.
//!
//! ```text
//! cargo run -p examl-bench --release --bin serve -- [n_small=120] [large_iters=60] [workers=2]
//! ```
//!
//! The scenario the fair-share scheduler exists for: one tenant submits a
//! long tree search, another tenant then floods the queue with ≥100
//! one-iteration jobs, and a single urgent submission arrives mid-flood.
//! The report checks three things:
//!
//! * **no starvation** — every small job completes and its queue wait is
//!   recorded; the maximum small-job wait is finite and bounded by the
//!   makespan (the DRR bound in dispatch counts is property-tested in
//!   `exa-serve`; here we report the realized wall-clock waits);
//! * **preemption works under load** — the urgent job checkpoint-preempts
//!   a running lower-priority job instead of queueing behind the backlog
//!   (the victim is the newest lowest-priority run, the one with the least
//!   progress to redo);
//! * **nothing is lost** — the preempted job resumes and completes.

use exa_search::SearchConfig;
use exa_serve::daemon::{Daemon, DaemonConfig};
use exa_serve::scheduler::TenantConfig;
use exa_serve::{JobId, JobSpec, JobState};
use exa_simgen::workloads;
use examl_bench::{write_json, write_markdown};
use examl_core::RunConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct WaitStats {
    jobs: usize,
    completed: u64,
    /// Jobs that never reached a worker (must be 0 for starvation-freedom).
    starved: usize,
    max_wait_ms: f64,
    mean_wait_ms: f64,
}

#[derive(Serialize)]
struct ServeReport {
    n_small: usize,
    large_iters: usize,
    workers: usize,
    makespan_ms: f64,
    small: WaitStats,
    urgent_wait_ms: f64,
    large_preemptions: u64,
    large_completed: bool,
    daemon_preemptions: u64,
    daemon_resumes: u64,
    peak_queue_depth: u64,
    starvation_free: bool,
}

fn spec(alignment: &Path, tenant: &str, priority: u32, cost: u64, iters: usize) -> JobSpec {
    JobSpec {
        tenant: tenant.to_string(),
        priority,
        cost,
        alignment: alignment.to_path_buf(),
        partitions: None,
        config: RunConfig::new(2).seed(7).search(SearchConfig {
            max_iterations: iters,
            epsilon: 1e-9,
            ..SearchConfig::fast()
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n_small: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(120);
    let large_iters: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(60);
    let workers: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    let root = std::env::temp_dir().join(format!("examl_bench_serve_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    std::fs::create_dir_all(&root).unwrap();
    eprintln!("simulating workload (8 taxa x 200 bp)...");
    let w = workloads::partitioned(8, 2, 100, 7);
    let alignment = root.join("aln.phy");
    std::fs::write(&alignment, exa_bio::phylip::write_phylip(&w.alignment)).unwrap();

    let mut cfg = DaemonConfig::new(root.join("spool"));
    cfg.workers = workers;
    // Background gets weight 1, the interactive flood weight 4: smalls
    // drain briskly even while the long run holds a worker.
    cfg.tenants = vec![
        (
            "background".into(),
            TenantConfig {
                weight: 1,
                max_running: usize::MAX,
            },
        ),
        (
            "interactive".into(),
            TenantConfig {
                weight: 4,
                max_running: usize::MAX,
            },
        ),
    ];
    // Checkpoint on a cadence, not every iteration — the long run should
    // spend its time searching.
    cfg.checkpoint_every = 5;
    let daemon = Daemon::start(cfg).unwrap();

    let t0 = Instant::now();
    let large_id = daemon
        .submit(spec(&alignment, "background", 0, 100, large_iters))
        .unwrap();
    let small_ids: Vec<JobId> = (0..n_small)
        .map(|_| {
            daemon
                .submit(spec(&alignment, "interactive", 0, 1, 1))
                .unwrap()
        })
        .collect();
    eprintln!("queued {} small jobs behind the large run", small_ids.len());

    // Let the pool saturate, then fire the urgent submission that must
    // checkpoint-preempt the background run.
    std::thread::sleep(Duration::from_millis(200));
    let urgent_id = daemon
        .submit(spec(&alignment, "interactive", 9, 1, 1))
        .unwrap();

    let mut peak_queue_depth = 0u64;
    loop {
        let hb = daemon.health();
        peak_queue_depth = peak_queue_depth.max(hb.queue_depth);
        let all_done = daemon.list().iter().all(|s| s.state.is_terminal());
        if all_done {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(600),
            "bench timed out with queue depth {}",
            hb.queue_depth
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let makespan_ms = t0.elapsed().as_secs_f64() * 1e3;

    let statuses = daemon.list();
    let small: Vec<_> = statuses
        .iter()
        .filter(|s| small_ids.contains(&s.id))
        .collect();
    let waits: Vec<f64> = small.iter().filter_map(|s| s.wait_ms).collect();
    let completed = small
        .iter()
        .filter(|s| matches!(s.state, JobState::Completed { .. }))
        .count() as u64;
    let starved = small.len() - waits.len();
    let max_wait_ms = waits.iter().cloned().fold(0.0, f64::max);
    let mean_wait_ms = if waits.is_empty() {
        0.0
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let large = statuses.iter().find(|s| s.id == large_id).unwrap();
    let urgent = statuses.iter().find(|s| s.id == urgent_id).unwrap();
    let hb = daemon.health();
    daemon.shutdown();
    std::fs::remove_dir_all(&root).ok();

    let report = ServeReport {
        n_small,
        large_iters,
        workers,
        makespan_ms,
        small: WaitStats {
            jobs: small.len(),
            completed,
            starved,
            max_wait_ms,
            mean_wait_ms,
        },
        urgent_wait_ms: urgent.wait_ms.unwrap_or(f64::NAN),
        large_preemptions: large.preemptions,
        large_completed: matches!(large.state, JobState::Completed { .. }),
        daemon_preemptions: hb.preemptions,
        daemon_resumes: hb.resumes,
        peak_queue_depth,
        starvation_free: starved == 0 && completed as usize == small.len(),
    };

    let mut md = format!(
        "# exa-serve under load: {n_small} small jobs vs one {large_iters}-iteration background run ({workers} workers)\n\n"
    );
    md.push_str("| metric | value |\n|---|---|\n");
    let _ = writeln!(md, "| makespan | {:.1} ms |", report.makespan_ms);
    let _ = writeln!(
        md,
        "| small jobs completed | {}/{} |",
        report.small.completed, report.small.jobs
    );
    let _ = writeln!(
        md,
        "| small max wait | {:.1} ms |",
        report.small.max_wait_ms
    );
    let _ = writeln!(
        md,
        "| small mean wait | {:.1} ms |",
        report.small.mean_wait_ms
    );
    let _ = writeln!(md, "| urgent job wait | {:.1} ms |", report.urgent_wait_ms);
    let _ = writeln!(
        md,
        "| background preemptions | {} |",
        report.large_preemptions
    );
    let _ = writeln!(md, "| daemon resumes | {} |", report.daemon_resumes);
    let _ = writeln!(md, "| peak queue depth | {} |", report.peak_queue_depth);
    let _ = writeln!(
        md,
        "\nStarvation-free: {} — every small job was dispatched and completed while the background run {}.",
        if report.starvation_free { "yes" } else { "NO" },
        if report.large_completed {
            "also completed"
        } else {
            "did not complete"
        }
    );

    write_json("serve", &report);
    write_markdown("serve", &md);

    assert!(
        report.starvation_free,
        "starvation detected: {} small jobs never completed",
        report.small.jobs - report.small.completed as usize
    );
}
