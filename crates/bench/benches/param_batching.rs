//! Ablation for DESIGN.md §5.3 / paper [23]: model-parameter proposals must
//! be made for ALL partitions simultaneously. Compares the number of
//! parallel regions (the quantity that dominates distributed cost) consumed
//! by batched α optimization versus a naive one-partition-at-a-time loop,
//! and their wall time sequentially.

use criterion::{criterion_group, criterion_main, Criterion};
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, PartitionSlice};
use exa_phylo::model::rates::{RateModelKind, ALPHA_MAX, ALPHA_MIN};
use exa_phylo::numerics::brent::BrentState;
use exa_phylo::tree::Tree;
use exa_search::evaluator::{BranchMode, Evaluator, SequentialEvaluator};
use exa_search::model::optimize_alphas;
use exa_simgen::workloads;

fn make_eval(partitions: usize) -> SequentialEvaluator {
    let w = workloads::partitioned(8, partitions, 60, 3);
    let comp: &CompressedAlignment = &w.compressed;
    let slices: Vec<PartitionSlice> = comp
        .partitions
        .iter()
        .enumerate()
        .map(|(i, p)| PartitionSlice::from_compressed(i, p))
        .collect();
    let engine = Engine::new(8, slices, RateModelKind::Gamma, 1.0);
    let tree = Tree::random(8, 1, 3);
    SequentialEvaluator::new(tree, engine, partitions, BranchMode::Joint)
}

/// Naive per-partition α optimization: each partition runs its own Brent
/// loop, each proposal costing one full parallel region (this is the
/// pre-[23] behaviour the paper's related work criticizes). Returns the
/// number of evaluate calls (= parallel regions).
fn optimize_alphas_sequentially(eval: &mut SequentialEvaluator, tol: f64) -> usize {
    let p = eval.n_partitions();
    let mut regions = 0;
    for target in 0..p {
        let mut brent = BrentState::new(ALPHA_MIN.ln(), ALPHA_MAX.ln());
        while let Some(x) = brent.proposal(tol) {
            let mut alphas = eval.alphas();
            alphas[target] = x.exp();
            eval.set_alphas(&alphas);
            let _ = eval.evaluate_partitioned(0);
            regions += 1;
            brent.update(x, -eval.last_per_partition()[target]);
        }
        let mut alphas = eval.alphas();
        alphas[target] = brent.best_x().exp();
        eval.set_alphas(&alphas);
    }
    let _ = eval.evaluate(0);
    regions + 1
}

fn bench_batched_vs_sequential(c: &mut Criterion) {
    // Region-count comparison (printed once; the core claim of [23]).
    {
        let mut batched = make_eval(8);
        let s = optimize_alphas(&mut batched, 1e-3);
        let mut seq = make_eval(8);
        let seq_regions = optimize_alphas_sequentially(&mut seq, 1e-3);
        eprintln!(
            "alpha optimization over 8 partitions: batched = {} parallel regions, \
             sequential = {} parallel regions ({}x more)",
            s.evaluations,
            seq_regions,
            seq_regions as f64 / s.evaluations as f64
        );
        assert!(
            seq_regions as f64 > 2.0 * s.evaluations as f64,
            "batching must save parallel regions: {} vs {}",
            s.evaluations,
            seq_regions
        );
        // Both must reach comparable optima.
        let lb = s.lnl;
        let ls = seq.evaluate(0);
        assert!((lb - ls).abs() < 1.0, "batched {lb} vs sequential {ls}");
    }

    let mut group = c.benchmark_group("alpha_optimization");
    group.sample_size(10);
    group.bench_function("batched_all_partitions", |b| {
        b.iter_with_setup(
            || make_eval(4),
            |mut eval| std::hint::black_box(optimize_alphas(&mut eval, 1e-2)),
        );
    });
    group.bench_function("sequential_per_partition", |b| {
        b.iter_with_setup(
            || make_eval(4),
            |mut eval| std::hint::black_box(optimize_alphas_sequentially(&mut eval, 1e-2)),
        );
    });
    group.finish();
}

criterion_group!(benches, bench_batched_vs_sequential);
criterion_main!(benches);
