//! Data-distribution ablation (DESIGN.md §5.2, paper §II + [24]): the MPS
//! monolithic assignment versus cyclic distribution — assignment cost and
//! the balance quality that determines parallel runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exa_sched::{balance::balance_stats, distribute, Strategy};
use exa_simgen::workloads;

fn bench_assignment_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_assignment");
    group.sample_size(10);
    for partitions in [100usize, 500, 1000] {
        let w = workloads::partitioned(8, partitions, 20, 3);
        for strategy in [Strategy::Cyclic, Strategy::MonolithicLpt] {
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), partitions),
                &partitions,
                |b, _| {
                    b.iter(|| std::hint::black_box(distribute(&w.compressed, 192, strategy)));
                },
            );
        }
    }
    group.finish();
}

fn bench_balance_quality(c: &mut Criterion) {
    // Not a timing bench per se: runs once per strategy and asserts the
    // published claims hold (monolithic keeps shares = partitions; cyclic
    // multiplies bookkeeping by the rank count but balances perfectly).
    let w = workloads::partitioned(8, 500, 20, 3);
    let ranks = 192;
    let cyc = balance_stats(
        &w.compressed,
        &distribute(&w.compressed, ranks, Strategy::Cyclic),
    );
    let mps = balance_stats(
        &w.compressed,
        &distribute(&w.compressed, ranks, Strategy::MonolithicLpt),
    );
    assert!(cyc.imbalance < 1.05);
    assert_eq!(mps.total_shares, 500);
    assert!(cyc.total_shares > 10 * mps.total_shares);

    let mut group = c.benchmark_group("balance_stats");
    group.sample_size(10);
    group.bench_function("compute_metrics", |b| {
        let a = distribute(&w.compressed, ranks, Strategy::MonolithicLpt);
        b.iter(|| std::hint::black_box(balance_stats(&w.compressed, &a)));
    });
    group.finish();
}

criterion_group!(benches, bench_assignment_cost, bench_balance_quality);
criterion_main!(benches);
