//! End-to-end scheme comparison at bench scale: a full (short) search under
//! the fork-join baseline versus the de-centralized scheme, in real wall
//! time and in communication volume. The in-process wall-time gap
//! understates the cluster gap (thread "messages" are memcpys), which is
//! why the figure harnesses use the analytic cluster model — but the
//! region/byte counts here are the real, hardware-independent measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exa_search::SearchConfig;
use exa_simgen::workloads;

fn quick_search() -> SearchConfig {
    SearchConfig {
        max_iterations: 1,
        epsilon: 0.5,
        spr_radius: 2,
        smoothing_passes: 1,
        optimize_model: true,
        model_tol: 1e-2,
    }
}

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_search");
    group.sample_size(10);
    for partitions in [4usize, 16] {
        let w = workloads::partitioned_52taxa(partitions, 30, 3);
        group.bench_with_input(
            BenchmarkId::new("decentralized", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    let mut cfg = examl_core::RunConfig::new(4);
                    cfg.search = quick_search();
                    std::hint::black_box(cfg.run(&w.compressed).unwrap())
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("forkjoin", partitions),
            &partitions,
            |b, _| {
                b.iter(|| {
                    let mut cfg = exa_forkjoin::ForkJoinConfig::new(4);
                    cfg.search = quick_search();
                    std::hint::black_box(exa_forkjoin::execute(&w.compressed, &cfg, None))
                });
            },
        );
    }
    group.finish();

    // Print the communication comparison once (the paper's actual metric).
    let w = workloads::partitioned_52taxa(16, 30, 3);
    let mut cfg = examl_core::RunConfig::new(4);
    cfg.search = quick_search();
    let dec = cfg.run(&w.compressed).unwrap();
    let mut fcfg = exa_forkjoin::ForkJoinConfig::new(4);
    fcfg.search = quick_search();
    let fj = exa_forkjoin::execute(&w.compressed, &fcfg, None);
    eprintln!(
        "16 partitions: fork-join {} regions / {} bytes vs de-centralized {} regions / {} bytes",
        fj.comm_stats.total_regions(),
        fj.comm_stats.total_bytes(),
        dec.comm_stats.total_regions(),
        dec.comm_stats.total_bytes()
    );
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
