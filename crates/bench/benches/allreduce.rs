//! Communicator benchmarks: allreduce cost versus rank count and message
//! size — the operation whose efficiency the paper says the de-centralized
//! scheme's performance "solely depends on" (§III-B) — plus the
//! reduce+broadcast pair it replaces under fork-join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use exa_comm::{CommCategory, World};

fn bench_allreduce_ranks(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce_by_ranks");
    group.sample_size(10);
    for ranks in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                World::run(ranks, |rank| {
                    let mut data = vec![rank.id() as f64; 8];
                    for _ in 0..100 {
                        rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods)
                            .unwrap();
                    }
                    data[0]
                })
            });
        });
    }
    group.finish();
}

fn bench_allreduce_message_size(c: &mut Criterion) {
    // Latency- vs bandwidth-bound regions: the paper's partitioned-analysis
    // problem is precisely that fork-join regions become bandwidth-bound as
    // per-region payloads grow with the partition count.
    let mut group = c.benchmark_group("allreduce_by_message_doubles");
    group.sample_size(10);
    for len in [2usize, 10, 100, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, &len| {
            b.iter(|| {
                World::run(4, |rank| {
                    let mut data = vec![rank.id() as f64; len];
                    for _ in 0..50 {
                        rank.allreduce_sum(&mut data, CommCategory::SiteLikelihoods)
                            .unwrap();
                    }
                    data[0]
                })
            });
        });
    }
    group.finish();
}

fn bench_allreduce_vs_reduce_broadcast(c: &mut Criterion) {
    // The de-centralized scheme needs ONE allreduce where fork-join needs a
    // descriptor broadcast + a reduce.
    let mut group = c.benchmark_group("collective_pattern");
    group.sample_size(10);
    group.bench_function("decentralized_one_allreduce", |b| {
        b.iter(|| {
            World::run(4, |rank| {
                let mut lnls = vec![1.0; 10];
                for _ in 0..50 {
                    rank.allreduce_sum(&mut lnls, CommCategory::SiteLikelihoods)
                        .unwrap();
                }
            })
        });
    });
    group.bench_function("forkjoin_broadcast_plus_reduce", |b| {
        b.iter(|| {
            World::run(4, |rank| {
                for _ in 0..50 {
                    // Traversal descriptor out (here: a 200-byte stand-in)…
                    let mut desc = if rank.id() == 0 {
                        vec![0u8; 200]
                    } else {
                        Vec::new()
                    };
                    rank.broadcast_bytes(0, &mut desc, CommCategory::TraversalDescriptor)
                        .unwrap();
                    // …likelihoods back.
                    let mut lnls = vec![1.0; 10];
                    rank.reduce_sum(0, &mut lnls, CommCategory::SiteLikelihoods)
                        .unwrap();
                }
            })
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_allreduce_ranks,
    bench_allreduce_message_size,
    bench_allreduce_vs_reduce_broadcast
);
criterion_main!(benches);
