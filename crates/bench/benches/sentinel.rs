//! Sentinel overhead guard: the replica-divergence sentinel at cadence 64
//! must cost less than 2% of wall time versus running unverified.
//!
//! The vendored criterion stand-in has no statistics or baselines, so the
//! guard itself is a manual interleaved-median comparison after the
//! criterion groups run (interleaving cancels slow machine drift; medians
//! shrug off scheduler hiccups).

use criterion::{criterion_group, criterion_main, Criterion};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::RunConfig;
use std::time::Instant;

fn cfg(cadence: u64) -> RunConfig {
    let mut cfg = RunConfig::new(2);
    cfg.search = SearchConfig {
        max_iterations: 3,
        epsilon: 0.01,
        ..SearchConfig::fast()
    };
    cfg.seed = 17;
    cfg.verify_replicas = cadence;
    cfg
}

fn run_once(w: &workloads::Workload, cadence: u64) -> f64 {
    let t0 = Instant::now();
    let out = cfg(cadence)
        .run(&w.compressed)
        .expect("clean run must not trip the sentinel");
    assert!(out.result.lnl.is_finite());
    t0.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn bench_sentinel_overhead(c: &mut Criterion) {
    let w = workloads::partitioned(12, 4, 300, 1);

    let mut group = c.benchmark_group("sentinel");
    group.sample_size(10);
    group.bench_function("disabled", |b| b.iter(|| run_once(&w, 0)));
    group.bench_function("cadence_64", |b| b.iter(|| run_once(&w, 64)));
    group.finish();

    // The <2% guard (DESIGN target): interleaved medians, warmup discarded.
    run_once(&w, 0);
    run_once(&w, 64);
    let mut base = Vec::new();
    let mut verified = Vec::new();
    for _ in 0..9 {
        base.push(run_once(&w, 0));
        verified.push(run_once(&w, 64));
    }
    let (base, verified) = (median(base), median(verified));
    let overhead = verified / base - 1.0;
    eprintln!(
        "sentinel overhead at cadence 64: {:+.2}% (disabled {:.1} ms, verified {:.1} ms)",
        100.0 * overhead,
        1e3 * base,
        1e3 * verified
    );
    assert!(
        overhead < 0.02,
        "sentinel cadence-64 overhead {:.2}% exceeds the 2% budget",
        100.0 * overhead
    );
}

criterion_group!(benches, bench_sentinel_overhead);
criterion_main!(benches);
