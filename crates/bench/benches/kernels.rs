//! Kernel micro-benchmarks: `newview`, `evaluate` and derivative
//! throughput under Γ (4 rate categories) vs PSR (1 category, ¼ the CLV
//! memory) — the trade-off behind §IV-C's model comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use exa_bio::partition::PartitionScheme;
use exa_bio::patterns::CompressedAlignment;
use exa_phylo::engine::{Engine, PartitionSlice};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_simgen::workloads;

fn setup(kind: RateModelKind, sites: usize) -> (Engine, Tree) {
    let w = workloads::large_unpartitioned(24, sites, 5);
    let scheme = PartitionScheme::unpartitioned(sites);
    let comp = CompressedAlignment::build(&w.alignment, &scheme);
    let slices = vec![PartitionSlice::from_compressed(0, &comp.partitions[0])];
    let engine = Engine::new(24, slices, kind, 0.8);
    let tree = Tree::random(24, 1, 5);
    (engine, tree)
}

fn bench_newview(c: &mut Criterion) {
    let mut group = c.benchmark_group("newview_full_traversal");
    group.sample_size(10);
    for kind in [RateModelKind::Gamma, RateModelKind::Psr] {
        let (mut engine, mut tree) = setup(kind, 4000);
        let patterns = engine.total_patterns() as u64;
        let cats = match kind {
            RateModelKind::Gamma => 4,
            RateModelKind::Psr => 1,
        };
        group.throughput(Throughput::Elements(
            patterns * cats * (tree.n_inner() as u64),
        ));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, _| {
                b.iter(|| {
                    let d = tree.full_traversal_descriptor(0);
                    engine.execute(&d);
                    std::hint::black_box(());
                });
            },
        );
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluate_at_root");
    group.sample_size(10);
    for kind in [RateModelKind::Gamma, RateModelKind::Psr] {
        let (mut engine, mut tree) = setup(kind, 4000);
        let d = tree.full_traversal_descriptor(0);
        engine.execute(&d);
        group.throughput(Throughput::Elements(engine.total_patterns() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, _| {
                b.iter(|| std::hint::black_box(engine.evaluate(&d)));
            },
        );
    }
    group.finish();
}

fn bench_derivatives(c: &mut Criterion) {
    let mut group = c.benchmark_group("newton_raphson_derivatives");
    group.sample_size(10);
    for kind in [RateModelKind::Gamma, RateModelKind::Psr] {
        let (mut engine, mut tree) = setup(kind, 4000);
        let d = tree.full_traversal_descriptor(0);
        engine.execute(&d);
        engine.prepare_derivatives(&d);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, _| {
                b.iter(|| std::hint::black_box(engine.derivatives(&[0.13])));
            },
        );
    }
    group.finish();
}

fn bench_partial_vs_full_traversal(c: &mut Criterion) {
    // DESIGN.md §5 ablation 4: the incremental-orientation machinery keeps
    // descriptors short; compare re-rooting at an adjacent edge (partial)
    // against a full re-traversal.
    let mut group = c.benchmark_group("traversal_granularity");
    group.sample_size(10);
    let (mut engine, mut tree) = setup(RateModelKind::Gamma, 4000);
    let d = tree.full_traversal_descriptor(0);
    engine.execute(&d);
    let adjacent = tree.edges_within_radius(0, 1)[0];

    group.bench_function("partial_reroot_adjacent", |b| {
        let mut flip = false;
        b.iter(|| {
            let e = if flip { 0 } else { adjacent };
            flip = !flip;
            let d = tree.traversal_descriptor(e);
            engine.execute(&d);
            std::hint::black_box(engine.evaluate(&d));
        });
    });
    group.bench_function("full_retraversal", |b| {
        b.iter(|| {
            let d = tree.full_traversal_descriptor(0);
            engine.execute(&d);
            std::hint::black_box(engine.evaluate(&d));
        });
    });
    group.finish();
}

fn bench_tracing_overhead(c: &mut Criterion) {
    // The exa-obs contract: tracing must be a near-free bystander on the hot
    // kernel path. Three configurations of the same newview traversal:
    // no tracer installed (the default), a tracer whose recorder is disabled
    // (one relaxed atomic load per span), and full recording.
    let mut group = c.benchmark_group("tracing_overhead");
    group.sample_size(10);
    let (mut engine, mut tree) = setup(RateModelKind::Gamma, 4000);

    group.bench_function("newview_untraced", |b| {
        b.iter(|| {
            let d = tree.full_traversal_descriptor(0);
            engine.execute(&d);
            std::hint::black_box(());
        });
    });

    let recorder = exa_obs::Recorder::new(1);
    recorder.set_enabled(false);
    let tracer = recorder.tracer(0);
    {
        let _tls = exa_obs::install_tracer(tracer.clone());
        group.bench_function("newview_tracer_disabled", |b| {
            b.iter(|| {
                let d = tree.full_traversal_descriptor(0);
                engine.execute(&d);
                std::hint::black_box(());
            });
        });
        recorder.set_enabled(true);
        group.bench_function("newview_tracer_enabled", |b| {
            b.iter(|| {
                let d = tree.full_traversal_descriptor(0);
                engine.execute(&d);
                std::hint::black_box(());
            });
        });
    }
    drop(tracer);
    let trace = exa_obs::Recorder::finish(recorder);
    assert!(trace.total_events() > 0, "enabled pass must have recorded");
    group.finish();
}

criterion_group!(
    benches,
    bench_newview,
    bench_evaluate,
    bench_derivatives,
    bench_partial_vs_full_traversal,
    bench_tracing_overhead
);
criterion_main!(benches);
