//! The unified run entrypoint.
//!
//! Historically every combination of scheme × tracing × divergence handling
//! got its own free function (`run_decentralized`, `run_decentralized_traced`,
//! `run_decentralized_checked`, `run_forkjoin`, `run_forkjoin_traced`,
//! `run_bootstrap`, `run_bootstrap_traced`, …) — nine entrypoints whose
//! signatures drifted apart as features landed. [`RunConfig`] replaces the
//! lot: one builder-style configuration, one [`RunConfig::run`] call, one
//! [`RunOutcome`] that always carries the negotiated kernel backend, the
//! optional trace and the end-of-run [`HealthReport`].
//!
//! ```no_run
//! # let aln: exa_bio::patterns::CompressedAlignment = unimplemented!();
//! use examl_core::{RunConfig, Scheme};
//!
//! let outcome = RunConfig::new(4)
//!     .scheme(Scheme::Decentralized)
//!     .verify_replicas(64)
//!     .collect_trace(true)
//!     .run(&aln)
//!     .expect("replicas stayed bit-identical");
//! println!("lnL {} with {} kernels", outcome.result.lnl, outcome.kernel.label());
//! ```
//!
//! The old entrypoints survived one release cycle as `#[deprecated]` shims
//! and have since been removed.

use crate::bootstrap::{bootstrap_impl, BootstrapConfig};
use crate::checkpoint::{self, Checkpoint, CheckpointError, CheckpointHeader, CheckpointPayload};
use crate::fault::FaultPlan;
use crate::sentinel::DivergenceFault;
use crate::{decentralized_impl, InferenceConfig, RunAbort, RunOutput};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommStats, ReduceChoice, ReduceKind};
use exa_obs::{HealthReport, Recorder, ReplicaDivergence, RunTrace};
use exa_phylo::engine::{
    GradientChoice, GradientMode, KernelChoice, KernelKind, RepeatsChoice, SiteRepeats,
    ThreadCount, ThreadsChoice, WorkCounters,
};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::{GlobalState, SearchSnapshot};
use exa_search::{BranchMode, KillSpec, PreemptSignal, SearchConfig, SearchResult, StartingTree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::PathBuf;

/// Which parallelization scheme executes the search (§III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scheme {
    /// The paper's contribution: every rank replicates the search and only
    /// mathematically-required reductions are communicated. Supports
    /// checkpointing, fault tolerance, the replica sentinel and bootstrap.
    Decentralized,
    /// The RAxML-Light master/worker baseline: rank 0 owns the tree and
    /// broadcasts work. No fault tolerance (a master failure is
    /// catastrophic by design) and no replica sentinel (there are no
    /// replicas to compare).
    ForkJoin,
}

/// Bootstrap settings carried by a [`RunConfig`] (de-centralized only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BootstrapOptions {
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Master seed; replicate `i` resamples with `seed + i`.
    pub seed: u64,
    /// Write the best-tree run's Chrome trace here and each replicate's to
    /// `bootstrap::replicate_trace_path` of it.
    pub trace_out: Option<PathBuf>,
}

/// Bootstrap results attached to a [`RunOutcome`].
#[derive(Debug, Clone)]
pub struct BootstrapSummary {
    /// Per-replicate final log-likelihoods.
    pub replicate_lnls: Vec<f64>,
    /// Support (% of replicates) per canonical bipartition of the best tree.
    pub support: HashMap<Vec<usize>, f64>,
    /// Best tree with support labels, Newick.
    pub annotated_newick: String,
}

/// Why a run did not produce a [`RunOutcome`].
#[derive(Debug)]
pub enum RunError {
    /// The replica sentinel tripped: the diagnostic names the first
    /// divergent collective, the minority ranks and the state component(s).
    Divergence(ReplicaDivergence),
    /// An injected kill (`--inject-kill`) terminated the run after the
    /// configured number of committed checkpoints.
    Killed {
        after_checkpoints: u64,
        iteration: usize,
    },
    /// A [`PreemptSignal`] stopped the run cleanly at iteration boundary
    /// `iteration`. Not a failure: `checkpoints` generations are on disk
    /// (including the preemption checkpoint when `checkpoint_out` was set)
    /// and the run resumes bit-identically via [`RunConfig::resume`].
    Preempted { iteration: usize, checkpoints: u64 },
    /// Checkpoint load/validation failed (corrupt file, incompatible
    /// header, empty directory).
    Checkpoint(CheckpointError),
    /// Trace or support-file I/O failed.
    Io(std::io::Error),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Divergence(d) => write!(f, "{d}"),
            RunError::Killed {
                after_checkpoints,
                iteration,
            } => write!(
                f,
                "run killed by injection after {after_checkpoints} checkpoint(s), \
                 at iteration boundary {iteration}"
            ),
            RunError::Preempted {
                iteration,
                checkpoints,
            } => write!(
                f,
                "run preempted at iteration boundary {iteration} \
                 ({checkpoints} checkpoint generation(s) on disk)"
            ),
            RunError::Checkpoint(e) => write!(f, "{e}"),
            RunError::Io(e) => write!(f, "trace I/O failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ReplicaDivergence> for RunError {
    fn from(d: ReplicaDivergence) -> RunError {
        RunError::Divergence(d)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> RunError {
        RunError::Io(e)
    }
}

impl From<CheckpointError> for RunError {
    fn from(e: CheckpointError) -> RunError {
        RunError::Checkpoint(e)
    }
}

impl From<RunAbort> for RunError {
    fn from(a: RunAbort) -> RunError {
        match a {
            RunAbort::Divergence(d) => RunError::Divergence(d),
            RunAbort::Killed {
                after_checkpoints,
                iteration,
            } => RunError::Killed {
                after_checkpoints,
                iteration,
            },
            RunAbort::Preempted {
                iteration,
                checkpoints,
            } => RunError::Preempted {
                iteration,
                checkpoints,
            },
        }
    }
}

/// Everything a run produces, regardless of scheme.
///
/// The search fields mirror the historical `RunOutput` so migrating callers
/// is mechanical; on top of those, every outcome reports the kernel backend
/// the ranks computed with, the merged trace (when requested) and the
/// end-of-run health summary.
#[derive(Debug)]
pub struct RunOutcome {
    pub result: SearchResult,
    /// Final replicated state (tree + model parameters).
    pub state: GlobalState,
    /// Final tree in Newick form.
    pub tree_newick: String,
    /// Communication statistics of the whole world.
    pub comm_stats: CommStats,
    /// Kernel work summed over all ranks.
    pub work: WorkCounters,
    /// Total CLV memory across ranks, bytes.
    pub mem_bytes: u64,
    /// Ranks alive at the end (all of them under fork-join).
    pub survivors: Vec<usize>,
    /// Sentinel fingerprint syncs completed (0 when the sentinel is off).
    pub sentinel_syncs: u64,
    /// The likelihood-kernel backend the ranks computed with (negotiated
    /// under `KernelChoice::Auto`, forced otherwise).
    pub kernel: KernelKind,
    /// The subtree-repeat compression setting the ranks computed with.
    pub site_repeats: SiteRepeats,
    /// The collective reduction mode the ranks computed with (negotiated
    /// under `ReduceChoice::Auto`, forced otherwise).
    pub reduce: ReduceKind,
    /// Intra-rank worker threads each rank computed with (negotiated under
    /// `ThreadsChoice::Auto`, forced otherwise).
    pub threads: usize,
    /// The gradient-BLO mode the ranks computed with (negotiated under
    /// `GradientChoice::Auto`, forced otherwise).
    pub gradient: GradientMode,
    /// Merged trace, present when [`RunConfig::collect_trace`] was set
    /// (absent for bootstrap runs, which write per-replicate trace files
    /// instead).
    pub trace: Option<RunTrace>,
    /// End-of-run health summary (sentinel verdict, load imbalance,
    /// heartbeat count, kernel backend).
    pub health: HealthReport,
    /// Bootstrap support results, when replicates were requested.
    pub bootstrap: Option<BootstrapSummary>,
}

/// Builder-style configuration for [`RunConfig::run`], the single
/// entrypoint replacing the `run_*` function family.
///
/// Serializable: the serve daemon spools jobs as `RunConfig` JSON. The
/// `preempt` handle is process-local and round-trips as `null` (a
/// deserialized config gets a fresh, disconnected signal slot).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    pub scheme: Scheme,
    pub n_ranks: usize,
    pub rate_model: RateModelKind,
    pub branch_mode: BranchMode,
    pub strategy: exa_sched::Strategy,
    pub search: SearchConfig,
    pub seed: u64,
    pub starting_tree: StartingTree,
    /// Checkpoint directory: commit a generation every `checkpoint_every`
    /// iterations (both schemes; 0 disables the iteration cadence).
    pub checkpoint_out: Option<PathBuf>,
    pub checkpoint_every: usize,
    /// Checkpoint generations retained (default
    /// [`checkpoint::KEEP_GENERATIONS`]).
    pub checkpoint_keep: usize,
    /// Also commit whenever this many wall-clock seconds have elapsed since
    /// the last commit, evaluated at iteration boundaries (both schemes).
    pub checkpoint_every_secs: Option<f64>,
    /// Cooperative preemption handle: when requested, the run checkpoints
    /// at its next boundary and returns [`RunError::Preempted`].
    pub preempt: Option<PreemptSignal>,
    /// Resume from the newest intact generation in this directory.
    pub resume_from: Option<PathBuf>,
    /// Deterministic kill injection for the restart chaos harness (requires
    /// `checkpoint_out`).
    pub inject_kill: Option<KillSpec>,
    pub fault_plan: FaultPlan,
    pub verify_replicas: u64,
    pub divergence_fault: Option<DivergenceFault>,
    pub health_out: Option<PathBuf>,
    /// Kernel-backend selection; `Auto` negotiates a common backend across
    /// the ranks (de-centralized) or resolves locally (fork-join).
    pub kernel: KernelChoice,
    /// Test hook: force a backend per rank, bypassing negotiation. Mixing
    /// kinds violates the uniform-backend requirement and trips the
    /// sentinel (de-centralized only).
    pub kernel_override: Option<Vec<KernelKind>>,
    /// Subtree-repeat CLV compression; `Auto` negotiates a uniform setting
    /// across the ranks (de-centralized) or resolves locally (fork-join).
    pub site_repeats: RepeatsChoice,
    /// Test hook: force a repeats setting per rank, bypassing negotiation
    /// (de-centralized only).
    pub site_repeats_override: Option<Vec<SiteRepeats>>,
    /// Collective reduction mode; `Auto` negotiates across the ranks
    /// (de-centralized) or resolves locally (fork-join). `Reproducible`
    /// makes every summed collective rank-count-invariant and bitwise
    /// deterministic via binned superaccumulators.
    pub reduce: ReduceChoice,
    /// Test hook: force a reduction mode per rank, bypassing negotiation.
    /// Mixing modes violates the uniform-reduction requirement and trips
    /// the sentinel (de-centralized only).
    pub reduce_override: Option<Vec<ReduceKind>>,
    /// Intra-rank worker threads per rank; `Auto` negotiates the world
    /// minimum (de-centralized) or resolves locally (fork-join). Bitwise
    /// invisible: the lnL trajectory is identical at any count.
    pub threads: ThreadsChoice,
    /// Test hook: force a thread count per rank, bypassing negotiation.
    pub threads_override: Option<Vec<ThreadCount>>,
    /// Gradient-driven branch-length optimization: compute every edge's
    /// analytic `dlnL/dt` in one full-tree sweep with a single collective
    /// per smoothing pass instead of per-edge seed reductions. Bitwise
    /// result-neutral; `Auto` negotiates the world minimum.
    pub gradient: GradientChoice,
    /// Test hook: force a gradient mode per rank, bypassing negotiation.
    /// Mixing modes desynchronizes the collective sequence and trips the
    /// sentinel (de-centralized only).
    pub gradient_override: Option<Vec<GradientMode>>,
    /// Pack small partitions into cache-sized kernel batches (default on).
    pub batch: bool,
    /// Mid-run elastic resize plan: at each `(iteration, width)` boundary
    /// the active rank pool shrinks or grows to `width` ranks by
    /// deterministic local data redistribution. Requires the de-centralized
    /// scheme and a non-`Fast` reduction mode (only rank-count-invariant
    /// sums keep the lnL trajectory bitwise stable across widths).
    pub resize_plan: Vec<(usize, usize)>,
    /// Collect an `exa-obs` trace and return it in the outcome.
    pub collect_trace: bool,
    /// Run a bootstrap analysis around the best-tree search.
    pub bootstrap: Option<BootstrapOptions>,
}

impl RunConfig {
    /// Defaults for `n_ranks` ranks: de-centralized scheme, Γ model, no
    /// tracing, sentinel off, kernel from `EXAML_KERNEL` (default `auto`).
    pub fn new(n_ranks: usize) -> RunConfig {
        let base = InferenceConfig::new(n_ranks);
        RunConfig {
            scheme: Scheme::Decentralized,
            n_ranks,
            rate_model: base.rate_model,
            branch_mode: base.branch_mode,
            strategy: base.strategy,
            search: base.search,
            seed: base.seed,
            starting_tree: base.starting_tree,
            checkpoint_out: None,
            checkpoint_every: 1,
            checkpoint_keep: checkpoint::KEEP_GENERATIONS,
            checkpoint_every_secs: None,
            preempt: None,
            resume_from: None,
            inject_kill: None,
            fault_plan: FaultPlan::none(),
            verify_replicas: 0,
            divergence_fault: None,
            health_out: None,
            kernel: base.kernel,
            kernel_override: None,
            site_repeats: base.site_repeats,
            site_repeats_override: None,
            reduce: base.reduce,
            reduce_override: None,
            threads: base.threads,
            threads_override: None,
            gradient: base.gradient,
            gradient_override: None,
            batch: base.batch,
            resize_plan: Vec::new(),
            collect_trace: false,
            bootstrap: None,
        }
    }

    pub fn scheme(mut self, scheme: Scheme) -> Self {
        self.scheme = scheme;
        self
    }

    pub fn rate_model(mut self, model: RateModelKind) -> Self {
        self.rate_model = model;
        self
    }

    pub fn branch_mode(mut self, mode: BranchMode) -> Self {
        self.branch_mode = mode;
        self
    }

    pub fn strategy(mut self, strategy: exa_sched::Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    pub fn search(mut self, search: SearchConfig) -> Self {
        self.search = search;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn starting_tree(mut self, tree: StartingTree) -> Self {
        self.starting_tree = tree;
        self
    }

    /// Commit a checkpoint generation into directory `dir` every `every`
    /// iterations (the directory keeps the last [`RunConfig::checkpoint_keep`]
    /// generations; `every = 0` disables the iteration cadence, leaving only
    /// the time cadence and preemption commits).
    pub fn checkpoint(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint_out = Some(dir.into());
        self.checkpoint_every = every;
        self
    }

    /// Retain the last `keep` checkpoint generations (clamped to ≥ 1).
    pub fn checkpoint_keep(mut self, keep: usize) -> Self {
        self.checkpoint_keep = keep.max(1);
        self
    }

    /// Also commit a checkpoint whenever `secs` wall-clock seconds have
    /// elapsed since the last commit, evaluated at iteration boundaries.
    /// Requires [`RunConfig::checkpoint`].
    pub fn checkpoint_every_secs(mut self, secs: f64) -> Self {
        self.checkpoint_every_secs = Some(secs);
        self
    }

    /// Arm cooperative preemption: when `signal` is requested, the run
    /// commits a final checkpoint at its next iteration boundary (if
    /// checkpointing is configured) and returns [`RunError::Preempted`].
    pub fn preempt(mut self, signal: PreemptSignal) -> Self {
        self.preempt = Some(signal);
        self
    }

    /// Resume from the newest intact checkpoint generation in `dir` before
    /// searching.
    pub fn resume(mut self, dir: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(dir.into());
        self
    }

    /// Inject a deterministic kill after `spec.after_checkpoints` committed
    /// checkpoint generations (restart chaos testing). Requires
    /// [`RunConfig::checkpoint`].
    pub fn inject_kill(mut self, spec: KillSpec) -> Self {
        self.inject_kill = Some(spec);
        self
    }

    /// Scripted rank failures (fault-tolerance testing, §V).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Exchange replica state fingerprints every `cadence` collectives
    /// (0 = sentinel off).
    pub fn verify_replicas(mut self, cadence: u64) -> Self {
        self.verify_replicas = cadence;
        self
    }

    /// Scripted single-bit state corruption (sentinel fault injection).
    pub fn divergence_fault(mut self, fault: DivergenceFault) -> Self {
        self.divergence_fault = Some(fault);
        self
    }

    /// Append one heartbeat JSON line per iteration boundary to `path`.
    pub fn health_out(mut self, path: impl Into<PathBuf>) -> Self {
        self.health_out = Some(path.into());
        self
    }

    /// Select the likelihood-kernel backend.
    pub fn kernel(mut self, kernel: KernelChoice) -> Self {
        self.kernel = kernel;
        self
    }

    /// Test hook: force a backend per rank (`table[rank % len]`).
    pub fn kernel_override(mut self, table: Vec<KernelKind>) -> Self {
        self.kernel_override = Some(table);
        self
    }

    /// Select the subtree-repeat CLV compression setting.
    pub fn site_repeats(mut self, choice: RepeatsChoice) -> Self {
        self.site_repeats = choice;
        self
    }

    /// Test hook: force a repeats setting per rank (`table[rank % len]`).
    pub fn site_repeats_override(mut self, table: Vec<SiteRepeats>) -> Self {
        self.site_repeats_override = Some(table);
        self
    }

    /// Select the collective reduction mode.
    pub fn reduce(mut self, choice: ReduceChoice) -> Self {
        self.reduce = choice;
        self
    }

    /// Test hook: force a reduction mode per rank (`table[rank % len]`).
    pub fn reduce_override(mut self, table: Vec<ReduceKind>) -> Self {
        self.reduce_override = Some(table);
        self
    }

    /// Select the intra-rank worker thread count.
    pub fn threads(mut self, choice: ThreadsChoice) -> Self {
        self.threads = choice;
        self
    }

    /// Test hook: force a thread count per rank (`table[rank % len]`).
    pub fn threads_override(mut self, table: Vec<ThreadCount>) -> Self {
        self.threads_override = Some(table);
        self
    }

    /// Select the gradient-BLO mode.
    pub fn gradient(mut self, choice: GradientChoice) -> Self {
        self.gradient = choice;
        self
    }

    /// Test hook: force a gradient mode per rank (`table[rank % len]`).
    pub fn gradient_override(mut self, table: Vec<GradientMode>) -> Self {
        self.gradient_override = Some(table);
        self
    }

    /// Enable or disable partition packing into kernel batches.
    pub fn batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Schedule a mid-run elastic resize: at iteration boundary `iteration`
    /// the active rank pool becomes `width` ranks (grow or shrink). May be
    /// called repeatedly to chain resizes. Requires the de-centralized
    /// scheme and a non-`Fast` [`RunConfig::reduce`] mode.
    pub fn resize_at(mut self, iteration: usize, width: usize) -> Self {
        self.resize_plan.push((iteration, width));
        self
    }

    /// Collect an `exa-obs` trace and return it in the outcome.
    pub fn collect_trace(mut self, on: bool) -> Self {
        self.collect_trace = on;
        self
    }

    /// Run `replicates` bootstrap replicates (replicate `i` resamples with
    /// `seed + i`) and attach bipartition support to the outcome.
    pub fn bootstrap(mut self, replicates: usize, seed: u64) -> Self {
        self.bootstrap = Some(BootstrapOptions {
            replicates,
            seed,
            trace_out: None,
        });
        self
    }

    /// Write bootstrap traces (best run + one file per replicate) rooted at
    /// `path`. Only meaningful after [`RunConfig::bootstrap`].
    pub fn bootstrap_trace_out(mut self, path: impl Into<PathBuf>) -> Self {
        if let Some(bs) = &mut self.bootstrap {
            bs.trace_out = Some(path.into());
        }
        self
    }

    /// The equivalent de-centralized [`InferenceConfig`] (the type the
    /// per-rank machinery consumes).
    pub fn inference_config(&self) -> InferenceConfig {
        InferenceConfig {
            n_ranks: self.n_ranks,
            rate_model: self.rate_model,
            branch_mode: self.branch_mode,
            strategy: self.strategy,
            search: self.search.clone(),
            seed: self.seed,
            starting_tree: self.starting_tree.clone(),
            checkpoint_out: self.checkpoint_out.clone(),
            checkpoint_every: self.checkpoint_every,
            checkpoint_keep: self.checkpoint_keep,
            checkpoint_every_secs: self.checkpoint_every_secs,
            preempt: self.preempt.clone(),
            resume_from: self.resume_from.clone(),
            inject_kill: self.inject_kill,
            fault_plan: self.fault_plan.clone(),
            verify_replicas: self.verify_replicas,
            divergence_fault: self.divergence_fault,
            health_out: self.health_out.clone(),
            kernel: self.kernel,
            kernel_override: self.kernel_override.clone(),
            site_repeats: self.site_repeats,
            site_repeats_override: self.site_repeats_override.clone(),
            reduce: self.reduce,
            reduce_override: self.reduce_override.clone(),
            threads: self.threads,
            threads_override: self.threads_override.clone(),
            gradient: self.gradient,
            gradient_override: self.gradient_override.clone(),
            batch: self.batch,
            resize_plan: self.resize_plan.clone(),
        }
    }

    /// The reduce mode this configuration resolves to without a world: an
    /// explicit choice is itself; `Auto` resolves to the highest level this
    /// build supports (reproducible). In-process negotiation over uniform
    /// advertisements yields the same answer.
    fn resolved_reduce(&self) -> ReduceKind {
        match self.reduce {
            ReduceChoice::Fast => ReduceKind::Fast,
            ReduceChoice::Reproducible | ReduceChoice::Auto => ReduceKind::Reproducible,
        }
    }

    /// The gradient mode this configuration resolves to without a world:
    /// an explicit choice is itself; `Auto` resolves to `On` (every build
    /// computes analytic gradients). In-process negotiation over uniform
    /// advertisements yields the same answer.
    fn resolved_gradient(&self) -> GradientMode {
        self.gradient.resolve_local()
    }

    /// Execute the configured run.
    pub fn run(&self, aln: &CompressedAlignment) -> Result<RunOutcome, RunError> {
        assert!(
            self.inject_kill.is_none() || self.checkpoint_out.is_some(),
            "--inject-kill requires --checkpoint-out (kills are counted in checkpoints)"
        );
        if !self.resize_plan.is_empty() {
            assert!(
                self.scheme == Scheme::Decentralized,
                "--resize-at requires the de-centralized scheme"
            );
            assert!(
                !matches!(self.reduce, ReduceChoice::Fast),
                "--resize-at requires --reduce reproducible (or auto): only \
                 rank-count-invariant reductions keep the lnL trajectory \
                 bitwise stable across a width change"
            );
            let world = self.inference_config().world_size();
            for &(iter, width) in &self.resize_plan {
                assert!(
                    width >= 1 && width <= world,
                    "resize to width {width} at iteration {iter} outside 1..={world}"
                );
            }
        }
        match self.scheme {
            Scheme::Decentralized => self.run_decentralized(aln),
            Scheme::ForkJoin => self.run_forkjoin(aln),
        }
    }

    /// Load and validate the resume checkpoint, if one was requested. The
    /// strict header fields must match this run ([`checkpoint::validate_resume`]);
    /// the elastic ones (kernel, site-repeats, scheme) may differ — the
    /// replicated state redistributes. The rank count is elastic only when
    /// both the checkpoint and this run use the reproducible reduce mode.
    fn load_resume(&self, aln: &CompressedAlignment) -> Result<Option<Checkpoint>, RunError> {
        let Some(dir) = &self.resume_from else {
            return Ok(None);
        };
        let ckpt = checkpoint::load_latest(dir)?;
        let ctx = checkpoint::ResumeContext {
            rate_model: format!("{:?}", self.rate_model),
            branch_mode: format!("{:?}", self.branch_mode),
            seed: self.seed,
            n_taxa: aln.n_taxa(),
            n_partitions: aln.n_partitions(),
            rank_count: self.n_ranks,
            reduce: self.resolved_reduce().label().into(),
        };
        checkpoint::validate_resume(&ckpt.header, &ctx)?;
        Ok(Some(ckpt))
    }

    fn run_decentralized(&self, aln: &CompressedAlignment) -> Result<RunOutcome, RunError> {
        let cfg = self.inference_config();
        let resume = self.load_resume(aln)?;
        if let Some(bs) = &self.bootstrap {
            let bs_cfg = BootstrapConfig {
                replicates: bs.replicates,
                seed: bs.seed,
                base: cfg,
            };
            let resume = resume.map(|c| c.payload);
            let out = bootstrap_impl(aln, &bs_cfg, bs.trace_out.as_deref(), resume.as_ref())?;
            let summary = BootstrapSummary {
                replicate_lnls: out.replicate_lnls,
                support: out.support,
                annotated_newick: out.annotated_newick,
            };
            let health = self.health_report(
                aln,
                out.best.sentinel_syncs,
                None,
                out.best.kernel,
                out.best.site_repeats,
                out.best.reduce,
                out.best.threads,
                out.best.gradient,
                &out.best.work,
            );
            return Ok(assemble(out.best, None, health, Some(summary)));
        }
        let resume = resume.map(|c| c.payload);
        // The recorder needs one buffer per comm-world rank, which under a
        // resize plan is the widest planned width, not the starting one.
        let recorder = self.collect_trace.then(|| Recorder::new(cfg.world_size()));
        let out = decentralized_impl(aln, &cfg, recorder.as_ref(), resume.as_ref())?;
        let trace = recorder.map(Recorder::finish);
        record_run_metrics("decentralized", out.kernel, trace.as_ref());
        let health = self.health_report(
            aln,
            out.sentinel_syncs,
            trace.as_ref(),
            out.kernel,
            out.site_repeats,
            out.reduce,
            out.threads,
            out.gradient,
            &out.work,
        );
        Ok(assemble(out, trace, health, None))
    }

    fn run_forkjoin(&self, aln: &CompressedAlignment) -> Result<RunOutcome, RunError> {
        assert!(
            self.bootstrap.is_none(),
            "bootstrap requires the de-centralized scheme"
        );
        assert!(
            self.inject_kill
                .is_none_or(|k| matches!(k.rank, None | Some(0))),
            "fork-join kill injection targets the master (rank 0); \
             worker ranks run no boundary hooks"
        );
        crate::install_control_panic_silencer();
        let resume = self.load_resume(aln)?;
        // All ranks of an in-process world share one machine; resolving
        // `auto` locally yields the same answer a negotiation would.
        let kernel = match self.kernel_override.as_deref() {
            Some([first, rest @ ..]) => {
                assert!(
                    rest.iter().all(|k| k == first),
                    "fork-join has no replica sentinel; refusing a mixed kernel override"
                );
                *first
            }
            _ => self.kernel.resolve_local(),
        };
        let site_repeats = match self.site_repeats_override.as_deref() {
            Some([first, rest @ ..]) => {
                assert!(
                    rest.iter().all(|r| r == first),
                    "fork-join has no replica sentinel; refusing a mixed repeats override"
                );
                *first
            }
            _ => self.site_repeats.resolve_local(),
        };
        let reduce = match self.reduce_override.as_deref() {
            Some([first, rest @ ..]) => {
                assert!(
                    rest.iter().all(|r| r == first),
                    "fork-join has no replica sentinel; refusing a mixed reduce override"
                );
                *first
            }
            _ => self.resolved_reduce(),
        };
        let threads = match self.threads_override.as_deref() {
            Some([first, rest @ ..]) => {
                assert!(
                    rest.iter().all(|t| t == first),
                    "fork-join has no replica sentinel; refusing a mixed threads override"
                );
                first.get()
            }
            _ => self.threads.resolve_local().get(),
        };
        let gradient = match self.gradient_override.as_deref() {
            Some([first, rest @ ..]) => {
                assert!(
                    rest.iter().all(|g| g == first),
                    "fork-join has no replica sentinel; refusing a mixed gradient override"
                );
                *first
            }
            _ => self.resolved_gradient(),
        };
        let fj = exa_forkjoin::ForkJoinConfig {
            n_ranks: self.n_ranks,
            rate_model: self.rate_model,
            branch_mode: self.branch_mode,
            strategy: self.strategy,
            search: self.search.clone(),
            seed: self.seed,
            starting_tree: self.starting_tree.clone(),
            kernel,
            site_repeats,
            reduce,
            threads,
            batch: self.batch,
            gradient,
        };
        let recorder = self.collect_trace.then(|| Recorder::new(self.n_ranks));
        // Checkpoint sink: the fork-join crate hands the master's snapshot
        // up here, where the self-describing header and the generation
        // rotation live.
        let dir = self.checkpoint_out.clone();
        let header = CheckpointHeader {
            format_version: 0, // sealed by Checkpoint::build
            scheme: "forkjoin".into(),
            kernel: kernel.label().into(),
            site_repeats: site_repeats.label().into(),
            rank_count: self.n_ranks,
            rate_model: format!("{:?}", self.rate_model),
            branch_mode: format!("{:?}", self.branch_mode),
            seed: self.seed,
            n_taxa: aln.n_taxa(),
            n_partitions: aln.n_partitions(),
            iteration: 0,
            payload_len: 0,
            payload_fingerprint: 0,
            reduce_mode: Some(reduce.label().into()),
            gradient: Some(gradient.label().into()),
        };
        let keep = self.checkpoint_keep;
        let sink = move |snap: &SearchSnapshot| -> std::io::Result<()> {
            let t0 = std::time::Instant::now();
            let dir = dir.as_deref().expect("sink only called when checkpointing");
            let ckpt = Checkpoint::build(
                header.clone(),
                CheckpointPayload {
                    snapshot: snap.clone(),
                    bootstrap: None,
                },
            );
            let res = checkpoint::save_generation_keeping(dir, &ckpt, keep)
                .map(|_| ())
                .map_err(std::io::Error::other);
            observe_checkpoint_write("forkjoin", t0.elapsed().as_secs_f64() * 1e3);
            res
        };
        let ctrl = (self.checkpoint_out.is_some()
            || resume.is_some()
            || self.inject_kill.is_some()
            || self.preempt.is_some())
        .then(|| exa_forkjoin::RestartControl {
            checkpoint_armed: self.checkpoint_out.is_some(),
            every: if self.checkpoint_out.is_some() {
                self.checkpoint_every
            } else {
                0
            },
            every_secs: self
                .checkpoint_every_secs
                .filter(|_| self.checkpoint_out.is_some()),
            sink: &sink,
            resume: resume.map(|c| c.payload.snapshot),
            inject_kill: self.inject_kill,
            preempt: self.preempt.clone(),
        });
        let out = match exa_forkjoin::execute_controlled(aln, &fj, recorder.as_ref(), ctrl) {
            Ok(out) => out,
            Err(exa_forkjoin::Stop::Killed(k)) => {
                return Err(RunError::Killed {
                    after_checkpoints: k.after_checkpoints,
                    iteration: k.iteration,
                })
            }
            Err(exa_forkjoin::Stop::Preempted(p)) => {
                return Err(RunError::Preempted {
                    iteration: p.iteration,
                    checkpoints: p.checkpoints,
                })
            }
        };
        let trace = recorder.map(Recorder::finish);
        record_run_metrics("forkjoin", kernel, trace.as_ref());
        let health = self.health_report(
            aln,
            0,
            trace.as_ref(),
            kernel,
            site_repeats,
            reduce,
            threads,
            gradient,
            &out.work,
        );
        Ok(RunOutcome {
            result: out.result,
            state: out.state,
            tree_newick: out.tree_newick,
            comm_stats: out.comm_stats,
            work: out.work,
            mem_bytes: out.mem_bytes,
            survivors: (0..self.n_ranks).collect(),
            sentinel_syncs: 0,
            kernel,
            site_repeats,
            reduce,
            threads,
            gradient,
            trace,
            health,
            bootstrap: None,
        })
    }

    /// End-of-run health summary: sentinel verdict, measured (trace) vs
    /// predicted (scheduler) load imbalance, heartbeat count, kernel.
    #[allow(clippy::too_many_arguments)]
    fn health_report(
        &self,
        aln: &CompressedAlignment,
        sentinel_syncs: u64,
        trace: Option<&RunTrace>,
        kernel: KernelKind,
        site_repeats: SiteRepeats,
        reduce: ReduceKind,
        threads: usize,
        gradient: GradientMode,
        work: &WorkCounters,
    ) -> HealthReport {
        let measured = trace.and_then(|t| {
            let ratio = exa_obs::imbalance_ratio(&t.kernel_profile().rank_totals());
            (ratio > 0.0).then_some(ratio)
        });
        let assignments = exa_sched::distribute(aln, self.n_ranks, self.strategy);
        let predicted = exa_sched::balance::balance_stats(aln, &assignments).imbalance;
        let heartbeats = self
            .health_out
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count() as u64)
            .unwrap_or(0);
        HealthReport {
            sentinel_cadence: self.verify_replicas,
            sentinel_syncs,
            divergence: None,
            measured_imbalance: measured,
            predicted_imbalance: Some(predicted),
            heartbeats,
            kernel: Some(kernel.label().to_string()),
            site_repeats: Some(site_repeats.label().to_string()),
            repeat_ratio: Some(work.repeat_ratio()),
            reduce: Some(reduce.label().to_string()),
            threads: Some(threads as u64),
            gradient: Some(gradient.label().to_string()),
            critical_path: trace
                .and_then(RunTrace::critical_path)
                .map(|cp| cp.summary()),
        }
    }
}

/// Fold a finished run into the process-global metrics registry: one
/// `exa_runs_completed_total{scheme}` tick, plus the trace's total kernel
/// time as `exa_kernel_ns_total{scheme,kernel}` when tracing was on. No-op
/// while the registry is disabled.
fn record_run_metrics(scheme: &str, kernel: KernelKind, trace: Option<&RunTrace>) {
    if !exa_obs::metrics::enabled() {
        return;
    }
    let reg = exa_obs::metrics::global();
    reg.counter(
        "exa_runs_completed_total",
        "Tree-search runs completed, by parallelization scheme.",
        &[("scheme", scheme)],
    )
    .inc();
    if let Some(t) = trace {
        let total: u64 = t.kernel_profile().rank_totals().iter().sum();
        reg.counter(
            "exa_kernel_ns_total",
            "Nanoseconds spent in likelihood kernels, summed over ranks.",
            &[("scheme", scheme), ("kernel", kernel.label())],
        )
        .add(total);
    }
}

/// Record one checkpoint write's wall time into
/// `exa_checkpoint_write_ms{scheme}`. No-op while the registry is disabled.
pub(crate) fn observe_checkpoint_write(scheme: &str, ms: f64) {
    if !exa_obs::metrics::enabled() {
        return;
    }
    exa_obs::metrics::global()
        .histogram(
            "exa_checkpoint_write_ms",
            "Wall-clock milliseconds per checkpoint write (gather + encode + fsync + rename).",
            &[("scheme", scheme)],
        )
        .observe(ms);
}

fn assemble(
    out: RunOutput,
    trace: Option<RunTrace>,
    health: HealthReport,
    bootstrap: Option<BootstrapSummary>,
) -> RunOutcome {
    RunOutcome {
        result: out.result,
        state: out.state,
        tree_newick: out.tree_newick,
        comm_stats: out.comm_stats,
        work: out.work,
        mem_bytes: out.mem_bytes,
        survivors: out.survivors,
        sentinel_syncs: out.sentinel_syncs,
        kernel: out.kernel,
        site_repeats: out.site_repeats,
        reduce: out.reduce,
        threads: out.threads,
        gradient: out.gradient,
        trace,
        health,
        bootstrap,
    }
}
