//! Unified capability negotiation.
//!
//! Five per-rank compute settings must be uniform across a world before
//! any engine is built: the likelihood-kernel backend, the subtree-repeat
//! compression setting, the collective reduction mode, the intra-rank
//! thread count, and the gradient-driven BLO mode. Each is a small
//! totally-ordered capability (a higher level is a superset of a lower
//! one), so heterogeneous worlds agree by everyone adopting the minimum
//! advertised level — the same protocol MPI codes use for feature
//! negotiation at startup.
//!
//! Historically each setting ran its own one-byte allgather, and only when
//! its choice was `Auto`. This module replaces those with ONE packed
//! exchange that always runs: every rank contributes one byte per
//! capability slot on a single `Control` allgather, forced slots simply
//! ignore the gathered minimum. Running the exchange unconditionally keeps
//! the collective sequence identical across ranks and across
//! configurations, which the trace rank-parity invariants and the
//! divergence sentinel both rely on.

use exa_comm::{CommCategory, Rank, ReduceChoice, ReduceKind};
use exa_phylo::engine::{
    GradientChoice, GradientMode, KernelChoice, KernelKind, RepeatsChoice, SiteRepeats,
    ThreadCount, ThreadsChoice,
};

/// A negotiable compute capability: a value with a stable label and a
/// monotone level, reconstructible from a negotiated minimum level.
pub trait Capability: Copy {
    /// Stable label (trace marks, health JSON, fingerprints).
    fn label(self) -> &'static str;
    /// Monotone capability level this value advertises.
    fn level(self) -> u8;
    /// The value a negotiated minimum level resolves to.
    fn from_level(level: u8) -> Self;
}

impl Capability for KernelKind {
    fn label(self) -> &'static str {
        KernelKind::label(&self)
    }
    fn level(self) -> u8 {
        self.capability_level()
    }
    fn from_level(level: u8) -> Self {
        KernelKind::from_capability_level(level)
    }
}

impl Capability for SiteRepeats {
    fn label(self) -> &'static str {
        SiteRepeats::label(&self)
    }
    fn level(self) -> u8 {
        self.capability_level()
    }
    fn from_level(level: u8) -> Self {
        SiteRepeats::from_capability_level(level)
    }
}

impl Capability for ReduceKind {
    fn label(self) -> &'static str {
        ReduceKind::label(self)
    }
    fn level(self) -> u8 {
        self.capability_level()
    }
    fn from_level(level: u8) -> Self {
        ReduceKind::from_capability_level(level)
    }
}

impl Capability for ThreadCount {
    fn label(self) -> &'static str {
        ThreadCount::label(self)
    }
    fn level(self) -> u8 {
        self.capability_level()
    }
    fn from_level(level: u8) -> Self {
        ThreadCount::from_capability_level(level)
    }
}

impl Capability for GradientMode {
    fn label(self) -> &'static str {
        GradientMode::label(&self)
    }
    fn level(self) -> u8 {
        self.capability_level()
    }
    fn from_level(level: u8) -> Self {
        GradientMode::from_capability_level(level)
    }
}

/// How one rank enters the exchange for one capability slot.
#[derive(Debug, Clone, Copy)]
pub enum Request<T: Capability> {
    /// Resolve locally (an explicit CLI choice or a per-rank test
    /// override). The forced level is still advertised — so the packed
    /// exchange stays uniform — but the gathered minimum is ignored.
    Forced(T),
    /// `Auto`: advertise this level, adopt the world minimum.
    Negotiate { advertise: u8 },
}

impl<T: Capability> Request<T> {
    fn advertised(&self) -> u8 {
        match self {
            Request::Forced(v) => v.level(),
            Request::Negotiate { advertise } => *advertise,
        }
    }

    fn resolve(&self, world_min: u8) -> Negotiated<T> {
        match self {
            Request::Forced(v) => Negotiated {
                value: *v,
                negotiated: false,
            },
            Request::Negotiate { .. } => Negotiated {
                value: T::from_level(world_min),
                negotiated: true,
            },
        }
    }
}

/// One resolved capability: the value plus whether it came out of the
/// exchange (`Auto`) or was forced locally.
#[derive(Debug, Clone, Copy)]
pub struct Negotiated<T> {
    pub value: T,
    pub negotiated: bool,
}

/// All five capability requests of one rank, in wire-slot order.
#[derive(Debug, Clone, Copy)]
pub struct CapabilityRequests {
    pub kernel: Request<KernelKind>,
    pub site_repeats: Request<SiteRepeats>,
    pub reduce: Request<ReduceKind>,
    pub threads: Request<ThreadCount>,
    pub gradient: Request<GradientMode>,
}

/// The negotiated compute configuration of one rank.
#[derive(Debug, Clone, Copy)]
pub struct Caps {
    pub kernel: Negotiated<KernelKind>,
    pub site_repeats: Negotiated<SiteRepeats>,
    pub reduce: Negotiated<ReduceKind>,
    pub threads: Negotiated<ThreadCount>,
    pub gradient: Negotiated<GradientMode>,
}

/// Build the kernel-slot request from a choice plus an optional per-rank
/// override table (test hook; indexed cyclically by rank id).
pub fn kernel_request(
    rank_id: usize,
    choice: KernelChoice,
    override_table: Option<&[KernelKind]>,
) -> Request<KernelKind> {
    if let Some(table) = override_table {
        return Request::Forced(table[rank_id % table.len().max(1)]);
    }
    match choice {
        KernelChoice::Scalar => Request::Forced(KernelKind::Scalar),
        KernelChoice::Simd => Request::Forced(KernelKind::Simd),
        KernelChoice::Auto => Request::Negotiate {
            advertise: choice.capability_level(),
        },
    }
}

/// Build the site-repeats-slot request, same protocol as
/// [`kernel_request`].
pub fn repeats_request(
    rank_id: usize,
    choice: RepeatsChoice,
    override_table: Option<&[SiteRepeats]>,
) -> Request<SiteRepeats> {
    if let Some(table) = override_table {
        return Request::Forced(table[rank_id % table.len().max(1)]);
    }
    match choice {
        RepeatsChoice::On => Request::Forced(SiteRepeats::On),
        RepeatsChoice::Off => Request::Forced(SiteRepeats::Off),
        RepeatsChoice::Auto => Request::Negotiate {
            advertise: choice.capability_level(),
        },
    }
}

/// Build the reduce-slot request, same protocol as [`kernel_request`].
pub fn reduce_request(
    rank_id: usize,
    choice: ReduceChoice,
    override_table: Option<&[ReduceKind]>,
) -> Request<ReduceKind> {
    if let Some(table) = override_table {
        return Request::Forced(table[rank_id % table.len().max(1)]);
    }
    match choice {
        ReduceChoice::Fast => Request::Forced(ReduceKind::Fast),
        ReduceChoice::Reproducible => Request::Forced(ReduceKind::Reproducible),
        ReduceChoice::Auto => Request::Negotiate {
            advertise: choice.advertised_level(),
        },
    }
}

/// Build the threads-slot request, same protocol as [`kernel_request`].
/// An explicit count forces; `auto` negotiates (and advertises 1 — threading
/// is strictly opt-in, so an auto world always resolves to serial).
pub fn threads_request(
    rank_id: usize,
    choice: ThreadsChoice,
    override_table: Option<&[ThreadCount]>,
) -> Request<ThreadCount> {
    if let Some(table) = override_table {
        return Request::Forced(table[rank_id % table.len().max(1)]);
    }
    match choice {
        ThreadsChoice::Count(n) => Request::Forced(n),
        ThreadsChoice::Auto => Request::Negotiate {
            advertise: choice.capability_level(),
        },
    }
}

/// Build the gradient-slot request, same protocol as [`kernel_request`].
/// `on`/`off` force; `auto` negotiates (advertising `on` — the sweep is pure
/// software, so a world of auto ranks resolves to the gradient pass).
pub fn gradient_request(
    rank_id: usize,
    choice: GradientChoice,
    override_table: Option<&[GradientMode]>,
) -> Request<GradientMode> {
    if let Some(table) = override_table {
        return Request::Forced(table[rank_id % table.len().max(1)]);
    }
    match choice {
        GradientChoice::On => Request::Forced(GradientMode::On),
        GradientChoice::Off => Request::Forced(GradientMode::Off),
        GradientChoice::Auto => Request::Negotiate {
            advertise: choice.capability_level(),
        },
    }
}

/// Run the one-time packed capability exchange: a single 5-byte `Control`
/// allgather, min per slot over every rank that contributed (a failed rank
/// leaves an empty slot, which the survivors skip — they still agree
/// because they all saw the same gather).
pub fn negotiate(rank: &Rank, req: &CapabilityRequests) -> Caps {
    let packet = vec![
        req.kernel.advertised(),
        req.site_repeats.advertised(),
        req.reduce.advertised(),
        req.threads.advertised(),
        req.gradient.advertised(),
    ];
    let n_slots = packet.len();
    let gathered = rank
        .allgather_bytes(packet.clone(), CommCategory::Control)
        .expect("capability negotiation cannot proceed after a rank failure");
    let min_of = |slot: usize| {
        gathered
            .iter()
            .filter(|b| b.len() == n_slots)
            .map(|b| b[slot])
            .min()
            .unwrap_or(packet[slot])
    };
    Caps {
        kernel: req.kernel.resolve(min_of(0)),
        site_repeats: req.site_repeats.resolve(min_of(1)),
        reduce: req.reduce.resolve(min_of(2)),
        threads: req.threads.resolve(min_of(3)),
        gradient: req.gradient.resolve(min_of(4)),
    }
}

/// Resolve the requests without any communication — what a single-rank
/// world would negotiate. Used by the fork-join scheme (whose workers take
/// the master's resolved settings via the command stream, not a gather)
/// and by daemon capability reporting.
pub fn resolve_local(req: &CapabilityRequests) -> Caps {
    Caps {
        kernel: req.kernel.resolve(req.kernel.advertised()),
        site_repeats: req.site_repeats.resolve(req.site_repeats.advertised()),
        reduce: req.reduce.resolve(req.reduce.advertised()),
        threads: req.threads.resolve(req.threads.advertised()),
        gradient: req.gradient.resolve(req.gradient.advertised()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_comm::World;

    fn auto_requests(rank_id: usize) -> CapabilityRequests {
        CapabilityRequests {
            kernel: kernel_request(rank_id, KernelChoice::Auto, None),
            site_repeats: repeats_request(rank_id, RepeatsChoice::Auto, None),
            reduce: reduce_request(rank_id, ReduceChoice::Auto, None),
            threads: threads_request(rank_id, ThreadsChoice::Auto, None),
            gradient: gradient_request(rank_id, GradientChoice::Auto, None),
        }
    }

    #[test]
    fn auto_world_agrees_on_local_resolution() {
        let caps: Vec<Caps> = World::run(4, |rank| {
            let req = auto_requests(rank.id());
            negotiate(&rank, &req)
        });
        let local = resolve_local(&auto_requests(0));
        for c in &caps {
            assert_eq!(c.kernel.value, local.kernel.value);
            assert_eq!(c.site_repeats.value, local.site_repeats.value);
            assert_eq!(c.reduce.value, ReduceKind::Reproducible);
            assert!(c.reduce.negotiated);
            assert_eq!(c.threads.value.get(), 1, "auto threads resolve serial");
            assert!(c.threads.negotiated);
            assert_eq!(c.gradient.value, GradientMode::On, "auto gradient is on");
            assert!(c.gradient.negotiated);
        }
    }

    #[test]
    fn min_capability_wins_across_heterogeneous_advertisements() {
        // One rank advertises a weaker kernel level; the whole world adopts
        // it. The weak rank forces (local resolution), the others negotiate
        // — forced slots keep their value, negotiated slots take the min.
        let caps: Vec<Caps> = World::run(3, |rank| {
            let req = CapabilityRequests {
                kernel: if rank.id() == 1 {
                    Request::Forced(KernelKind::Scalar)
                } else {
                    Request::Negotiate {
                        advertise: KernelKind::Simd.capability_level(),
                    }
                },
                site_repeats: repeats_request(rank.id(), RepeatsChoice::On, None),
                reduce: reduce_request(rank.id(), ReduceChoice::Fast, None),
                threads: threads_request(rank.id(), ThreadsChoice::Auto, None),
                gradient: gradient_request(rank.id(), GradientChoice::Auto, None),
            };
            negotiate(&rank, &req)
        });
        for (id, c) in caps.iter().enumerate() {
            assert_eq!(c.kernel.value, KernelKind::Scalar, "rank {id}");
            assert_eq!(c.kernel.negotiated, id != 1);
            assert_eq!(c.site_repeats.value, SiteRepeats::On);
            assert!(!c.site_repeats.negotiated);
            assert_eq!(c.reduce.value, ReduceKind::Fast);
        }
    }

    #[test]
    fn forced_slots_ignore_the_gathered_minimum() {
        let caps: Vec<Caps> = World::run(2, |rank| {
            let req = CapabilityRequests {
                // Rank 0 forces Simd while rank 1 advertises Scalar: the
                // forced rank keeps Simd (mixed worlds are a test hook; the
                // sentinel catches them).
                kernel: if rank.id() == 0 {
                    Request::Forced(KernelKind::Simd)
                } else {
                    Request::Forced(KernelKind::Scalar)
                },
                site_repeats: repeats_request(rank.id(), RepeatsChoice::Off, None),
                reduce: reduce_request(
                    rank.id(),
                    ReduceChoice::Fast,
                    Some(&[ReduceKind::Fast, ReduceKind::Reproducible]),
                ),
                threads: threads_request(rank.id(), ThreadsChoice::Auto, None),
                gradient: gradient_request(
                    rank.id(),
                    GradientChoice::Auto,
                    Some(&[GradientMode::On, GradientMode::Off]),
                ),
            };
            negotiate(&rank, &req)
        });
        assert_eq!(caps[0].kernel.value, KernelKind::Simd);
        assert_eq!(caps[1].kernel.value, KernelKind::Scalar);
        assert_eq!(caps[0].reduce.value, ReduceKind::Fast);
        assert_eq!(caps[1].reduce.value, ReduceKind::Reproducible);
        // Forced (override-table) gradient slots likewise keep their value.
        assert_eq!(caps[0].gradient.value, GradientMode::On);
        assert_eq!(caps[1].gradient.value, GradientMode::Off);
    }

    #[test]
    fn negotiated_thread_counts_adopt_the_world_minimum() {
        let caps: Vec<Caps> = World::run(3, |rank| {
            let req = CapabilityRequests {
                kernel: kernel_request(rank.id(), KernelChoice::Scalar, None),
                site_repeats: repeats_request(rank.id(), RepeatsChoice::Off, None),
                reduce: reduce_request(rank.id(), ReduceChoice::Fast, None),
                // Heterogeneous advertisements: 8, 2, 4 — negotiated slots
                // must all land on 2, the only width every rank can run.
                threads: Request::Negotiate {
                    advertise: ThreadCount::new([8, 2, 4][rank.id()]).capability_level(),
                },
                gradient: gradient_request(rank.id(), GradientChoice::Off, None),
            };
            negotiate(&rank, &req)
        });
        for (id, c) in caps.iter().enumerate() {
            assert_eq!(c.threads.value.get(), 2, "rank {id}");
            assert!(c.threads.negotiated);
        }
    }
}
