//! The de-centralized evaluator: the search runs *replicated* on every
//! rank; the only communication is the two `MPI_Allreduce`-equivalents the
//! paper inserts into the likelihood-evaluation and derivative routines
//! (§III-B), plus a 2-double reduction for PSR rate normalization.

use crate::sentinel::{DivergenceFault, FaultComponent, Sentinel};
use exa_comm::{BinnedSum, CommCategory, CommError, Rank, ReduceKind};
use exa_obs::{ReplicaDivergence, StateFingerprint};
use exa_phylo::engine::{Engine, GradientMode};
use exa_phylo::model::gtr::NUM_FREE_RATES;
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::{EdgeId, Tree};
use exa_search::evaluator::{
    apply_global_params, per_edge_full_gradient, BranchMode, CommFailurePanic, Evaluator,
    FullGradient, GlobalState,
};

/// Evaluator back-end for one de-centralized rank.
pub struct DecentralizedEvaluator {
    rank: Rank,
    tree: Tree,
    engine: Engine,
    n_partitions: usize,
    branch_mode: BranchMode,
    /// Replicated model parameters for **all** partitions — every rank
    /// tracks all of them even for partitions it holds no data of, which is
    /// what makes post-failure redistribution trivial.
    alphas: Vec<f64>,
    gtr_rates: Vec<[f64; NUM_FREE_RATES]>,
    last_lnl: Vec<f64>,
    /// Replica-divergence sentinel (disabled unless configured).
    sentinel: Sentinel,
    /// Negotiated collective reduction scheme. Under `Reproducible` every
    /// evaluator collective ships binned superaccumulators instead of
    /// pre-summed f64s, so the reduced bits are invariant under the rank
    /// count and the data split (the elastic-resize prerequisite).
    reduce: ReduceKind,
    /// Negotiated full-tree gradient mode. Under `On` the smoothing pass's
    /// seed derivatives come from one analytic sweep + one fat allreduce
    /// instead of `n_edges` per-edge collectives (bitwise-identical values
    /// either way).
    gradient: GradientMode,
}

impl DecentralizedEvaluator {
    /// Wrap a rank's local engine and the replicated tree.
    pub fn new(
        rank: Rank,
        tree: Tree,
        engine: Engine,
        n_partitions: usize,
        branch_mode: BranchMode,
    ) -> DecentralizedEvaluator {
        let expected = match branch_mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => n_partitions,
        };
        assert_eq!(
            tree.blen_count(),
            expected,
            "tree branch-length arity mismatch"
        );
        let alphas = match engine.rate_kind() {
            RateModelKind::Gamma => vec![1.0; n_partitions],
            RateModelKind::Psr => Vec::new(),
        };
        let gtr_rates = vec![[1.0; NUM_FREE_RATES]; n_partitions];
        DecentralizedEvaluator {
            rank,
            tree,
            engine,
            n_partitions,
            branch_mode,
            alphas,
            gtr_rates,
            last_lnl: vec![0.0; n_partitions],
            sentinel: Sentinel::disabled(),
            reduce: ReduceKind::Fast,
            gradient: GradientMode::Off,
        }
    }

    /// Install the negotiated reduction scheme (default [`ReduceKind::Fast`],
    /// the classic rank-ordered sum).
    pub fn set_reduce(&mut self, reduce: ReduceKind) {
        self.reduce = reduce;
    }

    /// The reduction scheme in force.
    pub fn reduce(&self) -> ReduceKind {
        self.reduce
    }

    /// Install the negotiated full-tree gradient mode (default
    /// [`GradientMode::Off`], the per-edge derivative route).
    pub fn set_gradient(&mut self, gradient: GradientMode) {
        self.gradient = gradient;
    }

    /// The gradient mode in force.
    pub fn gradient(&self) -> GradientMode {
        self.gradient
    }

    /// Enable the replica-divergence sentinel: exchange and compare state
    /// fingerprints every `cadence` evaluator collectives (0 disables).
    /// `fault` optionally schedules a single-bit corruption (testing).
    pub fn set_sentinel(&mut self, cadence: u64, fault: Option<DivergenceFault>) {
        self.sentinel = Sentinel {
            cadence,
            collectives: 0,
            syncs: 0,
            fault,
        };
    }

    /// Fingerprint syncs completed so far.
    pub fn sentinel_syncs(&self) -> u64 {
        self.sentinel.syncs
    }

    /// The communicator handle.
    pub fn rank(&self) -> &Rank {
        &self.rank
    }

    /// The local engine (work counters, memory accounting).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Replace the local engine after post-failure redistribution, pushing
    /// the replicated model parameters into the fresh local slices. PSR
    /// per-site rates are data-local and reset to 1; the next model-
    /// optimization round re-fits them (documented recovery semantics).
    pub fn replace_engine(&mut self, engine: Engine) {
        self.engine = engine;
        let state = self.snapshot();
        apply_global_params(&mut self.engine, &state);
        self.tree.invalidate_all();
    }

    fn comm_ok<T>(&self, r: Result<T, CommError>) -> T {
        match r {
            Ok(v) => v,
            Err(CommError::RanksFailed(set)) => std::panic::panic_any(CommFailurePanic {
                failed_ranks: set.into_iter().collect(),
            }),
        }
    }

    /// Sentinel hook, called after every evaluator collective. Because all
    /// replicas execute the identical collective sequence, their counters
    /// advance in lock-step and every rank reaches a sync at the same
    /// point — the fingerprint allgather is itself a collective and needs
    /// this alignment.
    fn after_collective(&mut self) {
        let sync = self.sentinel.tick();
        if let Some(f) = self.sentinel.due_fault(self.rank.id()) {
            self.inject(f.component);
        }
        if !sync {
            return;
        }
        self.sync_fingerprints();
    }

    /// One fingerprint sync at evaluator setup, before the search's first
    /// collective. Most capability mismatches are benign until their first
    /// *differing* collective, but a mixed gradient-mode world runs
    /// different collective **sequences** — one fat reduction vs one per
    /// edge — and the very first smoothing collective of the run would
    /// desynchronize the world (a length-mismatch panic deep in the comm
    /// layer, or a deadlock) before any post-collective sync could fire.
    /// Syncing once up front turns that crash into the sentinel's ordinary
    /// minority-report diagnostic at sync #1. No-op while disabled.
    pub fn initial_sentinel_sync(&mut self) {
        if self.sentinel.cadence == 0 {
            return;
        }
        self.sync_fingerprints();
    }

    /// The sync body: allgather state fingerprints, compare live replicas,
    /// panic with a [`ReplicaDivergence`] on every rank when a minority
    /// disagrees.
    fn sync_fingerprints(&mut self) {
        self.sentinel.syncs += 1;
        let fp = self.state_fingerprint();
        let r = self
            .rank
            .allgather_bytes(fp.to_bytes().to_vec(), CommCategory::Control);
        let blobs = self.comm_ok(r);
        // Failed ranks contribute empty slots; compare only live replicas,
        // remembering their true rank ids.
        let mut ids = Vec::new();
        let mut fps = Vec::new();
        for (rank_id, blob) in blobs.iter().enumerate() {
            if let Some(fp) = StateFingerprint::from_bytes(blob) {
                ids.push(rank_id);
                fps.push(fp);
            }
        }
        if let Some((minority, components)) = exa_obs::check_agreement(&fps) {
            let diagnostic = ReplicaDivergence {
                collective_index: self.sentinel.collectives,
                sync_index: self.sentinel.syncs,
                minority_ranks: minority.into_iter().map(|i| ids[i]).collect(),
                components,
            };
            // Every rank computed the identical verdict from the identical
            // allgather result, so every rank panics *here*, simultaneously
            // — no rank is left parked inside a collective and the world
            // unwinds instead of deadlocking.
            std::panic::panic_any(diagnostic);
        }
    }

    /// Apply a scheduled single-bit corruption to this rank's replica.
    fn inject(&mut self, component: FaultComponent) {
        match component {
            FaultComponent::Alpha if !self.alphas.is_empty() => {
                let mut a = self.alphas.clone();
                a[0] = f64::from_bits(a[0].to_bits() ^ 1);
                self.set_alphas(&a);
            }
            // Under PSR there is no α; corrupt a GTR rate instead (still
            // the ModelParams fingerprint component).
            FaultComponent::Alpha => {
                let mut r = self.gtr_rate(0);
                r[0] = f64::from_bits(r[0].to_bits() ^ 1);
                self.set_gtr_rate(0, &r);
            }
            // An LSB mantissa flip preserves the magnitude, so the result
            // stays inside the optimizer's branch-length bounds.
            FaultComponent::BranchLength => {
                let old = self.tree.edge(0).lengths[0];
                self.tree
                    .set_length(0, 0, f64::from_bits(old.to_bits() ^ 1));
            }
        }
    }
}

impl Evaluator for DecentralizedEvaluator {
    fn n_taxa(&self) -> usize {
        self.tree.n_taxa()
    }

    fn n_partitions(&self) -> usize {
        self.n_partitions
    }

    fn branch_mode(&self) -> BranchMode {
        self.branch_mode
    }

    fn rate_kind(&self) -> RateModelKind {
        self.engine.rate_kind()
    }

    fn tree(&self) -> &Tree {
        &self.tree
    }

    fn tree_mut(&mut self) -> &mut Tree {
        &mut self.tree
    }

    fn evaluate(&mut self, edge: EdgeId) -> f64 {
        // Local descriptor — never broadcast (the whole point of the
        // de-centralized scheme) — and ONE allreduce of a single double:
        // the overall log-likelihood is all the replicas need to stay in
        // lock-step (§III-B). Reproducible mode ships one superaccumulator
        // holding the per-site addends instead of the pre-summed double.
        let d = self.tree.traversal_descriptor(edge);
        self.engine.execute(&d);
        let total = match self.reduce {
            ReduceKind::Fast => {
                let per_local = self.engine.evaluate(&d);
                let mut buf = vec![per_local.iter().sum::<f64>()];
                let r = self
                    .rank
                    .allreduce_sum(&mut buf, CommCategory::SiteLikelihoods);
                self.comm_ok(r);
                buf[0]
            }
            ReduceKind::Reproducible => {
                let mut bin = BinnedSum::new();
                self.engine
                    .evaluate_with_terms(&d, &mut |_, terms| bin.add_slice(terms));
                let r = self
                    .rank
                    .collective(CommCategory::SiteLikelihoods)
                    .allreduce_binned(vec![bin]);
                self.comm_ok(r)[0]
            }
        };
        self.after_collective();
        total
    }

    fn evaluate_partitioned(&mut self, edge: EdgeId) -> f64 {
        // Model optimization needs the per-partition vector: allreduce of
        // p doubles (p superaccumulators under reproducible mode).
        let d = self.tree.traversal_descriptor(edge);
        self.engine.execute(&d);
        self.last_lnl = match self.reduce {
            ReduceKind::Fast => {
                let per_local = self.engine.evaluate(&d);
                let mut buf = vec![0.0; self.n_partitions];
                for (local, global) in self.engine.global_indices().into_iter().enumerate() {
                    buf[global] += per_local[local];
                }
                let r = self
                    .rank
                    .allreduce_sum(&mut buf, CommCategory::SiteLikelihoods);
                self.comm_ok(r);
                buf
            }
            ReduceKind::Reproducible => {
                let globals = self.engine.global_indices();
                let mut bins = vec![BinnedSum::new(); self.n_partitions];
                self.engine.evaluate_with_terms(&d, &mut |local, terms| {
                    bins[globals[local]].add_slice(terms)
                });
                let r = self
                    .rank
                    .collective(CommCategory::SiteLikelihoods)
                    .allreduce_binned(bins);
                self.comm_ok(r)
            }
        };
        self.after_collective();
        // Fixed-order local sum of identical inputs → identical totals.
        self.last_lnl.iter().sum()
    }

    fn last_per_partition(&self) -> &[f64] {
        &self.last_lnl
    }

    fn prepare_derivatives(&mut self, edge: EdgeId) {
        let d = self.tree.traversal_descriptor(edge);
        self.engine.execute(&d);
        self.engine.prepare_derivatives(&d);
    }

    fn derivatives(&mut self, lengths: &[f64]) -> (Vec<f64>, Vec<f64>) {
        if self.reduce == ReduceKind::Reproducible {
            // The layout mirrors the fast path ([d1 | d2], joint = 1 slot
            // each, -M = p slots each), but every slot is a superaccumulator
            // fed with the raw per-site addends.
            let p = match self.branch_mode {
                BranchMode::Joint => 1,
                BranchMode::PerPartition => self.n_partitions,
            };
            let globals = self.engine.global_indices();
            let mut bins = vec![BinnedSum::new(); 2 * p];
            self.engine
                .derivatives_with_terms(lengths, &mut |local, t1, t2| {
                    let slot = if p == 1 { 0 } else { globals[local] };
                    bins[slot].add_slice(t1);
                    bins[p + slot].add_slice(t2);
                });
            let r = self
                .rank
                .collective(CommCategory::BranchLength)
                .allreduce_binned(bins);
            let buf = self.comm_ok(r);
            self.after_collective();
            return (buf[..p].to_vec(), buf[p..].to_vec());
        }
        let (d1, d2) = self.engine.derivatives(lengths);
        match self.branch_mode {
            BranchMode::Joint => {
                // The paper's second allreduce: 2 doubles.
                let mut buf = vec![d1.iter().sum::<f64>(), d2.iter().sum::<f64>()];
                let r = self
                    .rank
                    .allreduce_sum(&mut buf, CommCategory::BranchLength);
                self.comm_ok(r);
                self.after_collective();
                (vec![buf[0]], vec![buf[1]])
            }
            BranchMode::PerPartition => {
                // Under -M the message grows to 2p doubles (§IV-D).
                let p = self.n_partitions;
                let mut buf = vec![0.0; 2 * p];
                for (local, global) in self.engine.global_indices().into_iter().enumerate() {
                    buf[global] += d1[local];
                    buf[p + global] += d2[local];
                }
                let r = self
                    .rank
                    .allreduce_sum(&mut buf, CommCategory::BranchLength);
                self.comm_ok(r);
                self.after_collective();
                (buf[..p].to_vec(), buf[p..].to_vec())
            }
        }
    }

    fn full_gradient(&mut self) -> FullGradient {
        if self.gradient == GradientMode::Off {
            return per_edge_full_gradient(self);
        }
        // One analytic sweep over the whole tree, then ONE fat allreduce of
        // `2·p·n_edges` values replacing the `n_edges` per-edge collectives.
        // Each fat slot receives exactly the per-rank contributions (fast)
        // or per-site addends (reproducible) its per-edge counterpart would,
        // so the reduced bits are identical to the per-edge route's.
        let d = self.tree.traversal_descriptor(0);
        self.engine.execute(&d);
        let plan = self.tree.gradient_plan(0);
        let p = match self.branch_mode {
            BranchMode::Joint => 1,
            BranchMode::PerPartition => self.n_partitions,
        };
        let n_edges = plan.n_edges;
        let buf = match self.reduce {
            ReduceKind::Fast => {
                let sweep = self.engine.edge_gradient(&plan);
                let mut buf = vec![0.0; 2 * p * n_edges];
                match self.branch_mode {
                    BranchMode::Joint => {
                        // Same local-partition summation order as
                        // `derivatives`.
                        for e in 0..n_edges {
                            buf[e] = sweep.iter().map(|part| part[e].0).sum();
                            buf[n_edges + e] = sweep.iter().map(|part| part[e].1).sum();
                        }
                    }
                    BranchMode::PerPartition => {
                        for (local, global) in self.engine.global_indices().into_iter().enumerate()
                        {
                            for (e, &(g1, g2)) in sweep[local].iter().enumerate() {
                                buf[e * p + global] += g1;
                                buf[(n_edges + e) * p + global] += g2;
                            }
                        }
                    }
                }
                let r = self
                    .rank
                    .allreduce_sum(&mut buf, CommCategory::BranchLength);
                self.comm_ok(r);
                buf
            }
            ReduceKind::Reproducible => {
                let globals = self.engine.global_indices();
                let mut bins = vec![BinnedSum::new(); 2 * p * n_edges];
                self.engine
                    .edge_gradient_with_terms(&plan, &mut |local, edge, t1, t2| {
                        let slot = if p == 1 { 0 } else { globals[local] };
                        bins[edge * p + slot].add_slice(t1);
                        bins[(n_edges + edge) * p + slot].add_slice(t2);
                    });
                let r = self
                    .rank
                    .collective(CommCategory::BranchLength)
                    .allreduce_binned(bins);
                self.comm_ok(r)
            }
        };
        self.after_collective();
        let d1 = (0..n_edges)
            .map(|e| buf[e * p..(e + 1) * p].to_vec())
            .collect();
        let d2 = (0..n_edges)
            .map(|e| buf[(n_edges + e) * p..][..p].to_vec())
            .collect();
        FullGradient {
            d1,
            d2,
            collectives: 1,
            swept: true,
        }
    }

    fn alphas(&self) -> Vec<f64> {
        self.alphas.clone()
    }

    fn set_alphas(&mut self, alphas: &[f64]) {
        // NO communication: every rank executes this call with identical
        // arguments (derived from identical reduced likelihoods).
        assert_eq!(alphas.len(), self.n_partitions);
        self.alphas = alphas.to_vec();
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_alpha(local, alphas[global]);
        }
        self.tree.invalidate_all();
    }

    fn gtr_rate(&self, rate_index: usize) -> Vec<f64> {
        self.gtr_rates.iter().map(|r| r[rate_index]).collect()
    }

    fn set_gtr_rate(&mut self, rate_index: usize, values: &[f64]) {
        assert_eq!(values.len(), self.n_partitions);
        for (g, &v) in values.iter().enumerate() {
            self.gtr_rates[g][rate_index] = v;
        }
        for (local, global) in self.engine.global_indices().into_iter().enumerate() {
            self.engine.set_gtr_rate(local, rate_index, values[global]);
        }
        self.tree.invalidate_all();
    }

    fn optimize_site_rates(&mut self) {
        if self.engine.rate_kind() != RateModelKind::Psr {
            return;
        }
        let d = self.tree.full_traversal_descriptor(0);
        self.engine.execute(&d);
        // Per-site rates are optimized on local data only; the global
        // normalization needs a single 2-double reduction (the paper's
        // "additional MPI calls to handle the CAT model").
        let buf = match self.reduce {
            ReduceKind::Fast => {
                let (num, den) = self.engine.optimize_site_rates(&d);
                let mut buf = vec![num, den];
                let r = self.rank.allreduce_sum(&mut buf, CommCategory::ModelParams);
                self.comm_ok(r);
                buf
            }
            ReduceKind::Reproducible => {
                let mut bins = vec![BinnedSum::new(); 2];
                self.engine
                    .optimize_site_rates_with_terms(&d, &mut |_, tn, td| {
                        bins[0].add_slice(tn);
                        bins[1].add_slice(td);
                    });
                let r = self
                    .rank
                    .collective(CommCategory::ModelParams)
                    .allreduce_binned(bins);
                self.comm_ok(r)
            }
        };
        self.after_collective();
        if buf[0] > 0.0 {
            self.engine.finalize_site_rates(buf[1] / buf[0]);
        }
        self.tree.invalidate_all();
    }

    fn snapshot(&self) -> GlobalState {
        GlobalState {
            tree: self.tree.clone(),
            alphas: self.alphas.clone(),
            gtr_rates: self.gtr_rates.clone(),
        }
    }

    fn restore(&mut self, state: &GlobalState) {
        self.tree = state.tree.clone();
        self.alphas = state.alphas.clone();
        self.gtr_rates = state.gtr_rates.clone();
        apply_global_params(&mut self.engine, state);
        self.tree.invalidate_all();
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn backend_fingerprint(&self) -> u64 {
        exa_search::kernel_fingerprint(
            self.engine.kernel_kind(),
            self.engine.site_repeats(),
            self.reduce.label(),
            self.engine.threads(),
            self.gradient,
        )
    }
}
