//! `examl` — command-line front end for de-centralized maximum-likelihood
//! inference, mirroring the original ExaML tool's interface: alignment +
//! optional partition file in, ML tree out, with `-Q` (monolithic data
//! distribution), `-M` (per-partition branch lengths), Γ/PSR model choice,
//! checkpoint/restart and configurable rank counts.
//!
//! ```text
//! examl --phylip data.phy [--partitions parts.txt] [--ranks 4]
//!       [--model GAMMA|PSR] [-Q] [-M] [--seed 42]
//!       [--starting-tree random|parsimony|<file.nwk>]
//!       [--iterations 10] [--radius 5] [--epsilon 0.1]
//!       [--checkpoint ck.json [--checkpoint-every 1]] [--resume ck.json]
//!       [--binary-out data.exml | --binary-in data.exml]
//!       [--out-tree result.nwk] [--trace-out trace.json] [--quiet]
//! ```
//!
//! Every run records an `exa-obs` trace of parallel regions, kernels and
//! collectives; the end-of-run summary table is printed to stderr, and
//! `--trace-out` additionally writes the full trace in Chrome
//! `trace_event` JSON (openable in Perfetto or `chrome://tracing`).

use exa_bio::partition::{parse_partition_file, PartitionScheme};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::CommCategory;
use exa_phylo::model::rates::RateModelKind;
use exa_search::{BranchMode, SearchConfig, StartingTree};
use examl_core::{DivergenceFault, FaultComponent, InferenceConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    phylip: Option<PathBuf>,
    fasta: Option<PathBuf>,
    binary_in: Option<PathBuf>,
    binary_out: Option<PathBuf>,
    partitions: Option<PathBuf>,
    ranks: usize,
    model: RateModelKind,
    mps: bool,
    per_partition_branches: bool,
    seed: u64,
    starting_tree: String,
    iterations: usize,
    radius: usize,
    epsilon: f64,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    resume: Option<PathBuf>,
    out_tree: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    quiet: bool,
    bootstrap: usize,
    ascii: bool,
    stats_only: bool,
    verify_replicas: u64,
    health_out: Option<PathBuf>,
    inject_divergence: Option<DivergenceFault>,
}

fn usage() -> ! {
    eprintln!(
        "usage: examl (--phylip FILE | --fasta FILE | --binary-in FILE) [options]\n\
         options:\n\
           --partitions FILE      RAxML-style partition file (DNA, name = a-b)\n\
           --ranks N              number of ranks (default 4)\n\
           --model GAMMA|PSR      rate heterogeneity model (default GAMMA)\n\
           -Q                     monolithic per-partition data distribution (MPS)\n\
           -M                     per-partition branch lengths\n\
           --seed N               starting-tree seed (default 42)\n\
           --starting-tree S      random | parsimony | <newick file> (default parsimony)\n\
           --iterations N         max search iterations (default 10)\n\
           --radius N             SPR rearrangement radius (default 5)\n\
           --epsilon X            convergence threshold (default 0.1)\n\
           --checkpoint FILE      write checkpoints to FILE\n\
           --checkpoint-every N   checkpoint interval in iterations (default 1)\n\
           --resume FILE          resume from a checkpoint\n\
           --binary-out FILE      write the compressed alignment in binary form and exit\n\
           --out-tree FILE        write the final Newick tree to FILE\n\
           --trace-out FILE       write a Chrome trace_event JSON trace to FILE\n\
                                  (under --bootstrap: one trace per replicate, FILE.repN.json)\n\
           --bootstrap N          run N bootstrap replicates and annotate support\n\
           --verify-replicas N    compare replica state fingerprints every N collectives\n\
           --health-out FILE      append one heartbeat JSON line per iteration to FILE\n\
           --inject-divergence RANK:COLLECTIVE:alpha|blen\n\
                                  flip one state bit on RANK after COLLECTIVE collectives\n\
                                  (sentinel fault-injection testing)\n\
           --ascii                also print an ASCII cladogram\n\
           --stats                print alignment statistics and memory estimates, then exit\n\
           --quiet                suppress progress output"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        phylip: None,
        fasta: None,
        binary_in: None,
        binary_out: None,
        partitions: None,
        ranks: 4,
        model: RateModelKind::Gamma,
        mps: false,
        per_partition_branches: false,
        seed: 42,
        starting_tree: "parsimony".into(),
        iterations: 10,
        radius: 5,
        epsilon: 0.1,
        checkpoint: None,
        checkpoint_every: 1,
        resume: None,
        out_tree: None,
        trace_out: None,
        quiet: false,
        bootstrap: 0,
        ascii: false,
        stats_only: false,
        verify_replicas: 0,
        health_out: None,
        inject_divergence: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--phylip" => args.phylip = Some(value("--phylip").into()),
            "--fasta" => args.fasta = Some(value("--fasta").into()),
            "--binary-in" => args.binary_in = Some(value("--binary-in").into()),
            "--binary-out" => args.binary_out = Some(value("--binary-out").into()),
            "--partitions" => args.partitions = Some(value("--partitions").into()),
            "--ranks" => args.ranks = value("--ranks").parse().unwrap_or_else(|_| usage()),
            "--model" => {
                args.model = match value("--model").to_uppercase().as_str() {
                    "GAMMA" => RateModelKind::Gamma,
                    "PSR" | "CAT" => RateModelKind::Psr,
                    other => {
                        eprintln!("unknown model {other:?} (use GAMMA or PSR)");
                        usage()
                    }
                }
            }
            "-Q" => args.mps = true,
            "-M" => args.per_partition_branches = true,
            "--seed" => args.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--starting-tree" => args.starting_tree = value("--starting-tree"),
            "--iterations" => {
                args.iterations = value("--iterations").parse().unwrap_or_else(|_| usage())
            }
            "--radius" => args.radius = value("--radius").parse().unwrap_or_else(|_| usage()),
            "--epsilon" => args.epsilon = value("--epsilon").parse().unwrap_or_else(|_| usage()),
            "--checkpoint" => args.checkpoint = Some(value("--checkpoint").into()),
            "--checkpoint-every" => {
                args.checkpoint_every = value("--checkpoint-every")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--resume" => args.resume = Some(value("--resume").into()),
            "--out-tree" => args.out_tree = Some(value("--out-tree").into()),
            "--trace-out" => args.trace_out = Some(value("--trace-out").into()),
            "--bootstrap" => {
                args.bootstrap = value("--bootstrap").parse().unwrap_or_else(|_| usage())
            }
            "--verify-replicas" => {
                args.verify_replicas = value("--verify-replicas")
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--health-out" => args.health_out = Some(value("--health-out").into()),
            "--inject-divergence" => {
                args.inject_divergence = Some(
                    parse_divergence_fault(&value("--inject-divergence")).unwrap_or_else(|| {
                        eprintln!("--inject-divergence expects RANK:COLLECTIVE:alpha|blen");
                        usage()
                    }),
                )
            }
            "--ascii" => args.ascii = true,
            "--stats" => args.stats_only = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    args
}

/// Parse `RANK:COLLECTIVE:alpha|blen` into a [`DivergenceFault`].
fn parse_divergence_fault(spec: &str) -> Option<DivergenceFault> {
    let mut parts = spec.splitn(3, ':');
    let rank = parts.next()?.parse().ok()?;
    let after_collectives = parts.next()?.parse().ok()?;
    let component = FaultComponent::parse(parts.next()?)?;
    Some(DivergenceFault {
        rank,
        after_collectives,
        component,
    })
}

fn load_alignment(args: &Args) -> Result<CompressedAlignment, String> {
    if let Some(path) = &args.binary_in {
        return exa_bio::binary::read_file(path).map_err(|e| e.to_string());
    }
    let alignment = if let Some(path) = &args.phylip {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        exa_bio::phylip::parse_phylip_auto(&text).map_err(|e| e.to_string())?
    } else if let Some(path) = &args.fasta {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        exa_bio::fasta::parse_fasta(&text).map_err(|e| e.to_string())?
    } else {
        return Err("no input alignment (use --phylip, --fasta or --binary-in)".into());
    };
    let scheme = match &args.partitions {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            parse_partition_file(&text, alignment.n_sites()).map_err(|e| e.to_string())?
        }
        None => PartitionScheme::unpartitioned(alignment.n_sites()),
    };
    Ok(CompressedAlignment::build(&alignment, &scheme))
}

fn main() -> ExitCode {
    let args = parse_args();
    let compressed = match load_alignment(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!(
            "alignment: {} taxa, {} partitions, {} unique patterns",
            compressed.n_taxa(),
            compressed.n_partitions(),
            compressed.total_patterns()
        );
    }

    if args.stats_only {
        // The ExaML-style pre-run advisory: pattern counts and the CLV
        // memory requirement under each rate model (PSR = 1/4 of Γ, §IV-C).
        println!("taxa                 : {}", compressed.n_taxa());
        println!("partitions           : {}", compressed.n_partitions());
        println!("sites                : {}", compressed.total_sites());
        println!("unique patterns      : {}", compressed.total_patterns());
        let gamma = exa_bio::stats::clv_memory_bytes(&compressed, 4);
        let psr = exa_bio::stats::clv_memory_bytes(&compressed, 1);
        println!(
            "CLV memory (GAMMA)   : {:.1} MiB",
            gamma as f64 / (1 << 20) as f64
        );
        println!(
            "CLV memory (PSR)     : {:.1} MiB",
            psr as f64 / (1 << 20) as f64
        );
        for (i, p) in compressed.partitions.iter().enumerate() {
            let gaps = exa_bio::stats::gap_fraction(p);
            let freqs = exa_bio::stats::empirical_frequencies(p);
            println!(
                "  partition {i:>4} {:<12} {:>6} patterns, {:>5.1}% gaps, pi = [{:.3} {:.3} {:.3} {:.3}]",
                p.name,
                p.n_patterns(),
                100.0 * gaps,
                freqs[0],
                freqs[1],
                freqs[2],
                freqs[3]
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.binary_out {
        if let Err(e) = exa_bio::binary::write_file(path, &compressed) {
            eprintln!("error writing binary alignment: {e}");
            return ExitCode::FAILURE;
        }
        if !args.quiet {
            eprintln!("wrote binary alignment to {}", path.display());
        }
        return ExitCode::SUCCESS;
    }

    let starting_tree = match args.starting_tree.as_str() {
        "random" => StartingTree::Random,
        "parsimony" => StartingTree::Parsimony,
        path => match std::fs::read_to_string(path) {
            Ok(text) => StartingTree::Newick(text),
            Err(e) => {
                eprintln!("cannot read starting tree {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut cfg = InferenceConfig::new(args.ranks);
    cfg.rate_model = args.model;
    cfg.branch_mode = if args.per_partition_branches {
        BranchMode::PerPartition
    } else {
        BranchMode::Joint
    };
    cfg.strategy = if args.mps {
        exa_sched::Strategy::MonolithicLpt
    } else {
        exa_sched::Strategy::Cyclic
    };
    cfg.search = SearchConfig {
        max_iterations: args.iterations,
        spr_radius: args.radius,
        epsilon: args.epsilon,
        ..SearchConfig::default()
    };
    cfg.seed = args.seed;
    cfg.starting_tree = starting_tree;
    cfg.checkpoint_path = args.checkpoint.clone();
    cfg.checkpoint_every = args.checkpoint_every;
    cfg.resume_from = args.resume.clone();
    cfg.verify_replicas = args.verify_replicas;
    cfg.divergence_fault = args.inject_divergence;
    cfg.health_out = args.health_out.clone();

    let start = std::time::Instant::now();
    let (out, annotated, trace) = if args.bootstrap > 0 {
        let bs_cfg = examl_core::bootstrap::BootstrapConfig {
            replicates: args.bootstrap,
            seed: args.seed.wrapping_add(0xB00),
            base: cfg.clone(),
        };
        let bs = match examl_core::bootstrap::run_bootstrap_traced(
            &compressed,
            &bs_cfg,
            args.trace_out.as_deref(),
        ) {
            Ok(bs) => bs,
            Err(e) => {
                eprintln!("error writing trace: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !args.quiet {
            let mean: f64 = bs.support.values().sum::<f64>() / bs.support.len().max(1) as f64;
            eprintln!(
                "bootstrap    : {} replicates, mean split support {:.1}%",
                args.bootstrap, mean
            );
            if let Some(path) = &args.trace_out {
                eprintln!(
                    "wrote traces to {} (+ per-replicate {})",
                    path.display(),
                    examl_core::bootstrap::replicate_trace_path(path, 0).display()
                );
            }
        }
        (bs.best, Some(bs.annotated_newick), None)
    } else {
        let recorder = exa_obs::Recorder::new(cfg.n_ranks);
        let out = match examl_core::run_decentralized_checked(&compressed, &cfg, Some(&recorder)) {
            Ok(out) => out,
            Err(d) => {
                // The sentinel tripped: the structured diagnostic names the
                // first divergent collective, the minority ranks and the
                // differing state component(s).
                eprintln!("error: {d}");
                return ExitCode::FAILURE;
            }
        };
        (out, None, Some(exa_obs::Recorder::finish(recorder)))
    };
    let elapsed = start.elapsed();

    if !args.quiet {
        eprintln!("final lnL    : {:.6}", out.result.lnl);
        eprintln!(
            "iterations   : {} (converged: {})",
            out.result.iterations, out.result.converged
        );
        eprintln!("SPR moves    : {}", out.result.spr_moves);
        eprintln!("wall time    : {elapsed:.2?}");
        eprintln!(
            "comm         : {} regions, {} bytes ({} B likelihood allreduces, {} B derivative allreduces)",
            out.comm_stats.total_regions(),
            out.comm_stats.total_bytes(),
            out.comm_stats.get(CommCategory::SiteLikelihoods).bytes,
            out.comm_stats.get(CommCategory::BranchLength).bytes,
        );
        // Analytic wall-time projection on the paper's reference cluster
        // (AMD Magny-Cours nodes), from this run's measured work + traffic.
        let spec = exa_comm::cluster::ClusterSpec::magny_cours(args.ranks.div_ceil(48).max(1));
        let profile = exa_comm::cluster::RunProfile::from_stats(
            &out.comm_stats,
            out.work.total(),
            out.mem_bytes,
        );
        let modeled = exa_comm::cluster::modeled_time(&spec, &profile);
        eprintln!(
            "modeled time : {:.3} s on {} nodes ({:.3} s compute, {:.3} s comm)",
            modeled.total_s, spec.nodes, modeled.compute_s, modeled.comm_s
        );
    }
    if let Some(trace) = &trace {
        if !args.quiet {
            eprint!("{}", exa_obs::summary_table(&trace.aggregate()));
        }
        if let Some(path) = &args.trace_out {
            if let Err(e) = exa_obs::write_chrome_trace(path, trace) {
                eprintln!("error writing trace: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("wrote trace to {}", path.display());
            }
        }
    }
    if !args.quiet {
        // End-of-run health report: sentinel verdict, measured-vs-predicted
        // load imbalance, heartbeat count. The heartbeat *file* is written
        // regardless of --quiet; only this console rendering is suppressed.
        let measured = trace.as_ref().and_then(|t| {
            let ratio = exa_obs::imbalance_ratio(&t.kernel_profile().rank_totals());
            (ratio > 0.0).then_some(ratio)
        });
        let assignments = exa_sched::distribute(&compressed, args.ranks, cfg.strategy);
        let predicted = exa_sched::balance::balance_stats(&compressed, &assignments).imbalance;
        let heartbeats = args
            .health_out
            .as_ref()
            .and_then(|p| std::fs::read_to_string(p).ok())
            .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count() as u64)
            .unwrap_or(0);
        let report = exa_obs::HealthReport {
            sentinel_cadence: cfg.verify_replicas,
            sentinel_syncs: out.sentinel_syncs,
            divergence: None,
            measured_imbalance: measured,
            predicted_imbalance: Some(predicted),
            heartbeats,
        };
        eprint!("{}", report.render());
    }
    if args.ascii {
        let names: Vec<String> = compressed.taxa.clone();
        eprintln!("{}", out.state.tree.to_ascii(&names));
    }
    let final_tree = annotated.unwrap_or_else(|| out.tree_newick.clone());
    match &args.out_tree {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{final_tree}\n")) {
                eprintln!("error writing tree: {e}");
                return ExitCode::FAILURE;
            }
            if !args.quiet {
                eprintln!("wrote tree to {}", path.display());
            }
        }
        None => println!("{final_tree}"),
    }
    ExitCode::SUCCESS
}
