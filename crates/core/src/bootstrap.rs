//! Non-parametric bootstrap analysis.
//!
//! The production pipelines ExaML was built for (1KITE, the bird
//! phylogenomics project, §I) pair every ML tree with bootstrap support:
//! alignment columns are resampled with replacement, a tree is inferred per
//! replicate, and each bipartition of the best tree is annotated with the
//! fraction of replicates containing it.
//!
//! Under pattern compression, resampling columns is a multinomial redraw of
//! the per-pattern *weights* within each partition (total sites per
//! partition preserved) — no sequence data moves, which is why bootstrapping
//! composes cheaply with the binary alignment format and the de-centralized
//! driver.

use crate::checkpoint::{self, BootstrapProgress, Checkpoint, CheckpointHeader, CheckpointPayload};
use crate::run::RunError;
use crate::{decentralized_impl, InferenceConfig, RunOutput};
use exa_bio::patterns::{CompressedAlignment, CompressedPartition};
use exa_comm::{CommStats, ReduceChoice, ReduceKind};
use exa_phylo::engine::{KernelChoice, KernelKind, RepeatsChoice, SiteRepeats, WorkCounters};
use exa_phylo::tree::bipartitions::bipartitions;
use exa_search::evaluator::SearchSnapshot;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Bootstrap configuration.
#[derive(Debug, Clone)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates.
    pub replicates: usize,
    /// Master seed; replicate `i` uses `seed + i` for both resampling and
    /// its starting tree.
    pub seed: u64,
    /// Inference settings shared by the best-tree run and every replicate.
    pub base: InferenceConfig,
}

/// Result of a full bootstrap analysis.
#[derive(Debug)]
pub struct BootstrapOutput {
    /// The ML run on the original alignment.
    pub best: RunOutput,
    /// Per-replicate final log-likelihoods.
    pub replicate_lnls: Vec<f64>,
    /// Support (% of replicates) per canonical bipartition of the best
    /// tree.
    pub support: HashMap<Vec<usize>, f64>,
    /// Best tree with support labels, Newick.
    pub annotated_newick: String,
}

/// Multinomially resample the pattern weights of one partition (total site
/// count preserved). Patterns drawn zero times are dropped.
fn resample_partition(part: &CompressedPartition, rng: &mut StdRng) -> CompressedPartition {
    let n_patterns = part.n_patterns();
    let total_sites: u32 = part.weights.iter().sum();
    // Draw `total_sites` columns according to the original weights.
    let cumulative: Vec<u64> = part
        .weights
        .iter()
        .scan(0u64, |acc, &w| {
            *acc += w as u64;
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().expect("non-empty partition") as f64;
    let mut counts = vec![0u32; n_patterns];
    for _ in 0..total_sites {
        let x = rng.gen_range(0.0..total) as u64;
        let idx = cumulative.partition_point(|&c| c <= x);
        counts[idx.min(n_patterns - 1)] += 1;
    }
    // Keep only drawn patterns.
    let kept: Vec<usize> = (0..n_patterns).filter(|&i| counts[i] > 0).collect();
    let mut sub = part.select_patterns(&kept);
    for (slot, &i) in sub.weights.iter_mut().zip(&kept) {
        *slot = counts[i];
    }
    sub
}

/// Resample a whole alignment (per-partition, preserving each partition's
/// site total).
pub fn resample_alignment(aln: &CompressedAlignment, seed: u64) -> CompressedAlignment {
    let mut rng = StdRng::seed_from_u64(seed);
    CompressedAlignment {
        taxa: aln.taxa.clone(),
        partitions: aln
            .partitions
            .iter()
            .map(|p| resample_partition(p, &mut rng))
            .collect(),
    }
}

/// Derive the trace path of bootstrap replicate `replicate` from the base
/// `--trace-out` path: `trace.json` → `trace.rep3.json` (the extension-less
/// case appends `.rep3`).
pub fn replicate_trace_path(path: &Path, replicate: usize) -> PathBuf {
    match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => path.with_extension(format!("rep{replicate}.{ext}")),
        None => {
            let mut p = path.as_os_str().to_owned();
            p.push(format!(".rep{replicate}"));
            PathBuf::from(p)
        }
    }
}

/// Run the best-tree search plus `replicates` bootstrap searches and
/// compute bipartition support.
#[deprecated(
    since = "0.4.0",
    note = "use `RunConfig::new(n_ranks).bootstrap(replicates, seed).run(&aln)` instead"
)]
pub fn run_bootstrap(aln: &CompressedAlignment, cfg: &BootstrapConfig) -> BootstrapOutput {
    bootstrap_impl(aln, cfg, None, None).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_bootstrap`] with optional tracing: when `trace_out` is set, the
/// best-tree run's Chrome trace goes to that path and each replicate's to
/// [`replicate_trace_path`] of it.
#[deprecated(
    since = "0.4.0",
    note = "use `RunConfig::new(n_ranks).bootstrap(replicates, seed).run(&aln)` instead"
)]
pub fn run_bootstrap_traced(
    aln: &CompressedAlignment,
    cfg: &BootstrapConfig,
    trace_out: Option<&Path>,
) -> std::io::Result<BootstrapOutput> {
    bootstrap_impl(aln, cfg, trace_out, None).map_err(|e| match e {
        RunError::Io(io) => io,
        other => panic!("{other}"),
    })
}

/// Resolve the informational kernel label for a reconstructed (resumed)
/// bootstrap best run without a live world to negotiate on: forced choices
/// resolve directly, `Auto` resolves to this host's local capability (every
/// rank of an in-process world shares the host, so this matches what the
/// original negotiation produced).
fn local_kernel(choice: KernelChoice) -> KernelKind {
    match choice {
        KernelChoice::Scalar => KernelKind::Scalar,
        KernelChoice::Simd => KernelKind::Simd,
        KernelChoice::Auto => KernelKind::from_capability_level(choice.capability_level()),
    }
}

/// [`local_kernel`]'s analogue for subtree-repeat compression.
fn local_site_repeats(choice: RepeatsChoice) -> SiteRepeats {
    match choice {
        RepeatsChoice::On => SiteRepeats::On,
        RepeatsChoice::Off => SiteRepeats::Off,
        RepeatsChoice::Auto => SiteRepeats::from_capability_level(choice.capability_level()),
    }
}

/// [`local_kernel`]'s analogue for the collective reduction mode.
fn local_reduce(choice: ReduceChoice) -> ReduceKind {
    match choice {
        ReduceChoice::Fast => ReduceKind::Fast,
        ReduceChoice::Reproducible => ReduceKind::Reproducible,
        ReduceChoice::Auto => ReduceKind::from_capability_level(choice.advertised_level()),
    }
}

/// The bootstrap driver behind [`crate::RunConfig::run`] and the deprecated
/// `run_bootstrap*` shims. When `trace_out` is set, the best-tree run's
/// Chrome trace goes to that path and each replicate's to
/// [`replicate_trace_path`] of it (one trace per replicate — replicates run
/// sequentially, so sharing one recorder would interleave them).
///
/// Checkpointing: a checkpoint committed *during* the best-tree search
/// carries `bootstrap: None` and resuming it re-enters that search; after
/// each completed replicate the driver commits a generation with
/// `bootstrap: Some(progress)` and resuming it skips both the best run and
/// the completed replicates. Replicate searches themselves never checkpoint
/// (the per-replicate state is tiny next to re-running one replicate, and
/// generations from different replicates would alias in the same
/// directory).
pub(crate) fn bootstrap_impl(
    aln: &CompressedAlignment,
    cfg: &BootstrapConfig,
    trace_out: Option<&Path>,
    resume: Option<&CheckpointPayload>,
) -> Result<BootstrapOutput, RunError> {
    fn run_one(
        aln: &CompressedAlignment,
        cfg: &InferenceConfig,
        trace_path: Option<PathBuf>,
        resume: Option<&CheckpointPayload>,
    ) -> Result<RunOutput, RunError> {
        match trace_path {
            None => Ok(decentralized_impl(aln, cfg, None, resume)?),
            Some(path) => {
                let recorder = exa_obs::Recorder::new(cfg.n_ranks);
                let out = decentralized_impl(aln, cfg, Some(&recorder), resume)?;
                let trace = exa_obs::Recorder::finish(recorder);
                exa_obs::write_chrome_trace(&path, &trace)?;
                Ok(out)
            }
        }
    }

    let (best, mut counts, mut replicate_lnls, start) = match resume {
        // Between-replicate checkpoint: the best run already finished —
        // reconstruct its output (communication/work counters are gone
        // with the original world and report as zero) and pick the
        // replicate loop back up where it left off.
        Some(p) if p.bootstrap.is_some() => {
            let progress = p.bootstrap.as_ref().expect("guarded by is_some");
            let state = progress.best_state.clone();
            let tree_newick = state.tree.to_newick(&aln.taxa);
            let best = RunOutput {
                result: progress.best_result.clone(),
                state,
                tree_newick,
                comm_stats: CommStats::default(),
                work: WorkCounters::default(),
                mem_bytes: 0,
                survivors: (0..cfg.base.n_ranks).collect(),
                sentinel_syncs: 0,
                kernel: local_kernel(cfg.base.kernel),
                site_repeats: local_site_repeats(cfg.base.site_repeats),
                reduce: local_reduce(cfg.base.reduce),
                threads: cfg.base.threads.resolve_local().get(),
                gradient: cfg.base.gradient.resolve_local(),
                checkpoints: 0,
            };
            let counts: HashMap<Vec<usize>, usize> = progress
                .split_counts
                .iter()
                .map(|(s, c)| (s.clone(), *c as usize))
                .collect();
            let lnls: Vec<f64> = progress
                .replicate_lnl_bits
                .iter()
                .map(|&b| f64::from_bits(b))
                .collect();
            (best, counts, lnls, progress.completed.min(cfg.replicates))
        }
        // Mid-best-run checkpoint (or no checkpoint): run (or resume) the
        // best-tree search, then start the replicates from scratch.
        _ => {
            let best = run_one(aln, &cfg.base, trace_out.map(Path::to_path_buf), resume)?;
            (best, HashMap::new(), Vec::new(), 0)
        }
    };
    let best_splits = bipartitions(&best.state.tree);
    let mut committed = best.checkpoints;

    for r in start..cfg.replicates {
        let replicate_seed = cfg.seed.wrapping_add(r as u64);
        let resampled = resample_alignment(aln, replicate_seed);
        let mut rcfg = cfg.base.clone();
        rcfg.seed = replicate_seed;
        // Replicates never checkpoint, kill, resume, fault-inject or
        // heartbeat (the sentinel cadence, if any, stays on — replicas
        // must agree in replicate searches too).
        rcfg.checkpoint_out = None;
        rcfg.inject_kill = None;
        rcfg.resume_from = None;
        rcfg.fault_plan = crate::fault::FaultPlan::none();
        rcfg.divergence_fault = None;
        rcfg.health_out = None;
        let out = run_one(
            &resampled,
            &rcfg,
            trace_out.map(|p| replicate_trace_path(p, r)),
            None,
        )?;
        replicate_lnls.push(out.result.lnl);
        for split in bipartitions(&out.state.tree) {
            *counts.entry(split).or_insert(0) += 1;
        }

        if let Some(dir) = &cfg.base.checkpoint_out {
            // Sorted split order so the checkpoint bytes are a pure
            // function of the progress (HashMap order is not).
            let mut split_counts: Vec<(Vec<usize>, u32)> =
                counts.iter().map(|(s, &c)| (s.clone(), c as u32)).collect();
            split_counts.sort();
            let progress = BootstrapProgress {
                completed: r + 1,
                replicate_lnl_bits: replicate_lnls.iter().map(|l| l.to_bits()).collect(),
                split_counts,
                best_result: best.result.clone(),
                best_state: best.state.clone(),
            };
            let snapshot = SearchSnapshot {
                iteration: best.result.iterations,
                lnl_bits: best.result.lnl.to_bits(),
                spr_moves: best.result.spr_moves,
                state: best.state.clone(),
                psr_rates: Vec::new(),
            };
            let header = CheckpointHeader {
                format_version: 0, // sealed by Checkpoint::build
                scheme: "decentralized".into(),
                kernel: best.kernel.label().into(),
                site_repeats: best.site_repeats.label().into(),
                rank_count: cfg.base.n_ranks,
                rate_model: format!("{:?}", cfg.base.rate_model),
                branch_mode: format!("{:?}", cfg.base.branch_mode),
                seed: cfg.base.seed,
                n_taxa: aln.n_taxa(),
                n_partitions: aln.n_partitions(),
                iteration: best.result.iterations,
                payload_len: 0,
                payload_fingerprint: 0,
                reduce_mode: Some(best.reduce.label().into()),
                gradient: Some(best.gradient.label().into()),
            };
            let ckpt = Checkpoint::build(
                header,
                CheckpointPayload {
                    snapshot,
                    bootstrap: Some(progress),
                },
            );
            checkpoint::save_generation_keeping(dir, &ckpt, cfg.base.checkpoint_keep)?;
            committed += 1;
            // Driver-level kill injection: replicate boundaries count
            // toward the same committed-checkpoint budget as in-search
            // boundaries, so a chaos harness can kill between replicates.
            if let Some(k) = cfg.base.inject_kill {
                if committed >= k.after_checkpoints {
                    return Err(RunError::Killed {
                        after_checkpoints: committed,
                        iteration: best.result.iterations,
                    });
                }
            }
        }
    }

    let denom = cfg.replicates.max(1) as f64;
    let support: HashMap<Vec<usize>, f64> = best_splits
        .iter()
        .map(|s| {
            (
                s.clone(),
                100.0 * counts.get(s).copied().unwrap_or(0) as f64 / denom,
            )
        })
        .collect();
    let annotated_newick = best.state.tree.to_newick_with_support(&aln.taxa, &support);

    Ok(BootstrapOutput {
        best,
        replicate_lnls,
        support,
        annotated_newick,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_search::SearchConfig;
    use exa_simgen::workloads;

    #[test]
    fn replicate_trace_paths_insert_rep_suffix() {
        use std::path::Path;
        assert_eq!(
            replicate_trace_path(Path::new("out/trace.json"), 3),
            Path::new("out/trace.rep3.json")
        );
        assert_eq!(
            replicate_trace_path(Path::new("trace"), 0),
            Path::new("trace.rep0")
        );
    }

    #[test]
    fn resampling_preserves_site_totals() {
        let w = workloads::partitioned(6, 3, 50, 3);
        let r = resample_alignment(&w.compressed, 7);
        assert_eq!(r.n_partitions(), 3);
        for (orig, res) in w.compressed.partitions.iter().zip(&r.partitions) {
            let so: u32 = orig.weights.iter().sum();
            let sr: u32 = res.weights.iter().sum();
            assert_eq!(so, sr, "site total must be preserved");
            assert!(res.n_patterns() <= orig.n_patterns());
            assert!(res.n_patterns() > 0);
        }
    }

    #[test]
    fn resampling_is_deterministic_and_seed_sensitive() {
        let w = workloads::partitioned(6, 2, 60, 5);
        let a = resample_alignment(&w.compressed, 1);
        let b = resample_alignment(&w.compressed, 1);
        let c = resample_alignment(&w.compressed, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn resampled_weights_differ_from_original() {
        let w = workloads::partitioned(6, 1, 200, 9);
        let r = resample_alignment(&w.compressed, 11);
        assert_ne!(
            w.compressed.partitions[0].weights, r.partitions[0].weights,
            "a 200-site multinomial redraw virtually never reproduces the input"
        );
    }

    #[test]
    fn bootstrap_end_to_end_supports_strong_signal() {
        // Clean simulated data: every split of the generating tree should
        // receive high support across replicates.
        let w = workloads::partitioned(6, 1, 400, 13);
        let mut base = InferenceConfig::new(2);
        base.search = SearchConfig {
            max_iterations: 2,
            ..SearchConfig::fast()
        };
        let cfg = BootstrapConfig {
            replicates: 5,
            seed: 99,
            base,
        };
        let out = bootstrap_impl(&w.compressed, &cfg, None, None).unwrap();
        assert_eq!(out.replicate_lnls.len(), 5);
        assert!(out.annotated_newick.ends_with(");"));
        // 6 taxa → 3 internal splits on the best tree.
        assert_eq!(out.support.len(), 3);
        let mean_support: f64 = out.support.values().sum::<f64>() / out.support.len() as f64;
        assert!(
            mean_support >= 60.0,
            "strong simulated signal should give high support: {:?}",
            out.support
        );
        // Labels present in the annotated tree.
        assert!(
            out.annotated_newick.contains(')'),
            "{}",
            out.annotated_newick
        );
    }
}
