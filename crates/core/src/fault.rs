//! Fault tolerance (§V of the paper).
//!
//! "Unlike for the fork-join approach where a failure of the master process
//! would be catastrophic, ExaML offers maximum state redundancy. When one
//! or more cores fail, the data will merely have to be re-distributed to
//! the remaining processes/cores such that computations can continue."
//!
//! That is exactly what happens here. Failures are only observable at
//! collective operations; the aborted collective unwinds (as a
//! [`CommFailurePanic`]) to the search driver's iteration boundary, where
//! these hooks:
//!
//! 1. acknowledge the failure ([`exa_comm::Rank::recover`]),
//! 2. recompute the data distribution over the survivors and rebuild the
//!    local engine from the (shared) alignment — the analogue of re-reading
//!    the binary alignment file,
//! 3. restore the replicated [`GlobalState`] snapshot taken at the last
//!    boundary, and retry the iteration.
//!
//! Because every rank already holds the complete search state, no state is
//! lost — only the current iteration's partial work is redone.

use crate::checkpoint::{self, Checkpoint, CheckpointHeader, CheckpointPayload};
use crate::{die_now, DecentralizedEvaluator, InferenceConfig};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommCategory, Rank};
use exa_obs::{imbalance_ratio, HeartbeatRecord};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::{CommFailurePanic, Evaluator, GlobalState, SearchSnapshot};
use exa_search::{BoundaryInfo, KillPanic, PreemptPanic, SearchHooks};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A scripted set of rank failures, for tests, examples and the fault
/// benches: rank `r` dies at the boundary of iteration `i`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub failures: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `rank` at iteration `iteration`.
    pub fn kill(rank: usize, iteration: usize) -> FaultPlan {
        FaultPlan {
            failures: vec![(rank, iteration)],
        }
    }

    /// Add another scripted failure.
    pub fn and_kill(mut self, rank: usize, iteration: usize) -> FaultPlan {
        self.failures.push((rank, iteration));
        self
    }

    /// Does the plan ever kill `rank`?
    pub fn kills(&self, rank: usize) -> bool {
        self.failures.iter().any(|&(r, _)| r == rank)
    }

    fn fires(&self, rank: usize, iteration: usize) -> bool {
        self.failures.contains(&(rank, iteration))
    }
}

/// Per-rank heartbeat state, active only when `health_out` is configured.
struct HealthState {
    path: PathBuf,
    last_instant: Instant,
    last_regions: u64,
    created: bool,
}

/// Iteration hooks for a de-centralized rank: checkpointing, heartbeats,
/// scripted faults, recovery.
pub struct DecentralizedHooks {
    rank: Rank,
    aln: Arc<CompressedAlignment>,
    freqs: Arc<Vec<[f64; 4]>>,
    cfg: Arc<InferenceConfig>,
    shared: Arc<exa_sched::SharedSlices>,
    /// This rank's current data assignment (kept in sync with recoveries;
    /// needed to map local PSR rates to global pattern indices).
    assignment: exa_sched::RankAssignment,
    /// Snapshot at the last iteration boundary (the recovery point).
    snapshot: GlobalState,
    snapshot_iteration: usize,
    snapshot_lnl: f64,
    /// Recoveries performed (observability for tests).
    pub recoveries: usize,
    /// Planned elastic resizes executed (observability for tests).
    pub resizes: usize,
    /// Checkpoint generations committed so far. Every rank counts them
    /// (the cadence is deterministic) even though only the writer rank
    /// performs the write — this is what aligns `--inject-kill` across the
    /// world.
    checkpoints_written: u64,
    /// Iteration of the last committed checkpoint (heartbeat field).
    last_checkpoint_iter: Option<u64>,
    /// Wall-clock of the last checkpoint write, writer rank only.
    last_checkpoint_ms: Option<f64>,
    /// When the last checkpoint committed (or the run started), for the
    /// `checkpoint_every_secs` time cadence. Rank-local; the per-boundary
    /// due/not-due decision is made collectively so the ranks stay aligned.
    last_checkpoint_instant: Instant,
    /// Set once an injected kill has fired anywhere in the world:
    /// `(after_checkpoints, iteration)`. Disables recovery — a killed run
    /// must abort, not heal.
    kill_event: Option<(u64, usize)>,
    health: Option<HealthState>,
}

impl DecentralizedHooks {
    /// Build hooks, snapshotting the evaluator's initial state.
    pub fn new(
        rank: Rank,
        aln: Arc<CompressedAlignment>,
        freqs: Arc<Vec<[f64; 4]>>,
        cfg: Arc<InferenceConfig>,
        shared: Arc<exa_sched::SharedSlices>,
        assignment: exa_sched::RankAssignment,
        eval: &DecentralizedEvaluator,
    ) -> DecentralizedHooks {
        let health = cfg.health_out.clone().map(|path| HealthState {
            path,
            last_instant: Instant::now(),
            last_regions: 0,
            created: false,
        });
        DecentralizedHooks {
            rank,
            aln,
            freqs,
            cfg,
            shared,
            assignment,
            snapshot: eval.snapshot(),
            snapshot_iteration: 0,
            snapshot_lnl: f64::NEG_INFINITY,
            recoveries: 0,
            resizes: 0,
            checkpoints_written: 0,
            last_checkpoint_iter: None,
            last_checkpoint_ms: None,
            last_checkpoint_instant: Instant::now(),
            kill_event: None,
            health,
        }
    }

    /// Checkpoint generations committed so far (world-level count).
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// The injected kill that fired, if any: `(after_checkpoints,
    /// iteration)`.
    pub fn kill_event(&self) -> Option<(u64, usize)> {
        self.kill_event
    }

    /// The per-boundary preemption / time-cadence agreement. Both signals
    /// are inherently rank-local (a `PreemptSignal` flips asynchronously,
    /// wall clocks drift), so acting on a local read would let ranks take
    /// different paths at the same boundary and deadlock the collectives.
    /// Instead every rank contributes one bit-mask byte on an allgather
    /// (bit 0 = preempt requested, bit 1 = time cadence due) and all adopt
    /// the OR — the same minimum-capability pattern as kernel negotiation.
    /// The collective only runs when either feature is configured, so plain
    /// runs pay nothing. Returns `(preempt, time_due)`.
    fn boundary_agreement(&mut self) -> (bool, bool) {
        let preempt_armed = self.cfg.preempt.is_some();
        let time_armed =
            self.cfg.checkpoint_every_secs.is_some() && self.cfg.checkpoint_out.is_some();
        if !preempt_armed && !time_armed {
            return (false, false);
        }
        let mut bits = 0u8;
        if self.cfg.preempt.as_ref().is_some_and(|p| p.is_requested()) {
            bits |= 1;
        }
        if let Some(secs) = self.cfg.checkpoint_every_secs {
            if self.cfg.checkpoint_out.is_some()
                && self.last_checkpoint_instant.elapsed().as_secs_f64() >= secs
            {
                bits |= 2;
            }
        }
        let Ok(blobs) = self.rank.allgather_bytes(vec![bits], CommCategory::Control) else {
            // A rank failed mid-gather: skip both signals this boundary;
            // recovery runs at the driver level and the next boundary
            // re-agrees.
            return (false, false);
        };
        let all = blobs
            .iter()
            .filter_map(|b| b.first().copied())
            .fold(0u8, |a, b| a | b);
        (all & 1 != 0, all & 2 != 0)
    }

    /// Commit a checkpoint generation if one is due at this boundary —
    /// on the iteration cadence, or forced (time cadence / preemption).
    /// Under PSR, *every* active rank joins the rate allgather (the cadence
    /// is deterministic and `force` is collectively agreed, so the
    /// collective stays aligned); only the lowest-id active rank writes
    /// the file.
    fn maybe_checkpoint(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo, force: bool) {
        let Some(dir) = self.cfg.checkpoint_out.clone() else {
            return;
        };
        let every = self.cfg.checkpoint_every;
        let on_cadence = every > 0 && info.iteration.is_multiple_of(every);
        if !on_cadence && !force {
            return;
        }
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        let psr_rates = if self.cfg.rate_model == RateModelKind::Psr {
            let local = exa_sched::capture_site_rates(de.engine(), &self.assignment, &self.aln);
            let blob = serde_json::to_vec(&local).expect("PSR rate blob serializes");
            let Ok(blobs) = de.rank().allgather_bytes(blob, CommCategory::Control) else {
                // A rank failed mid-gather: skip this generation; recovery
                // runs at the driver level and the next boundary retries.
                return;
            };
            let mut parts: Vec<(usize, Vec<usize>, Vec<u64>)> = Vec::new();
            for b in blobs.iter().filter(|b| !b.is_empty()) {
                let v: Vec<(usize, Vec<usize>, Vec<u64>)> =
                    serde_json::from_slice(b).expect("PSR rate blob parses");
                parts.extend(v);
            }
            exa_sched::merge_site_rates(&self.aln, parts)
        } else {
            Vec::new()
        };
        self.checkpoints_written += 1;
        self.last_checkpoint_iter = Some(info.iteration as u64);
        self.last_checkpoint_instant = Instant::now();
        // All ranks mark the committed generation (identically — trace
        // event sequences stay comparable across ranks).
        exa_obs::mark(|| format!("{}{}", exa_obs::CHECKPOINT_MARK, info.iteration));
        if self.rank.active_ranks().first() != Some(&self.rank.id()) {
            return;
        }
        let t0 = Instant::now();
        let snapshot = SearchSnapshot {
            iteration: info.iteration,
            lnl_bits: info.lnl.to_bits(),
            spr_moves: info.spr_moves,
            state: self.snapshot.clone(),
            psr_rates,
        };
        let header = CheckpointHeader {
            format_version: 0, // sealed by Checkpoint::build
            scheme: "decentralized".into(),
            kernel: de.engine().kernel_kind().label().into(),
            site_repeats: de.engine().site_repeats().label().into(),
            // The configured width, not the momentary surviving width: the
            // snapshot is replicated state from the full-width trajectory,
            // and the resume gate compares trajectory identities.
            rank_count: self.cfg.n_ranks,
            rate_model: format!("{:?}", self.cfg.rate_model),
            branch_mode: format!("{:?}", self.cfg.branch_mode),
            seed: self.cfg.seed,
            n_taxa: self.aln.n_taxa(),
            n_partitions: self.aln.n_partitions(),
            iteration: 0,
            payload_len: 0,
            payload_fingerprint: 0,
            reduce_mode: Some(de.reduce().label().into()),
            gradient: Some(de.gradient().label().into()),
        };
        let ckpt = Checkpoint::build(
            header,
            CheckpointPayload {
                snapshot,
                bootstrap: None,
            },
        );
        checkpoint::save_generation_keeping(&dir, &ckpt, self.cfg.checkpoint_keep)
            .expect("checkpoint write failed");
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        self.last_checkpoint_ms = Some(elapsed_ms);
        crate::run::observe_checkpoint_write("decentralized", elapsed_ms);
    }

    /// Execute the elastic-resize plan at this boundary, if an entry fires:
    /// recompute the data distribution at the new width (padded with empty
    /// assignments up to the fixed comm world) and rebuild the local engine
    /// from the shared alignment — the same redistribution mechanics as §V
    /// failure recovery, but planned, collective-free (every rank derives
    /// the identical step from the shared config) and without losing any
    /// work. PSR per-site rates are data-local and reset, exactly like
    /// recovery; the next model-optimization round re-fits them.
    fn maybe_resize(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        let Some(&(_, width)) = self
            .cfg
            .resize_plan
            .iter()
            .find(|&&(iter, _)| iter == info.iteration)
        else {
            return;
        };
        let world = self.rank.world_size();
        let assignments = crate::padded_assignments(&self.aln, width, world, self.cfg.strategy);
        self.assignment = assignments[self.rank.id()].clone();
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        let engine = exa_sched::build_engine(
            &self.aln,
            &self.assignment,
            &self.freqs,
            &exa_sched::EngineSpec {
                rate_model: self.cfg.rate_model,
                kernel: de.engine().kernel_kind(),
                site_repeats: de.engine().site_repeats(),
                threads: de.engine().threads(),
                batch: self.cfg.batch,
            },
            Some(&self.shared),
        );
        de.replace_engine(engine);
        self.resizes += 1;
        // Stamped on every rank — trace event sequences stay comparable.
        exa_obs::mark(|| format!("resize:{}:{width}", info.iteration));
    }

    /// Fire the injected kill once the configured number of checkpoints
    /// has been committed. All ranks evaluate the same deterministic
    /// condition: with no victim rank every rank dies here; with a victim,
    /// that rank fails its communicator and dies while the others record
    /// the event (so recovery is disabled) and abort at their next
    /// collective.
    fn maybe_kill(&mut self, info: &BoundaryInfo) {
        let Some(kill) = self.cfg.inject_kill else {
            return;
        };
        if self.kill_event.is_some() || self.checkpoints_written < kill.after_checkpoints {
            return;
        }
        self.kill_event = Some((kill.after_checkpoints, info.iteration));
        let payload = KillPanic {
            after_checkpoints: kill.after_checkpoints,
            iteration: info.iteration,
        };
        match kill.rank {
            None => std::panic::panic_any(payload),
            Some(victim) if victim == self.rank.id() => {
                self.rank.fail();
                std::panic::panic_any(payload);
            }
            Some(_) => {
                // Survivor of a targeted kill: the victim's failure surfaces
                // at our next collective; `on_failure` sees the kill event
                // and aborts instead of recovering.
            }
        }
    }

    /// Emit one heartbeat record. Every active rank joins the kernel-time
    /// allgather (the same `cfg` enables heartbeats on all of them, so the
    /// collective stays aligned); only the lowest-id active rank writes.
    fn heartbeat(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        let Some(health) = self.health.as_mut() else {
            return;
        };
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        // Exchange cumulative measured kernel time so the writer can report
        // the live (measured, not modeled) load-imbalance ratio.
        let kernel_ns = de.engine().work().kernel_ns;
        let gathered = de
            .rank()
            .allgather_bytes(kernel_ns.to_le_bytes().to_vec(), CommCategory::Control);
        let Ok(blobs) = gathered else {
            // A rank failed mid-heartbeat: skip this record; recovery runs
            // at the driver level and the next boundary tries again.
            return;
        };
        let per_rank: Vec<u64> = blobs
            .iter()
            .filter(|b| b.len() == 8)
            .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
            .collect();
        // With no master, the lowest-id active rank writes (same rule as
        // checkpoints).
        if self.rank.active_ranks().first() != Some(&self.rank.id()) {
            return;
        }
        let stats = self.rank.stats();
        let now = Instant::now();
        let dt = now.duration_since(health.last_instant).as_secs_f64();
        let regions = stats.total_regions();
        let collectives_per_sec = if dt > 0.0 {
            regions.saturating_sub(health.last_regions) as f64 / dt
        } else {
            0.0
        };
        health.last_instant = now;
        health.last_regions = regions;
        let work = de.engine().work();
        let rec = HeartbeatRecord {
            iteration: info.iteration as u64,
            lnl: info.lnl,
            spr_accepts: info.spr_moves as u64,
            collectives_per_sec,
            comm_bytes: stats.total_bytes(),
            imbalance: imbalance_ratio(&per_rank),
            sentinel_syncs: de.sentinel_syncs(),
            divergence: "ok".to_string(),
            kernel: Some(de.engine().kernel_kind().label().to_string()),
            repeat_ratio: Some(work.repeat_ratio()),
            clv_saved: Some(work.clv_saved),
            last_checkpoint_iter: self.last_checkpoint_iter,
            checkpoint_write_ms: self.last_checkpoint_ms,
            reduce: Some(de.reduce().label().to_string()),
            threads: Some(de.engine().threads() as u64),
            gradient: Some(de.gradient().label().to_string()),
        };
        let line = rec.to_json_line();
        let written = if health.created {
            OpenOptions::new()
                .append(true)
                .open(&health.path)
                .and_then(|mut f| writeln!(f, "{line}"))
        } else {
            File::create(&health.path).and_then(|mut f| writeln!(f, "{line}"))
        };
        written.expect("heartbeat write failed");
        health.created = true;
    }
}

impl SearchHooks for DecentralizedHooks {
    fn at_boundary(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        self.snapshot = eval.snapshot();
        self.snapshot_iteration = info.iteration;
        self.snapshot_lnl = info.lnl;

        // Agree collectively on asynchronous signals (preemption request,
        // wall-clock checkpoint cadence) before acting on either.
        let (preempt, time_due) = self.boundary_agreement();

        // Checkpoint: with no master, the lowest-id active rank writes. A
        // preemption forces a final generation at this boundary so no work
        // is lost.
        self.maybe_checkpoint(eval, info, preempt || time_due);

        self.heartbeat(eval, info);

        if preempt {
            exa_obs::mark(|| format!("preempt:{}", info.iteration));
            std::panic::panic_any(PreemptPanic {
                iteration: info.iteration,
                checkpoints: self.checkpoints_written,
            });
        }

        // Injected kill (checkpoint/restart chaos testing), then scripted
        // death (fault-injection testing of §V).
        self.maybe_kill(info);
        if self.cfg.fault_plan.fires(self.rank.id(), info.iteration) {
            die_now(&self.rank);
        }

        // Planned elastic resize, after the boundary's checkpoint and
        // heartbeat captured the pre-resize assignment.
        self.maybe_resize(eval, info);
    }

    fn on_failure(&mut self, eval: &mut dyn Evaluator, _failure: &CommFailurePanic) -> bool {
        // A comm failure after an injected kill is the kill propagating —
        // abort instead of healing, so the restart harness exercises the
        // checkpoint path rather than §V recovery.
        if self.kill_event.is_some() {
            return false;
        }
        // 1. Acknowledge and learn the surviving rank set.
        let (_failed, survivors) = self.rank.recover();
        let my_index = survivors
            .iter()
            .position(|&r| r == self.rank.id())
            .expect("a failed rank cannot recover");

        // 2. Redistribute: recompute the assignment over the survivors and
        //    rebuild the local engine from the shared alignment. The rebuilt
        //    engine keeps the kernel backend negotiated at startup — the
        //    survivors already agreed on it, and re-negotiating here would
        //    require a collective the failed rank can no longer join.
        let assignments = exa_sched::distribute(&self.aln, survivors.len(), self.cfg.strategy);
        self.assignment = assignments[my_index].clone();
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        let engine = exa_sched::build_engine(
            &self.aln,
            &assignments[my_index],
            &self.freqs,
            &exa_sched::EngineSpec {
                rate_model: self.cfg.rate_model,
                kernel: de.engine().kernel_kind(),
                site_repeats: de.engine().site_repeats(),
                threads: de.engine().threads(),
                batch: self.cfg.batch,
            },
            Some(&self.shared),
        );
        de.replace_engine(engine);

        // 3. Rewind to the last consistent boundary and retry.
        de.restore(&self.snapshot);
        self.recoveries += 1;
        true
    }
}
