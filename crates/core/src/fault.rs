//! Fault tolerance (§V of the paper).
//!
//! "Unlike for the fork-join approach where a failure of the master process
//! would be catastrophic, ExaML offers maximum state redundancy. When one
//! or more cores fail, the data will merely have to be re-distributed to
//! the remaining processes/cores such that computations can continue."
//!
//! That is exactly what happens here. Failures are only observable at
//! collective operations; the aborted collective unwinds (as a
//! [`CommFailurePanic`]) to the search driver's iteration boundary, where
//! these hooks:
//!
//! 1. acknowledge the failure ([`exa_comm::Rank::recover`]),
//! 2. recompute the data distribution over the survivors and rebuild the
//!    local engine from the (shared) alignment — the analogue of re-reading
//!    the binary alignment file,
//! 3. restore the replicated [`GlobalState`] snapshot taken at the last
//!    boundary, and retry the iteration.
//!
//! Because every rank already holds the complete search state, no state is
//! lost — only the current iteration's partial work is redone.

use crate::checkpoint::{self, Checkpoint, CHECKPOINT_VERSION};
use crate::{die_now, DecentralizedEvaluator, InferenceConfig};
use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommCategory, Rank};
use exa_obs::{imbalance_ratio, HeartbeatRecord};
use exa_search::evaluator::{CommFailurePanic, Evaluator, GlobalState};
use exa_search::{BoundaryInfo, SearchHooks};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// A scripted set of rank failures, for tests, examples and the fault
/// benches: rank `r` dies at the boundary of iteration `i`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub failures: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Kill `rank` at iteration `iteration`.
    pub fn kill(rank: usize, iteration: usize) -> FaultPlan {
        FaultPlan {
            failures: vec![(rank, iteration)],
        }
    }

    /// Add another scripted failure.
    pub fn and_kill(mut self, rank: usize, iteration: usize) -> FaultPlan {
        self.failures.push((rank, iteration));
        self
    }

    /// Does the plan ever kill `rank`?
    pub fn kills(&self, rank: usize) -> bool {
        self.failures.iter().any(|&(r, _)| r == rank)
    }

    fn fires(&self, rank: usize, iteration: usize) -> bool {
        self.failures.contains(&(rank, iteration))
    }
}

/// Per-rank heartbeat state, active only when `health_out` is configured.
struct HealthState {
    path: PathBuf,
    last_instant: Instant,
    last_regions: u64,
    created: bool,
}

/// Iteration hooks for a de-centralized rank: checkpointing, heartbeats,
/// scripted faults, recovery.
pub struct DecentralizedHooks {
    rank: Rank,
    aln: Arc<CompressedAlignment>,
    freqs: Arc<Vec<[f64; 4]>>,
    cfg: Arc<InferenceConfig>,
    shared: Arc<exa_sched::SharedSlices>,
    /// Snapshot at the last iteration boundary (the recovery point).
    snapshot: GlobalState,
    snapshot_iteration: usize,
    snapshot_lnl: f64,
    /// Recoveries performed (observability for tests).
    pub recoveries: usize,
    health: Option<HealthState>,
}

impl DecentralizedHooks {
    /// Build hooks, snapshotting the evaluator's initial state.
    pub fn new(
        rank: Rank,
        aln: Arc<CompressedAlignment>,
        freqs: Arc<Vec<[f64; 4]>>,
        cfg: Arc<InferenceConfig>,
        shared: Arc<exa_sched::SharedSlices>,
        eval: &DecentralizedEvaluator,
    ) -> DecentralizedHooks {
        let health = cfg.health_out.clone().map(|path| HealthState {
            path,
            last_instant: Instant::now(),
            last_regions: 0,
            created: false,
        });
        DecentralizedHooks {
            rank,
            aln,
            freqs,
            cfg,
            shared,
            snapshot: eval.snapshot(),
            snapshot_iteration: 0,
            snapshot_lnl: f64::NEG_INFINITY,
            recoveries: 0,
            health,
        }
    }

    /// Emit one heartbeat record. Every active rank joins the kernel-time
    /// allgather (the same `cfg` enables heartbeats on all of them, so the
    /// collective stays aligned); only the lowest-id active rank writes.
    fn heartbeat(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        let Some(health) = self.health.as_mut() else {
            return;
        };
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        // Exchange cumulative measured kernel time so the writer can report
        // the live (measured, not modeled) load-imbalance ratio.
        let kernel_ns = de.engine().work().kernel_ns;
        let gathered = de
            .rank()
            .allgather_bytes(kernel_ns.to_le_bytes().to_vec(), CommCategory::Control);
        let Ok(blobs) = gathered else {
            // A rank failed mid-heartbeat: skip this record; recovery runs
            // at the driver level and the next boundary tries again.
            return;
        };
        let per_rank: Vec<u64> = blobs
            .iter()
            .filter(|b| b.len() == 8)
            .map(|b| u64::from_le_bytes(b[..8].try_into().unwrap()))
            .collect();
        // With no master, the lowest-id active rank writes (same rule as
        // checkpoints).
        if self.rank.active_ranks().first() != Some(&self.rank.id()) {
            return;
        }
        let stats = self.rank.stats();
        let now = Instant::now();
        let dt = now.duration_since(health.last_instant).as_secs_f64();
        let regions = stats.total_regions();
        let collectives_per_sec = if dt > 0.0 {
            regions.saturating_sub(health.last_regions) as f64 / dt
        } else {
            0.0
        };
        health.last_instant = now;
        health.last_regions = regions;
        let work = de.engine().work();
        let rec = HeartbeatRecord {
            iteration: info.iteration as u64,
            lnl: info.lnl,
            spr_accepts: info.spr_moves as u64,
            collectives_per_sec,
            comm_bytes: stats.total_bytes(),
            imbalance: imbalance_ratio(&per_rank),
            sentinel_syncs: de.sentinel_syncs(),
            divergence: "ok".to_string(),
            kernel: Some(de.engine().kernel_kind().label().to_string()),
            repeat_ratio: Some(work.repeat_ratio()),
            clv_saved: Some(work.clv_saved),
        };
        let line = rec.to_json_line();
        let written = if health.created {
            OpenOptions::new()
                .append(true)
                .open(&health.path)
                .and_then(|mut f| writeln!(f, "{line}"))
        } else {
            File::create(&health.path).and_then(|mut f| writeln!(f, "{line}"))
        };
        written.expect("heartbeat write failed");
        health.created = true;
    }
}

impl SearchHooks for DecentralizedHooks {
    fn at_boundary(&mut self, eval: &mut dyn Evaluator, info: &BoundaryInfo) {
        self.snapshot = eval.snapshot();
        self.snapshot_iteration = info.iteration;
        self.snapshot_lnl = info.lnl;

        // Checkpoint: with no master, the lowest-id active rank writes.
        if let Some(path) = &self.cfg.checkpoint_path {
            let every = self.cfg.checkpoint_every.max(1);
            let is_writer = self.rank.active_ranks().first() == Some(&self.rank.id());
            if is_writer && info.iteration.is_multiple_of(every) {
                let ckpt = Checkpoint {
                    version: CHECKPOINT_VERSION,
                    iteration: info.iteration,
                    lnl: info.lnl,
                    state: self.snapshot.clone(),
                };
                checkpoint::save(path, &ckpt).expect("checkpoint write failed");
            }
        }

        self.heartbeat(eval, info);

        // Scripted death (fault-injection testing of §V).
        if self.cfg.fault_plan.fires(self.rank.id(), info.iteration) {
            die_now(&self.rank);
        }
    }

    fn on_failure(&mut self, eval: &mut dyn Evaluator, _failure: &CommFailurePanic) -> bool {
        // 1. Acknowledge and learn the surviving rank set.
        let (_failed, survivors) = self.rank.recover();
        let my_index = survivors
            .iter()
            .position(|&r| r == self.rank.id())
            .expect("a failed rank cannot recover");

        // 2. Redistribute: recompute the assignment over the survivors and
        //    rebuild the local engine from the shared alignment. The rebuilt
        //    engine keeps the kernel backend negotiated at startup — the
        //    survivors already agreed on it, and re-negotiating here would
        //    require a collective the failed rank can no longer join.
        let assignments = exa_sched::distribute(&self.aln, survivors.len(), self.cfg.strategy);
        let de = eval
            .as_any_mut()
            .downcast_mut::<DecentralizedEvaluator>()
            .expect("de-centralized hooks require the de-centralized evaluator");
        let kernel = de.engine().kernel_kind();
        let site_repeats = de.engine().site_repeats();
        let engine = exa_sched::build_engine(
            &self.aln,
            &assignments[my_index],
            &self.freqs,
            self.cfg.rate_model,
            kernel,
            site_repeats,
            Some(&self.shared),
        );
        de.replace_engine(engine);

        // 3. Rewind to the last consistent boundary and retry.
        de.restore(&self.snapshot);
        self.recoveries += 1;
        true
    }
}
