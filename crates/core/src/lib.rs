//! `examl-core` — the paper's contribution: **de-centralized** parallel
//! maximum-likelihood phylogenetic inference (ExaML, §III-B).
//!
//! Every rank executes a local, *consistent* copy of the tree-search
//! algorithm on its slice of the alignment. There is no master process, no
//! traversal-descriptor broadcasts and no model-parameter broadcasts: ranks
//! only communicate where global values are mathematically required —
//!
//! 1. one `allreduce` inside the likelihood evaluation (per-partition
//!    log-likelihoods),
//! 2. one `allreduce` inside the branch-length derivative computation,
//!
//! plus a small reduction for PSR rate normalization. Because the
//! allreduce results are bit-identical on every rank (guaranteed by
//! `exa-comm`), all replicas take identical search decisions and stay in
//! lock-step without any coordination messages.
//!
//! The replicated state also yields the paper's §V fault-tolerance design
//! for free: when a rank dies, survivors redistribute its data (from the
//! binary alignment) and resume from the last iteration boundary — see
//! [`fault`].

pub mod bootstrap;
pub mod capability;
pub mod checkpoint;
pub mod cli;
pub mod evaluator;
pub mod fault;
pub mod run;
pub mod sentinel;

pub use capability::{Capability, CapabilityRequests, Caps, Negotiated};
pub use cli::{CliConfig, CliError};
pub use evaluator::DecentralizedEvaluator;
pub use run::{BootstrapOptions, BootstrapSummary, RunConfig, RunError, RunOutcome, Scheme};
pub use sentinel::{DivergenceFault, FaultComponent};

use exa_bio::patterns::CompressedAlignment;
use exa_comm::{CommCategory, CommStats, Rank, ReduceChoice, ReduceKind, World};
use exa_obs::Recorder;
use exa_phylo::engine::{
    GradientChoice, GradientMode, KernelChoice, KernelKind, RepeatsChoice, SiteRepeats,
    ThreadCount, ThreadsChoice, WorkCounters,
};
use exa_phylo::model::rates::RateModelKind;
use exa_search::evaluator::GlobalState;
use exa_search::{
    build_starting_tree, run_search_from, BranchMode, KillPanic, KillSpec, PreemptPanic,
    SearchConfig, SearchResult, StartingTree,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;

/// Full configuration of a de-centralized inference run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Number of ranks (threads standing in for MPI processes).
    pub n_ranks: usize,
    /// Γ or PSR rate heterogeneity.
    pub rate_model: RateModelKind,
    /// Joint or per-partition (`-M`) branch lengths.
    pub branch_mode: BranchMode,
    /// Data distribution (`-Q` = `MonolithicLpt`).
    pub strategy: exa_sched::Strategy,
    /// Tree-search parameters.
    pub search: SearchConfig,
    /// Seed for the starting topology.
    pub seed: u64,
    /// Starting-tree policy (random, parsimony, or a given Newick tree).
    pub starting_tree: StartingTree,
    /// Commit a checkpoint generation every `checkpoint_every` iterations
    /// into this directory (if set). `0` disables the iteration cadence
    /// (checkpoints then only commit on the time cadence or a preemption).
    pub checkpoint_out: Option<PathBuf>,
    pub checkpoint_every: usize,
    /// Checkpoint generations retained in `checkpoint_out` (default
    /// [`checkpoint::KEEP_GENERATIONS`]).
    pub checkpoint_keep: usize,
    /// Also commit a checkpoint whenever at least this many wall-clock
    /// seconds have elapsed since the last one, evaluated at iteration
    /// boundaries. Wall clocks differ across ranks, so the per-boundary
    /// decision is made collectively (any rank due → all commit).
    pub checkpoint_every_secs: Option<f64>,
    /// Cooperative preemption handle. When the controller requests it, the
    /// ranks agree collectively at the next iteration boundary, commit a
    /// final checkpoint (if `checkpoint_out` is set) and abort the run as
    /// preempted — resumable via `resume_from`.
    pub preempt: Option<exa_search::PreemptSignal>,
    /// Resume from the newest intact generation in this checkpoint
    /// directory before searching.
    pub resume_from: Option<PathBuf>,
    /// Deterministic kill injection for the restart chaos harness: die
    /// after N committed checkpoints (`--inject-kill N[:RANK]`). Requires
    /// `checkpoint_out`.
    pub inject_kill: Option<KillSpec>,
    /// Scripted rank failures (testing / demonstration of §V).
    pub fault_plan: fault::FaultPlan,
    /// Replica-divergence sentinel cadence: exchange state fingerprints
    /// every N evaluator collectives (`--verify-replicas N`, 0 = off).
    pub verify_replicas: u64,
    /// Scripted single-bit state corruption (sentinel fault injection).
    pub divergence_fault: Option<DivergenceFault>,
    /// Write heartbeat JSON-lines records here (one per iteration boundary).
    pub health_out: Option<PathBuf>,
    /// Likelihood-kernel backend selection. `Auto` makes the ranks agree on
    /// a common backend via a one-time capability allgather (every rank
    /// adopts the weakest capability present), keeping the backend uniform
    /// across the world — a requirement for fault-driven redistribution.
    pub kernel: KernelChoice,
    /// Test hook: force a specific backend per rank, bypassing negotiation.
    /// Mixing kinds violates the uniform-backend requirement and is
    /// detected by the replica-divergence sentinel.
    pub kernel_override: Option<Vec<KernelKind>>,
    /// Subtree-repeat CLV compression selection. Like `kernel`, `Auto` is
    /// negotiated uniformly across the ranks (minimum capability wins) and
    /// the resolved setting is stamped into the sentinel fingerprint, so a
    /// rank that somehow resolved differently trips the sentinel instead of
    /// silently diverging operationally.
    pub site_repeats: RepeatsChoice,
    /// Test hook: force a repeats setting per rank, bypassing negotiation.
    pub site_repeats_override: Option<Vec<SiteRepeats>>,
    /// Collective reduction scheme (`--reduce`). `Fast` is the classic
    /// rank-ordered f64 sum (bit-identical within one world, but the bits
    /// depend on the rank count); `Reproducible` sums through binned
    /// superaccumulators so the bits are invariant under the rank count and
    /// the data split — the prerequisite for mid-run elastic resize. `Auto`
    /// negotiates the minimum capability across the world.
    pub reduce: ReduceChoice,
    /// Test hook: force a reduce mode per rank, bypassing negotiation.
    /// Mixing modes changes the bits of every collective sum and trips the
    /// replica-divergence sentinel at the first fingerprint sync.
    pub reduce_override: Option<Vec<ReduceKind>>,
    /// Intra-rank worker threads per rank (`--threads`). Like the other
    /// capabilities, `Auto` is negotiated to the world minimum so every
    /// rank runs the same pool width; the resolved count is folded into the
    /// sentinel fingerprint. Threading is bitwise invisible (results land
    /// in indexed slots, reductions stay serial), so this only changes who
    /// executes a partition's kernels, never the lnL bits.
    pub threads: ThreadsChoice,
    /// Test hook: force a thread count per rank, bypassing negotiation.
    pub threads_override: Option<Vec<ThreadCount>>,
    /// Gradient-driven branch-length optimization (`--gradient`). `On`
    /// computes every edge's seed derivatives in one analytic full-tree
    /// sweep ending in a single fat collective; `Off` keeps the per-edge
    /// derivative collectives. Both produce bitwise-identical trajectories
    /// — only the collective call sequence differs — so `Auto` negotiates
    /// the minimum capability across the world to keep it uniform.
    pub gradient: GradientChoice,
    /// Test hook: force a gradient mode per rank, bypassing negotiation.
    /// Mixing modes desynchronizes the collective call sequence and trips
    /// the replica-divergence sentinel at the first fingerprint sync.
    pub gradient_override: Option<Vec<GradientMode>>,
    /// Pack small partitions into cache-sized kernel batches (`--batch`,
    /// default on). Packing is deterministic from the slice assignment and
    /// bitwise invisible; turning it off reverts to one singleton batch per
    /// partition.
    pub batch: bool,
    /// Mid-run elastic-resize plan: at the boundary of iteration `i`,
    /// redistribute the alignment over `w` ranks (`--resize-at I:W,...`).
    /// The comm world is sized to the largest width up front; ranks beyond
    /// the current width hold no data but keep replicating the search.
    /// Requires a reproducible reduce mode — under `Fast` the lnL bits
    /// would shift with the width and the replicas would diverge from their
    /// own checkpointed trajectory.
    pub resize_plan: Vec<(usize, usize)>,
}

impl InferenceConfig {
    /// Sensible defaults for `n_ranks` ranks under Γ.
    pub fn new(n_ranks: usize) -> InferenceConfig {
        InferenceConfig {
            n_ranks,
            rate_model: RateModelKind::Gamma,
            branch_mode: BranchMode::Joint,
            strategy: exa_sched::Strategy::Cyclic,
            search: SearchConfig::default(),
            seed: 42,
            starting_tree: StartingTree::Random,
            checkpoint_out: None,
            checkpoint_every: 1,
            checkpoint_keep: checkpoint::KEEP_GENERATIONS,
            checkpoint_every_secs: None,
            preempt: None,
            resume_from: None,
            inject_kill: None,
            fault_plan: fault::FaultPlan::none(),
            verify_replicas: 0,
            divergence_fault: None,
            health_out: None,
            kernel: KernelChoice::from_env(),
            kernel_override: None,
            site_repeats: RepeatsChoice::from_env(),
            site_repeats_override: None,
            reduce: ReduceChoice::Fast,
            reduce_override: None,
            threads: ThreadsChoice::from_env(),
            threads_override: None,
            gradient: GradientChoice::from_env(),
            gradient_override: None,
            batch: true,
            resize_plan: Vec::new(),
        }
    }

    /// This rank's entries into the one-time packed capability exchange
    /// (see [`capability::negotiate`]).
    pub fn capability_requests(&self, rank_id: usize) -> CapabilityRequests {
        CapabilityRequests {
            kernel: capability::kernel_request(
                rank_id,
                self.kernel,
                self.kernel_override.as_deref(),
            ),
            site_repeats: capability::repeats_request(
                rank_id,
                self.site_repeats,
                self.site_repeats_override.as_deref(),
            ),
            reduce: capability::reduce_request(
                rank_id,
                self.reduce,
                self.reduce_override.as_deref(),
            ),
            threads: capability::threads_request(
                rank_id,
                self.threads,
                self.threads_override.as_deref(),
            ),
            gradient: capability::gradient_request(
                rank_id,
                self.gradient,
                self.gradient_override.as_deref(),
            ),
        }
    }

    /// The communicator width a run needs: the configured rank count, plus
    /// head-room up to the widest target in the resize plan (a world cannot
    /// grow past the ranks it launched with).
    pub fn world_size(&self) -> usize {
        self.resize_plan
            .iter()
            .map(|&(_, w)| w)
            .chain(std::iter::once(self.n_ranks))
            .max()
            .expect("chain is non-empty")
    }
}

/// Compute the deterministic data distribution over `width` ranks, padded
/// with empty assignments up to `world` ranks (elastic head-room: ranks at
/// or beyond the current data width replicate the search on zero local
/// patterns until a resize grows into them).
pub(crate) fn padded_assignments(
    aln: &CompressedAlignment,
    width: usize,
    world: usize,
    strategy: exa_sched::Strategy,
) -> Vec<exa_sched::RankAssignment> {
    assert!(
        width >= 1 && width <= world,
        "resize width {width} outside 1..={world}"
    );
    let mut assignments = exa_sched::distribute(aln, width, strategy);
    assignments.resize_with(world, Default::default);
    assignments
}

/// Result of a de-centralized run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub result: SearchResult,
    /// Final replicated state (tree + model parameters).
    pub state: GlobalState,
    /// Final tree in Newick form.
    pub tree_newick: String,
    /// Communication statistics of the whole world.
    pub comm_stats: CommStats,
    /// Kernel work summed over all ranks.
    pub work: WorkCounters,
    /// Total CLV memory across ranks, bytes.
    pub mem_bytes: u64,
    /// Ranks alive at the end.
    pub survivors: Vec<usize>,
    /// Sentinel fingerprint syncs completed (0 when the sentinel is off).
    pub sentinel_syncs: u64,
    /// The likelihood-kernel backend the ranks computed with (negotiated
    /// under `KernelChoice::Auto`, forced otherwise).
    pub kernel: KernelKind,
    /// The subtree-repeat compression setting the ranks computed with
    /// (negotiated under `RepeatsChoice::Auto`, forced otherwise).
    pub site_repeats: SiteRepeats,
    /// The collective reduction scheme the ranks computed with (negotiated
    /// under `ReduceChoice::Auto`, forced otherwise).
    pub reduce: ReduceKind,
    /// Intra-rank worker threads each rank computed with (negotiated under
    /// `ThreadsChoice::Auto`, forced otherwise).
    pub threads: usize,
    /// The gradient-BLO mode the ranks computed with (negotiated under
    /// `GradientChoice::Auto`, forced otherwise).
    pub gradient: GradientMode,
    /// Checkpoint generations committed during the run (0 when
    /// checkpointing is off).
    pub checkpoints: u64,
}

/// Why a de-centralized run aborted instead of producing a result.
#[derive(Debug)]
pub(crate) enum RunAbort {
    /// The replica-divergence sentinel tripped.
    Divergence(exa_obs::ReplicaDivergence),
    /// An injected kill terminated the run after `after_checkpoints`
    /// committed checkpoints, at iteration boundary `iteration`.
    Killed {
        after_checkpoints: u64,
        iteration: usize,
    },
    /// A [`exa_search::PreemptSignal`] was honoured at iteration boundary
    /// `iteration`; `checkpoints` generations (including the preemption
    /// checkpoint, when one was written) are on disk.
    Preempted { iteration: usize, checkpoints: u64 },
}

/// What each rank thread reports back.
enum RankReport {
    Survived {
        result: SearchResult,
        state: Box<GlobalState>,
        work: WorkCounters,
        mem_bytes: u64,
        stats: CommStats,
        sentinel_syncs: u64,
        kernel: KernelKind,
        site_repeats: SiteRepeats,
        reduce: ReduceKind,
        threads: usize,
        gradient: GradientMode,
        checkpoints: u64,
    },
    Died {
        work: WorkCounters,
        mem_bytes: u64,
    },
    /// The sentinel tripped: every rank aborted with the same diagnostic.
    Diverged {
        work: WorkCounters,
        mem_bytes: u64,
        diagnostic: Box<exa_obs::ReplicaDivergence>,
    },
    /// An injected kill (`--inject-kill`) terminated this rank.
    Killed {
        work: WorkCounters,
        mem_bytes: u64,
        after_checkpoints: u64,
        iteration: usize,
    },
    /// A cooperative preemption stopped this rank at a boundary.
    Preempted {
        work: WorkCounters,
        mem_bytes: u64,
        iteration: usize,
        checkpoints: u64,
    },
}

/// Per-rank panic payload for a scripted death (unwinds out of the search).
struct RankDiedPanic;

/// Silence the default panic hook for the payloads this crate uses as
/// control flow (scripted deaths, comm failures, sentinel divergence) —
/// they are always caught and turned into reports/diagnostics, so the
/// default hook's per-thread `Box<dyn Any>` message and backtrace are pure
/// noise. Installed once, process-wide, wrapping the previous hook.
pub(crate) fn install_control_panic_silencer() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.downcast_ref::<RankDiedPanic>().is_some()
                || p.downcast_ref::<exa_obs::ReplicaDivergence>().is_some()
                || p.downcast_ref::<exa_search::evaluator::CommFailurePanic>()
                    .is_some()
                || p.downcast_ref::<KillPanic>().is_some()
                || p.downcast_ref::<PreemptPanic>().is_some()
            {
                return;
            }
            prev(info);
        }));
    });
}

/// The de-centralized scheme driver behind [`RunConfig::run`]. `resume` is
/// the pre-validated payload of the checkpoint generation to restart from
/// (loaded once by the caller; every rank restores from the same parsed
/// state).
pub(crate) fn decentralized_impl(
    aln: &CompressedAlignment,
    cfg: &InferenceConfig,
    recorder: Option<&Arc<Recorder>>,
    resume: Option<&checkpoint::CheckpointPayload>,
) -> Result<RunOutput, RunAbort> {
    assert!(
        aln.n_taxa() >= 4,
        "need at least 4 taxa for a meaningful search"
    );
    install_control_panic_silencer();
    let aln = Arc::new(aln.clone());
    let freqs = Arc::new(exa_bio::stats::global_frequencies(&aln));
    let cfg = Arc::new(cfg.clone());
    let resume = resume.cloned().map(Arc::new);
    // One set of Arc-wrapped tip/weight buffers for the whole in-process
    // world: ranks holding a full partition alias these instead of cloning.
    let shared = Arc::new(exa_sched::SharedSlices::build(&aln));

    // The comm world is sized for the widest point of the resize plan up
    // front: collectives need a fixed membership, so growth happens into
    // pre-allocated head-room ranks that idle (zero local data) until the
    // plan reaches them.
    let world = cfg.world_size();
    let reports: Vec<RankReport> = World::run_traced(world, recorder, |rank| {
        rank_main(
            rank,
            Arc::clone(&aln),
            Arc::clone(&freqs),
            Arc::clone(&cfg),
            Arc::clone(&shared),
            resume.clone(),
        )
    });

    // Aggregate: all survivors must agree bit-for-bit; pick the first.
    let mut work = WorkCounters::default();
    let mut mem = 0u64;
    let mut chosen: Option<(SearchResult, Box<GlobalState>, CommStats)> = None;
    let mut lnls: Vec<u64> = Vec::new();
    let mut syncs = 0u64;
    let mut run_kernel = KernelKind::Scalar;
    let mut run_repeats = SiteRepeats::Off;
    let mut run_reduce = ReduceKind::Fast;
    let mut run_threads = 1usize;
    let mut run_gradient = GradientMode::Off;
    let mut ckpts = 0u64;
    let mut divergence: Option<Box<exa_obs::ReplicaDivergence>> = None;
    let mut killed: Option<(u64, usize)> = None;
    let mut preempted: Option<(usize, u64)> = None;
    for r in reports {
        match r {
            RankReport::Survived {
                result,
                state,
                work: w,
                mem_bytes,
                stats,
                sentinel_syncs,
                kernel,
                site_repeats,
                reduce,
                threads,
                gradient,
                checkpoints,
            } => {
                work = work.merge(&w);
                mem += mem_bytes;
                lnls.push(result.lnl.to_bits());
                syncs = syncs.max(sentinel_syncs);
                ckpts = ckpts.max(checkpoints);
                if chosen.is_none() {
                    chosen = Some((result, state, stats));
                    run_kernel = kernel;
                    run_repeats = site_repeats;
                    run_reduce = reduce;
                    run_threads = threads;
                    run_gradient = gradient;
                }
            }
            RankReport::Died { work: w, mem_bytes } => {
                work = work.merge(&w);
                mem += mem_bytes;
            }
            RankReport::Diverged {
                work: w,
                mem_bytes,
                diagnostic,
            } => {
                work = work.merge(&w);
                mem += mem_bytes;
                // Every rank derived the identical verdict from the same
                // allgathered fingerprints; keep one.
                divergence = Some(diagnostic);
            }
            RankReport::Killed {
                work: w,
                mem_bytes,
                after_checkpoints,
                iteration,
            } => {
                work = work.merge(&w);
                mem += mem_bytes;
                killed = Some((after_checkpoints, iteration));
            }
            RankReport::Preempted {
                work: w,
                mem_bytes,
                iteration,
                checkpoints,
            } => {
                work = work.merge(&w);
                mem += mem_bytes;
                preempted = Some((iteration, checkpoints));
            }
        }
    }
    if let Some(d) = divergence {
        return Err(RunAbort::Divergence(*d));
    }
    if let Some((after_checkpoints, iteration)) = killed {
        return Err(RunAbort::Killed {
            after_checkpoints,
            iteration,
        });
    }
    if let Some((iteration, checkpoints)) = preempted {
        return Err(RunAbort::Preempted {
            iteration,
            checkpoints,
        });
    }
    assert!(
        lnls.windows(2).all(|w| w[0] == w[1]),
        "de-centralized replicas diverged: {lnls:?}"
    );
    let (result, state, stats) = chosen.expect("at least one rank must survive");
    let names: Vec<String> = aln.taxa.clone();
    let survivors = (0..world).filter(|r| !cfg.fault_plan.kills(*r)).collect();
    Ok(RunOutput {
        tree_newick: state.tree.to_newick(&names),
        result,
        state: *state,
        comm_stats: stats,
        work,
        mem_bytes: mem,
        survivors,
        sentinel_syncs: syncs,
        kernel: run_kernel,
        site_repeats: run_repeats,
        reduce: run_reduce,
        threads: run_threads,
        gradient: run_gradient,
        checkpoints: ckpts,
    })
}

/// Per-rank batch shape for the live registry. Batch counts legitimately
/// differ across ranks (each packs its own slice assignment), so they go to
/// `/metrics` — labelled by rank — rather than into trace marks, which must
/// stay uniform across the world for event-sequence parity.
fn record_batch_metrics(engine: &exa_phylo::Engine) {
    if !exa_obs::metrics::enabled() {
        return;
    }
    let batches = engine.batch_count() as u64;
    if batches == 0 {
        return;
    }
    let reg = exa_obs::metrics::global();
    reg.counter(
        "exa_batches_total",
        "Packed kernel batches built on this rank",
        &[],
    )
    .add(batches);
    reg.gauge(
        "exa_batch_fill_ratio",
        "Partitions per packed batch (mean fill)",
        &[],
    )
    .set(engine.n_partitions() as f64 / batches as f64);
}

fn rank_main(
    rank: Rank,
    aln: Arc<CompressedAlignment>,
    freqs: Arc<Vec<[f64; 4]>>,
    cfg: Arc<InferenceConfig>,
    shared: Arc<exa_sched::SharedSlices>,
    resume: Option<Arc<checkpoint::CheckpointPayload>>,
) -> RankReport {
    // 1. Deterministic data distribution — every rank computes the same
    //    assignment table locally (no coordination needed). Data starts
    //    spread over the configured rank count; ranks beyond it are resize
    //    head-room and hold an empty assignment until the plan grows into
    //    them.
    let assignments = padded_assignments(&aln, cfg.n_ranks, rank.world_size(), cfg.strategy);
    // Agree on the compute capabilities (kernel backend, site repeats,
    // reduce mode) before building any engine: one packed allgather, `Auto`
    // slots adopt the world minimum. Every rank stamps the winners into its
    // trace — identically, preserving cross-rank event-sequence parity — so
    // post-hoc analysis knows what the run computed with.
    let caps = capability::negotiate(&rank, &cfg.capability_requests(rank.id()));
    let kernel = caps.kernel.value;
    let site_repeats = caps.site_repeats.value;
    let reduce = caps.reduce.value;
    let threads = caps.threads.value;
    let gradient = caps.gradient.value;
    exa_obs::mark(|| format!("{}{}", exa_obs::KERNEL_BACKEND_MARK, kernel.label()));
    exa_obs::mark(|| format!("{}{}", exa_obs::SITE_REPEATS_MARK, site_repeats.label()));
    exa_obs::mark(|| format!("{}{}", exa_obs::REDUCE_MODE_MARK, reduce.label()));
    exa_obs::mark(|| format!("{}{}", exa_obs::THREADS_MARK, threads.label()));
    exa_obs::mark(|| format!("{}{}", exa_obs::GRADIENT_MARK, gradient.label()));
    exa_obs::mark(|| {
        format!(
            "{}{}",
            exa_obs::BATCH_MARK,
            if cfg.batch { "on" } else { "off" }
        )
    });
    let mut engine = exa_sched::build_engine(
        &aln,
        &assignments[rank.id()],
        &freqs,
        &exa_sched::EngineSpec {
            rate_model: cfg.rate_model,
            kernel,
            site_repeats,
            threads: threads.get(),
            batch: cfg.batch,
        },
        Some(&shared),
    );
    record_batch_metrics(&engine);
    // Checkpoint resume, phase 1: per-pattern PSR rates go straight into
    // the fresh engine (this rank's slice of the gathered global table —
    // elastic across any rank count, since the table is complete).
    if let Some(p) = resume.as_deref() {
        if !p.snapshot.psr_rates.is_empty() {
            exa_sched::apply_site_rates(
                &mut engine,
                &assignments[rank.id()],
                &aln,
                &p.snapshot.psr_rates,
            );
        }
    }
    // Account the initial data distribution (real ExaML reads the binary
    // alignment via MPI I/O; the in-process world shares memory, so this
    // traffic is modeled, not moved): one scatter of each rank's slice.
    if rank.id() == 0 {
        let bytes: u64 = assignments
            .iter()
            .flat_map(|a| exa_sched::materialize(&aln, a))
            .map(|(_, p)| (p.tips.iter().map(Vec::len).sum::<usize>() + 4 * p.weights.len()) as u64)
            .sum();
        rank.account(CommCategory::Control, exa_comm::OpKind::Scatter, bytes);
    }

    // 2. Identical starting tree on every rank (deterministic policy).
    let blens = match cfg.branch_mode {
        BranchMode::Joint => 1,
        BranchMode::PerPartition => aln.n_partitions(),
    };
    let tree = build_starting_tree(&aln, &cfg.starting_tree, blens, cfg.seed);

    let mut eval = DecentralizedEvaluator::new(
        rank.clone(),
        tree,
        engine,
        aln.n_partitions(),
        cfg.branch_mode,
    );
    eval.set_reduce(reduce);
    eval.set_gradient(gradient);
    eval.set_sentinel(cfg.verify_replicas, cfg.divergence_fault);

    // 3. Checkpoint resume, phase 2: restore the replicated state (every
    //    rank restores from the identical parsed payload, the in-process
    //    analogue of ExaML's parallel binary-file read), then a restart
    //    barrier so no rank races ahead into the search while others are
    //    still rebuilding.
    let resume_point = resume.as_deref().map(|p| {
        use exa_search::Evaluator as _;
        eval.restore(&p.snapshot.state);
        exa_obs::mark(|| format!("resume:{}", p.snapshot.iteration));
        rank.barrier(CommCategory::Control)
            .expect("restart barrier cannot proceed after a rank failure");
        p.snapshot.resume_point()
    });

    let mut hooks = fault::DecentralizedHooks::new(
        rank.clone(),
        Arc::clone(&aln),
        Arc::clone(&freqs),
        Arc::clone(&cfg),
        Arc::clone(&shared),
        assignments[rank.id()].clone(),
        &eval,
    );

    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // Sync #1 fires before the search's first collective: a mixed
        // gradient-mode world runs different collective *sequences*, so it
        // must be refused here, not discovered as a length mismatch (or a
        // deadlock) inside the first smoothing reduction.
        eval.initial_sentinel_sync();
        run_search_from(&mut eval, &cfg.search, &mut hooks, resume_point.as_ref())
    }));

    match outcome {
        Ok(result) => {
            use exa_search::Evaluator as _;
            RankReport::Survived {
                result,
                state: Box::new(eval.snapshot()),
                work: eval.engine().work(),
                mem_bytes: eval.engine().clv_bytes(),
                stats: rank.stats(),
                sentinel_syncs: eval.sentinel_syncs(),
                kernel: eval.engine().kernel_kind(),
                site_repeats: eval.engine().site_repeats(),
                reduce: eval.reduce(),
                threads: eval.engine().threads(),
                gradient: eval.gradient(),
                checkpoints: hooks.checkpoints_written(),
            }
        }
        Err(payload) => {
            if payload.downcast_ref::<RankDiedPanic>().is_some() {
                RankReport::Died {
                    work: eval.engine().work(),
                    mem_bytes: eval.engine().clv_bytes(),
                }
            } else if let Some(k) = payload.downcast_ref::<KillPanic>() {
                RankReport::Killed {
                    work: eval.engine().work(),
                    mem_bytes: eval.engine().clv_bytes(),
                    after_checkpoints: k.after_checkpoints,
                    iteration: k.iteration,
                }
            } else if let Some(p) = payload.downcast_ref::<PreemptPanic>() {
                RankReport::Preempted {
                    work: eval.engine().work(),
                    mem_bytes: eval.engine().clv_bytes(),
                    iteration: p.iteration,
                    checkpoints: p.checkpoints,
                }
            } else if payload
                .downcast_ref::<exa_search::evaluator::CommFailurePanic>()
                .is_some()
                && hooks.kill_event().is_some()
            {
                // Survivor of a targeted kill: the victim's death surfaced
                // as a comm failure with recovery disabled.
                let (after_checkpoints, iteration) =
                    hooks.kill_event().expect("kill event just checked");
                RankReport::Killed {
                    work: eval.engine().work(),
                    mem_bytes: eval.engine().clv_bytes(),
                    after_checkpoints,
                    iteration,
                }
            } else if let Some(d) = payload.downcast_ref::<exa_obs::ReplicaDivergence>() {
                // Caught here (not at join) so the structured diagnostic
                // survives — `World::run` re-panics with a plain message.
                RankReport::Diverged {
                    work: eval.engine().work(),
                    mem_bytes: eval.engine().clv_bytes(),
                    diagnostic: Box::new(d.clone()),
                }
            } else {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Internal: scripted-death trigger used by the fault hooks.
pub(crate) fn die_now(rank: &Rank) -> ! {
    rank.fail();
    std::panic::panic_any(RankDiedPanic);
}

/// Convenience for tests and examples: single collective sanity check that
/// the world agrees on a value.
pub(crate) fn _assert_world_agrees(rank: &Rank, value: f64) {
    let mut buf = vec![value, -value];
    rank.allreduce_sum(&mut buf, CommCategory::Control)
        .expect("agreement check failed");
    let n = rank.active_count() as f64;
    assert!((buf[0] - value * n).abs() < 1e-9);
}
