//! Command-line parsing for the `examl` binary, extracted from the binary
//! so it is unit-testable and reusable.
//!
//! [`CliConfig::parse`] consumes the argument list (without the program
//! name) and produces either a validated configuration or a [`CliError`]
//! whose rendering names the nearest valid flag for typos:
//!
//! ```text
//! unknown argument "--phlyip" (did you mean --phylip?)
//! ```

use crate::sentinel::{DivergenceFault, FaultComponent};
use exa_comm::{ReduceChoice, ReduceKind};
use exa_phylo::engine::{
    GradientChoice, GradientMode, KernelChoice, RepeatsChoice, ThreadCount, ThreadsChoice,
};
use exa_phylo::model::rates::RateModelKind;
use exa_search::KillSpec;
use std::path::PathBuf;

/// Every flag the `examl` binary accepts, in `usage()` order. Unknown-flag
/// suggestions are ranked against this list.
pub const FLAGS: &[&str] = &[
    "--phylip",
    "--fasta",
    "--binary-in",
    "--binary-out",
    "--partitions",
    "--ranks",
    "--model",
    "--kernel",
    "--site-repeats",
    "--reduce",
    "--threads",
    "--gradient",
    "--batch",
    "--resize-at",
    "-Q",
    "-M",
    "--seed",
    "--starting-tree",
    "--iterations",
    "--radius",
    "--epsilon",
    "--checkpoint-out",
    "--checkpoint-every",
    "--checkpoint-every-secs",
    "--checkpoint-keep",
    "--resume",
    "--inject-kill",
    "--out-tree",
    "--trace-out",
    "--bootstrap",
    "--verify-replicas",
    "--health-out",
    "--metrics-out",
    "--inject-divergence",
    "--reduce-override",
    "--threads-override",
    "--gradient-override",
    "--ascii",
    "--stats",
    "--quiet",
    "--help",
];

/// Parsed command line of the `examl` binary.
#[derive(Debug, Clone)]
pub struct CliConfig {
    pub phylip: Option<PathBuf>,
    pub fasta: Option<PathBuf>,
    pub binary_in: Option<PathBuf>,
    pub binary_out: Option<PathBuf>,
    pub partitions: Option<PathBuf>,
    pub ranks: usize,
    pub model: RateModelKind,
    pub kernel: KernelChoice,
    pub site_repeats: RepeatsChoice,
    /// Collective reduction mode: `fast` (order-sensitive f64 tree),
    /// `reproducible` (rank-count-invariant binned superaccumulator) or
    /// `auto` (negotiate; resolves to reproducible when all ranks can).
    pub reduce: ReduceChoice,
    /// Intra-rank worker threads: a count, or `auto` (negotiate the world
    /// minimum; resolves to 1 in the in-process world, where the ranks
    /// already multiplex one machine).
    pub threads: ThreadsChoice,
    /// Gradient-driven branch-length optimization: `on` computes every
    /// edge's analytic first/second lnL derivative in one full-tree sweep
    /// (one collective per smoothing pass), `off` seeds each edge with its
    /// own reduction, `auto` negotiates (resolves to `on` when all ranks
    /// can). Bitwise result-neutral either way.
    pub gradient: GradientChoice,
    /// Pack small partitions into cache-sized kernel batches (`on`, the
    /// default) or run one dispatch per partition (`off`).
    pub batch: bool,
    /// Planned mid-run width changes, `ITER:WIDTH` pairs in iteration
    /// order. Requires `--reduce reproducible` (or `auto`).
    pub resize_at: Vec<(usize, usize)>,
    pub mps: bool,
    pub per_partition_branches: bool,
    pub seed: u64,
    pub starting_tree: String,
    pub iterations: usize,
    pub radius: usize,
    pub epsilon: f64,
    pub checkpoint_out: Option<PathBuf>,
    /// Iteration cadence as given on the command line. `None` means the
    /// flag was absent; [`CliConfig::resolved_checkpoint_every`] picks the
    /// effective cadence (1, or 0 when only a time cadence is armed).
    pub checkpoint_every: Option<usize>,
    pub checkpoint_every_secs: Option<f64>,
    pub checkpoint_keep: usize,
    pub resume: Option<PathBuf>,
    pub inject_kill: Option<KillSpec>,
    pub out_tree: Option<PathBuf>,
    pub trace_out: Option<PathBuf>,
    pub quiet: bool,
    pub bootstrap: usize,
    pub ascii: bool,
    pub stats_only: bool,
    pub verify_replicas: u64,
    pub health_out: Option<PathBuf>,
    /// Dump a Prometheus text-format snapshot of the process-global
    /// metrics registry to this file at exit (also enables the registry).
    pub metrics_out: Option<PathBuf>,
    pub inject_divergence: Option<DivergenceFault>,
    /// Fault injection: per-rank reduce modes overriding the negotiated
    /// one, `MODE[,MODE...]` cycled over the ranks — a scripted mixed
    /// world the sentinel must catch at its first fingerprint sync.
    pub reduce_override: Option<Vec<ReduceKind>>,
    /// Fault injection: per-rank thread counts overriding the negotiated
    /// one, `N[,N...]` cycled over the ranks. Threading is bitwise
    /// invisible, but a mixed table still trips the sentinel via the
    /// backend fingerprint — the uniform-capability invariant holds.
    pub threads_override: Option<Vec<ThreadCount>>,
    /// Fault injection: per-rank gradient modes overriding the negotiated
    /// one, `on|off[,on|off...]` cycled over the ranks. A mixed table
    /// desynchronizes the collective sequence — the sentinel must catch it
    /// at its first fingerprint sync.
    pub gradient_override: Option<Vec<GradientMode>>,
}

impl Default for CliConfig {
    fn default() -> CliConfig {
        CliConfig {
            phylip: None,
            fasta: None,
            binary_in: None,
            binary_out: None,
            partitions: None,
            ranks: 4,
            model: RateModelKind::Gamma,
            kernel: KernelChoice::from_env(),
            site_repeats: RepeatsChoice::from_env(),
            reduce: ReduceChoice::from_env(),
            threads: ThreadsChoice::from_env(),
            gradient: GradientChoice::from_env(),
            batch: true,
            resize_at: Vec::new(),
            mps: false,
            per_partition_branches: false,
            seed: 42,
            starting_tree: "parsimony".into(),
            iterations: 10,
            radius: 5,
            epsilon: 0.1,
            checkpoint_out: None,
            checkpoint_every: None,
            checkpoint_every_secs: None,
            checkpoint_keep: crate::checkpoint::KEEP_GENERATIONS,
            resume: None,
            inject_kill: None,
            out_tree: None,
            trace_out: None,
            quiet: false,
            bootstrap: 0,
            ascii: false,
            stats_only: false,
            verify_replicas: 0,
            health_out: None,
            metrics_out: None,
            inject_divergence: None,
            reduce_override: None,
            threads_override: None,
            gradient_override: None,
        }
    }
}

/// A rejected command line. `Display` renders the message the binary
/// prints before its usage text.
#[derive(Debug, Clone, PartialEq)]
pub enum CliError {
    /// `--help`/`-h`: not an error, but parsing stops.
    Help,
    /// A flag nobody recognizes; `suggestion` is the closest valid flag
    /// (edit distance), when one is close enough to be plausible.
    UnknownFlag {
        flag: String,
        suggestion: Option<&'static str>,
    },
    /// A value-taking flag at the end of the line.
    MissingValue { flag: &'static str },
    /// A value that does not parse.
    BadValue {
        flag: &'static str,
        value: String,
        expected: &'static str,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Help => write!(f, "help requested"),
            CliError::UnknownFlag { flag, suggestion } => {
                write!(f, "unknown argument {flag:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s}?)")?;
                }
                Ok(())
            }
            CliError::MissingValue { flag } => write!(f, "missing value for {flag}"),
            CliError::BadValue {
                flag,
                value,
                expected,
            } => {
                write!(
                    f,
                    "invalid value {value:?} for {flag} (expected {expected})"
                )
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Levenshtein edit distance — small inputs only (flag names), so the
/// O(n·m) dynamic program is plenty.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The valid flag closest to `flag`, when it is close enough (edit distance
/// at most half the flag's length) to plausibly be a typo.
pub fn nearest_flag(flag: &str) -> Option<&'static str> {
    FLAGS
        .iter()
        .map(|&f| (edit_distance(flag, f), f))
        .min()
        .filter(|&(d, f)| d <= f.len().div_ceil(2))
        .map(|(_, f)| f)
}

impl CliConfig {
    /// Parse an argument list (without the program name).
    pub fn parse<I, S>(args: I) -> Result<CliConfig, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cfg = CliConfig::default();
        let mut it = args.into_iter().map(Into::into);
        while let Some(flag) = it.next() {
            let mut value = |name: &'static str| -> Result<String, CliError> {
                it.next().ok_or(CliError::MissingValue { flag: name })
            };
            fn num<T: std::str::FromStr>(
                flag: &'static str,
                value: String,
                expected: &'static str,
            ) -> Result<T, CliError> {
                value.parse().map_err(|_| CliError::BadValue {
                    flag,
                    value,
                    expected,
                })
            }
            match flag.as_str() {
                "--phylip" => cfg.phylip = Some(value("--phylip")?.into()),
                "--fasta" => cfg.fasta = Some(value("--fasta")?.into()),
                "--binary-in" => cfg.binary_in = Some(value("--binary-in")?.into()),
                "--binary-out" => cfg.binary_out = Some(value("--binary-out")?.into()),
                "--partitions" => cfg.partitions = Some(value("--partitions")?.into()),
                "--ranks" => cfg.ranks = num("--ranks", value("--ranks")?, "a count")?,
                "--model" => {
                    let v = value("--model")?;
                    cfg.model = match v.to_uppercase().as_str() {
                        "GAMMA" => RateModelKind::Gamma,
                        "PSR" | "CAT" => RateModelKind::Psr,
                        _ => {
                            return Err(CliError::BadValue {
                                flag: "--model",
                                value: v,
                                expected: "GAMMA or PSR",
                            })
                        }
                    }
                }
                "--kernel" => {
                    let v = value("--kernel")?;
                    cfg.kernel = KernelChoice::parse(&v).ok_or(CliError::BadValue {
                        flag: "--kernel",
                        value: v,
                        expected: "scalar, simd or auto",
                    })?;
                }
                "--site-repeats" => {
                    let v = value("--site-repeats")?;
                    cfg.site_repeats = RepeatsChoice::parse(&v).ok_or(CliError::BadValue {
                        flag: "--site-repeats",
                        value: v,
                        expected: "on, off or auto",
                    })?;
                }
                "--reduce" => {
                    let v = value("--reduce")?;
                    cfg.reduce = ReduceChoice::parse(&v).ok_or(CliError::BadValue {
                        flag: "--reduce",
                        value: v,
                        expected: "fast, reproducible or auto",
                    })?;
                }
                "--threads" => {
                    let v = value("--threads")?;
                    cfg.threads = ThreadsChoice::parse(&v).ok_or(CliError::BadValue {
                        flag: "--threads",
                        value: v,
                        expected: "a count or auto",
                    })?;
                }
                "--gradient" => {
                    let v = value("--gradient")?;
                    cfg.gradient = GradientChoice::parse(&v).ok_or(CliError::BadValue {
                        flag: "--gradient",
                        value: v,
                        expected: "on, off or auto",
                    })?;
                }
                "--batch" => {
                    let v = value("--batch")?;
                    cfg.batch = match v.as_str() {
                        "on" => true,
                        "off" => false,
                        _ => {
                            return Err(CliError::BadValue {
                                flag: "--batch",
                                value: v,
                                expected: "on or off",
                            })
                        }
                    };
                }
                "--resize-at" => {
                    let v = value("--resize-at")?;
                    cfg.resize_at = parse_resize_plan(&v).ok_or(CliError::BadValue {
                        flag: "--resize-at",
                        value: v,
                        expected: "ITER:WIDTH[,ITER:WIDTH...]",
                    })?;
                }
                "-Q" => cfg.mps = true,
                "-M" => cfg.per_partition_branches = true,
                "--seed" => cfg.seed = num("--seed", value("--seed")?, "an integer")?,
                "--starting-tree" => cfg.starting_tree = value("--starting-tree")?,
                "--iterations" => {
                    cfg.iterations = num("--iterations", value("--iterations")?, "a count")?
                }
                "--radius" => cfg.radius = num("--radius", value("--radius")?, "a count")?,
                "--epsilon" => cfg.epsilon = num("--epsilon", value("--epsilon")?, "a number")?,
                "--checkpoint-out" => cfg.checkpoint_out = Some(value("--checkpoint-out")?.into()),
                "--checkpoint-every" => {
                    cfg.checkpoint_every = Some(num(
                        "--checkpoint-every",
                        value("--checkpoint-every")?,
                        "a count",
                    )?)
                }
                "--checkpoint-every-secs" => {
                    let secs: f64 = num(
                        "--checkpoint-every-secs",
                        value("--checkpoint-every-secs")?,
                        "seconds",
                    )?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(CliError::BadValue {
                            flag: "--checkpoint-every-secs",
                            value: secs.to_string(),
                            expected: "seconds",
                        });
                    }
                    cfg.checkpoint_every_secs = Some(secs);
                }
                "--checkpoint-keep" => {
                    let keep: usize = num(
                        "--checkpoint-keep",
                        value("--checkpoint-keep")?,
                        "a count of at least 1",
                    )?;
                    if keep == 0 {
                        return Err(CliError::BadValue {
                            flag: "--checkpoint-keep",
                            value: keep.to_string(),
                            expected: "a count of at least 1",
                        });
                    }
                    cfg.checkpoint_keep = keep;
                }
                "--resume" => cfg.resume = Some(value("--resume")?.into()),
                "--inject-kill" => {
                    let v = value("--inject-kill")?;
                    cfg.inject_kill = Some(parse_kill_spec(&v).ok_or(CliError::BadValue {
                        flag: "--inject-kill",
                        value: v,
                        expected: "AFTER_CKPT or AFTER_CKPT:RANK",
                    })?);
                }
                "--out-tree" => cfg.out_tree = Some(value("--out-tree")?.into()),
                "--trace-out" => cfg.trace_out = Some(value("--trace-out")?.into()),
                "--bootstrap" => {
                    cfg.bootstrap = num("--bootstrap", value("--bootstrap")?, "a count")?
                }
                "--verify-replicas" => {
                    cfg.verify_replicas = num(
                        "--verify-replicas",
                        value("--verify-replicas")?,
                        "a cadence",
                    )?
                }
                "--health-out" => cfg.health_out = Some(value("--health-out")?.into()),
                "--metrics-out" => cfg.metrics_out = Some(value("--metrics-out")?.into()),
                "--inject-divergence" => {
                    let v = value("--inject-divergence")?;
                    cfg.inject_divergence =
                        Some(parse_divergence_fault(&v).ok_or(CliError::BadValue {
                            flag: "--inject-divergence",
                            value: v,
                            expected: "RANK:COLLECTIVE:alpha|blen",
                        })?);
                }
                "--reduce-override" => {
                    let v = value("--reduce-override")?;
                    cfg.reduce_override =
                        Some(parse_reduce_override(&v).ok_or(CliError::BadValue {
                            flag: "--reduce-override",
                            value: v,
                            expected: "fast|reproducible[,fast|reproducible...]",
                        })?);
                }
                "--threads-override" => {
                    let v = value("--threads-override")?;
                    cfg.threads_override =
                        Some(parse_threads_override(&v).ok_or(CliError::BadValue {
                            flag: "--threads-override",
                            value: v,
                            expected: "N[,N...]",
                        })?);
                }
                "--gradient-override" => {
                    let v = value("--gradient-override")?;
                    cfg.gradient_override =
                        Some(parse_gradient_override(&v).ok_or(CliError::BadValue {
                            flag: "--gradient-override",
                            value: v,
                            expected: "on|off[,on|off...]",
                        })?);
                }
                "--ascii" => cfg.ascii = true,
                "--stats" => cfg.stats_only = true,
                "--quiet" => cfg.quiet = true,
                "--help" | "-h" => return Err(CliError::Help),
                other => {
                    return Err(CliError::UnknownFlag {
                        flag: other.to_string(),
                        suggestion: nearest_flag(other),
                    })
                }
            }
        }
        Ok(cfg)
    }

    /// The effective iteration cadence for checkpoint commits.
    ///
    /// An explicit `--checkpoint-every N` always wins (including `0`, which
    /// disables the iteration cadence). When the flag is absent the cadence
    /// defaults to every iteration — unless only `--checkpoint-every-secs`
    /// was given, in which case the time cadence alone drives commits.
    pub fn resolved_checkpoint_every(&self) -> usize {
        match self.checkpoint_every {
            Some(n) => n,
            None if self.checkpoint_every_secs.is_some() => 0,
            None => 1,
        }
    }
}

/// Parse `AFTER_CKPT` or `AFTER_CKPT:RANK` into a [`KillSpec`]: die after
/// `AFTER_CKPT` committed checkpoint generations — every rank at once, or
/// just `RANK` (exercising the single-failure recovery path before the
/// restart).
pub fn parse_kill_spec(spec: &str) -> Option<KillSpec> {
    let mut parts = spec.splitn(2, ':');
    let after_checkpoints = parts.next()?.parse().ok()?;
    let rank = match parts.next() {
        Some(r) => Some(r.parse().ok()?),
        None => None,
    };
    Some(KillSpec {
        after_checkpoints,
        rank,
    })
}

/// Parse `ITER:WIDTH[,ITER:WIDTH...]` into a resize plan. Pairs must be in
/// strictly increasing iteration order and widths must be at least 1; the
/// world-size upper bound is checked later, once the run knows its world.
pub fn parse_resize_plan(spec: &str) -> Option<Vec<(usize, usize)>> {
    let mut plan = Vec::new();
    for pair in spec.split(',') {
        let (iter, width) = pair.split_once(':')?;
        let iter: usize = iter.parse().ok()?;
        let width: usize = width.parse().ok()?;
        if width == 0 {
            return None;
        }
        if let Some(&(last, _)) = plan.last() {
            if iter <= last {
                return None;
            }
        }
        plan.push((iter, width));
    }
    if plan.is_empty() {
        return None;
    }
    Some(plan)
}

/// Parse `MODE[,MODE...]` (`fast` / `reproducible`) into a per-rank
/// reduce-mode override table.
pub fn parse_reduce_override(spec: &str) -> Option<Vec<ReduceKind>> {
    spec.split(',')
        .map(|m| match m {
            "fast" => Some(ReduceKind::Fast),
            "reproducible" => Some(ReduceKind::Reproducible),
            _ => None,
        })
        .collect()
}

/// Parse `N[,N...]` into a per-rank thread-count override table.
pub fn parse_threads_override(spec: &str) -> Option<Vec<ThreadCount>> {
    spec.split(',').map(ThreadCount::parse).collect()
}

/// Parse `on|off[,on|off...]` into a per-rank gradient-mode override table.
pub fn parse_gradient_override(spec: &str) -> Option<Vec<GradientMode>> {
    spec.split(',')
        .map(|m| match m {
            "on" => Some(GradientMode::On),
            "off" => Some(GradientMode::Off),
            _ => None,
        })
        .collect()
}

/// Parse `RANK:COLLECTIVE:alpha|blen` into a [`DivergenceFault`].
pub fn parse_divergence_fault(spec: &str) -> Option<DivergenceFault> {
    let mut parts = spec.splitn(3, ':');
    let rank = parts.next()?.parse().ok()?;
    let after_collectives = parts.next()?.parse().ok()?;
    let component = FaultComponent::parse(parts.next()?)?;
    Some(DivergenceFault {
        rank,
        after_collectives,
        component,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliConfig, CliError> {
        CliConfig::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_match_historical_cli() {
        let c = parse(&[]).unwrap();
        assert_eq!(c.ranks, 4);
        assert_eq!(c.model, RateModelKind::Gamma);
        assert_eq!(c.starting_tree, "parsimony");
        assert_eq!(c.iterations, 10);
        assert_eq!(c.radius, 5);
        assert!((c.epsilon - 0.1).abs() < 1e-12);
        assert_eq!(c.verify_replicas, 0);
        assert!(c.resize_at.is_empty());
        assert!(!c.quiet && !c.ascii && !c.stats_only);
    }

    #[test]
    fn full_flag_set_parses() {
        let c = parse(&[
            "--phylip",
            "a.phy",
            "--partitions",
            "p.txt",
            "--ranks",
            "8",
            "--model",
            "psr",
            "--kernel",
            "simd",
            "--site-repeats",
            "off",
            "--reduce",
            "reproducible",
            "--threads",
            "2",
            "--gradient",
            "on",
            "--batch",
            "off",
            "--threads-override",
            "2,4",
            "--gradient-override",
            "on,off",
            "--resize-at",
            "2:1,5:4",
            "-Q",
            "-M",
            "--seed",
            "7",
            "--starting-tree",
            "random",
            "--iterations",
            "3",
            "--radius",
            "2",
            "--epsilon",
            "0.5",
            "--verify-replicas",
            "16",
            "--inject-divergence",
            "1:10:alpha",
            "--reduce-override",
            "reproducible,fast",
            "--metrics-out",
            "metrics.prom",
            "--quiet",
        ])
        .unwrap();
        assert_eq!(c.phylip.as_deref(), Some(std::path::Path::new("a.phy")));
        assert_eq!(c.ranks, 8);
        assert_eq!(c.model, RateModelKind::Psr);
        assert_eq!(c.kernel, KernelChoice::Simd);
        assert_eq!(c.site_repeats, RepeatsChoice::Off);
        assert_eq!(c.reduce, ReduceChoice::Reproducible);
        assert_eq!(c.threads, ThreadsChoice::Count(ThreadCount::new(2)));
        assert_eq!(c.gradient, GradientChoice::On);
        assert_eq!(
            c.gradient_override,
            Some(vec![GradientMode::On, GradientMode::Off])
        );
        assert!(!c.batch);
        assert_eq!(
            c.threads_override,
            Some(vec![ThreadCount::new(2), ThreadCount::new(4)])
        );
        assert_eq!(c.resize_at, vec![(2, 1), (5, 4)]);
        assert!(c.mps && c.per_partition_branches && c.quiet);
        assert_eq!(c.seed, 7);
        assert_eq!(c.verify_replicas, 16);
        let fault = c.inject_divergence.unwrap();
        assert_eq!(fault.rank, 1);
        assert_eq!(fault.after_collectives, 10);
        assert_eq!(fault.component, FaultComponent::Alpha);
        assert_eq!(
            c.reduce_override,
            Some(vec![ReduceKind::Reproducible, ReduceKind::Fast])
        );
        assert_eq!(
            c.metrics_out.as_deref(),
            Some(std::path::Path::new("metrics.prom"))
        );
    }

    #[test]
    fn checkpoint_and_kill_flags_parse() {
        let c = parse(&[
            "--checkpoint-out",
            "ckpt/",
            "--checkpoint-every",
            "5",
            "--resume",
            "ckpt/",
            "--inject-kill",
            "2",
        ])
        .unwrap();
        assert_eq!(
            c.checkpoint_out.as_deref(),
            Some(std::path::Path::new("ckpt/"))
        );
        assert_eq!(c.checkpoint_every, Some(5));
        assert_eq!(c.resolved_checkpoint_every(), 5);
        assert_eq!(c.resume.as_deref(), Some(std::path::Path::new("ckpt/")));
        assert_eq!(
            c.inject_kill,
            Some(KillSpec {
                after_checkpoints: 2,
                rank: None
            })
        );

        let c = parse(&["--inject-kill", "3:1"]).unwrap();
        assert_eq!(
            c.inject_kill,
            Some(KillSpec {
                after_checkpoints: 3,
                rank: Some(1)
            })
        );

        for bad in ["", "x", "1:", "1:x", "1:2:3"] {
            let err = parse(&["--inject-kill", bad]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::BadValue {
                        flag: "--inject-kill",
                        ..
                    }
                ),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn checkpoint_cadence_and_retention_flags() {
        // Absent flags: commit every iteration, keep the default window.
        let c = parse(&[]).unwrap();
        assert_eq!(c.checkpoint_every, None);
        assert_eq!(c.resolved_checkpoint_every(), 1);
        assert_eq!(c.checkpoint_keep, crate::checkpoint::KEEP_GENERATIONS);

        // A time cadence alone turns the iteration cadence off.
        let c = parse(&["--checkpoint-every-secs", "2.5"]).unwrap();
        assert_eq!(c.checkpoint_every_secs, Some(2.5));
        assert_eq!(c.resolved_checkpoint_every(), 0);

        // Both cadences can be armed together.
        let c = parse(&[
            "--checkpoint-every",
            "4",
            "--checkpoint-every-secs",
            "10",
            "--checkpoint-keep",
            "7",
        ])
        .unwrap();
        assert_eq!(c.resolved_checkpoint_every(), 4);
        assert_eq!(c.checkpoint_every_secs, Some(10.0));
        assert_eq!(c.checkpoint_keep, 7);

        // An explicit zero disables the iteration cadence outright.
        let c = parse(&["--checkpoint-every", "0"]).unwrap();
        assert_eq!(c.resolved_checkpoint_every(), 0);

        for (flag, bad) in [
            ("--checkpoint-every-secs", "0"),
            ("--checkpoint-every-secs", "-1"),
            ("--checkpoint-every-secs", "inf"),
            ("--checkpoint-keep", "0"),
        ] {
            let err = parse(&[flag, bad]).unwrap_err();
            assert!(
                matches!(err, CliError::BadValue { .. }),
                "{flag} {bad:?} should be rejected, got {err:?}"
            );
        }
    }

    #[test]
    fn unknown_flag_names_the_nearest_valid_one() {
        let err = parse(&["--phlyip", "a.phy"]).unwrap_err();
        let CliError::UnknownFlag { flag, suggestion } = &err else {
            panic!("expected UnknownFlag, got {err:?}");
        };
        assert_eq!(flag, "--phlyip");
        assert_eq!(*suggestion, Some("--phylip"));
        assert!(err.to_string().contains("did you mean --phylip?"), "{err}");

        let err = parse(&["--kernal", "simd"]).unwrap_err();
        assert!(err.to_string().contains("did you mean --kernel?"), "{err}");

        // Gibberish gets no far-fetched suggestion.
        let err = parse(&["--zzzzzzzzzzzzzzzzzz"]).unwrap_err();
        let CliError::UnknownFlag { suggestion, .. } = err else {
            panic!()
        };
        assert_eq!(suggestion, None);
    }

    #[test]
    fn missing_and_bad_values_are_structured() {
        assert_eq!(
            parse(&["--ranks"]).unwrap_err(),
            CliError::MissingValue { flag: "--ranks" }
        );
        let err = parse(&["--ranks", "many"]).unwrap_err();
        assert!(matches!(
            err,
            CliError::BadValue {
                flag: "--ranks",
                ..
            }
        ));
        let err = parse(&["--kernel", "avx512"]).unwrap_err();
        assert!(err.to_string().contains("scalar, simd or auto"), "{err}");
        let err = parse(&["--site-repeats", "maybe"]).unwrap_err();
        assert!(err.to_string().contains("on, off or auto"), "{err}");
        let err = parse(&["--model", "JC"]).unwrap_err();
        assert!(err.to_string().contains("GAMMA or PSR"), "{err}");
        let err = parse(&["--reduce", "exact"]).unwrap_err();
        assert!(
            err.to_string().contains("fast, reproducible or auto"),
            "{err}"
        );
        let err = parse(&["--threads", "lots"]).unwrap_err();
        assert!(err.to_string().contains("a count or auto"), "{err}");
        let err = parse(&["--batch", "maybe"]).unwrap_err();
        assert!(err.to_string().contains("on or off"), "{err}");
        let err = parse(&["--gradient", "maybe"]).unwrap_err();
        assert!(err.to_string().contains("on, off or auto"), "{err}");
        for bad in ["", "auto", "on,", "on,maybe"] {
            let err = parse(&["--gradient-override", bad]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::BadValue {
                        flag: "--gradient-override",
                        ..
                    }
                ),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
        for bad in ["", "0", "2,", "2,x"] {
            let err = parse(&["--threads-override", bad]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::BadValue {
                        flag: "--threads-override",
                        ..
                    }
                ),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
        for bad in ["", "exact", "fast,", "fast,auto"] {
            let err = parse(&["--reduce-override", bad]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::BadValue {
                        flag: "--reduce-override",
                        ..
                    }
                ),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
        // Out-of-order, zero-width and malformed plans are all rejected.
        for bad in ["", "3", "3:", "3:0", "5:2,3:4", "3:2,3:1", "x:2"] {
            let err = parse(&["--resize-at", bad]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CliError::BadValue {
                        flag: "--resize-at",
                        ..
                    }
                ),
                "{bad:?} should be rejected, got {err:?}"
            );
        }
        assert_eq!(parse(&["--help"]).unwrap_err(), CliError::Help);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abc", ""), 3);
        assert_eq!(edit_distance("--phlyip", "--phylip"), 2);
    }
}
