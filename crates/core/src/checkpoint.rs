//! Checkpoint / restart.
//!
//! RAxML-Light introduced checkpointing for long cluster runs (ref. 4 of
//! the paper); ExaML keeps it. Under the de-centralized scheme a checkpoint
//! is tiny: the replicated [`SearchSnapshot`] (tree topology + branch
//! lengths + model parameters + loop cursor), plus the gathered per-pattern
//! PSR rates — CLVs are recomputed on restart, and every rank re-reads its
//! data slice from the alignment.
//!
//! # On-disk format (version 2)
//!
//! A checkpoint file is self-describing:
//!
//! ```text
//! EXAMLCKPT\n              magic line
//! {header json}\n          one line: CheckpointHeader
//! {payload json}           CheckpointPayload, exactly payload_len bytes
//! ```
//!
//! The header carries the format version, the *negotiated* kernel backend
//! and site-repeats setting, the rank count, and an FNV-1a fingerprint of
//! the payload bytes (reusing `exa_obs::fnv1a`), so a reader can decide
//! whether a resume is compatible — or reject a torn/corrupt file — before
//! parsing the payload at all. `lnl` travels as raw IEEE-754 bits inside
//! the payload: the convergence test depends on the exact bits.
//!
//! # Atomicity and generations
//!
//! Writes are two-phase: serialize to a uniquely-named `*.tmp` sibling,
//! `fsync` it, `rename` onto the final name, then `fsync` the directory. A
//! crash mid-write leaves at worst a stray temp file; it can never damage a
//! committed generation. A checkpoint directory keeps the last
//! [`KEEP_GENERATIONS`] files (`gen-NNNNNNNN.ckpt`), and
//! [`load_latest`] falls back to the previous intact generation when the
//! newest is torn.

use exa_search::evaluator::{GlobalState, SearchSnapshot};
use exa_search::SearchResult;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Format version, bumped on layout changes.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Magic first line of every checkpoint file.
pub const CHECKPOINT_MAGIC: &str = "EXAMLCKPT";

/// Default committed generations retained per checkpoint directory
/// (overridable per run via `--checkpoint-keep` /
/// `RunConfig::checkpoint_keep`).
pub const KEEP_GENERATIONS: usize = 3;

/// The self-describing header, written as one JSON line after the magic.
/// Everything a reader needs to judge resume compatibility without parsing
/// the payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointHeader {
    /// [`CHECKPOINT_VERSION`] at write time.
    pub format_version: u32,
    /// Execution scheme that wrote the checkpoint (`"decentralized"` or
    /// `"forkjoin"`). Informational: resume under the other scheme is
    /// allowed (the replicated state is scheme-agnostic).
    pub scheme: String,
    /// Negotiated likelihood-kernel backend label. Elastic on resume —
    /// backends are bitwise identical by contract.
    pub kernel: String,
    /// Negotiated site-repeats label. Elastic on resume for the same
    /// reason.
    pub site_repeats: String,
    /// World size that wrote the checkpoint. Elastic on resume: the
    /// replicated state redistributes over any rank count.
    pub rank_count: usize,
    /// Rate-heterogeneity model (strict: a Γ checkpoint cannot seed a PSR
    /// run).
    pub rate_model: String,
    /// Branch-length mode (strict).
    pub branch_mode: String,
    /// Starting-tree seed (strict: a different seed is a different run).
    pub seed: u64,
    /// Taxon count (strict).
    pub n_taxa: usize,
    /// Global partition count (strict).
    pub n_partitions: usize,
    /// Boundary iteration of the payload snapshot (duplicated here so
    /// `load_latest` can pick the newest generation without payload work).
    pub iteration: usize,
    /// Exact payload byte length; a shorter file is torn.
    pub payload_len: u64,
    /// FNV-1a 64 of the payload bytes.
    pub payload_fingerprint: u64,
    /// Negotiated reduction-mode label (`"fast"`/`"reproducible"`). `None`
    /// on checkpoints written before reduce-mode selection existed (treated
    /// as `"fast"` on resume). Gates `rank_count` elasticity: a fast-mode
    /// lnL trajectory is a function of the rank count, so resuming it on a
    /// different count is a silent fork, not a continuation.
    pub reduce_mode: Option<String>,
    /// Gradient-BLO mode label (`"on"`/`"off"`) at write time. `None` on
    /// checkpoints written before gradient BLO existed. Elastic: gradient
    /// seeding is bitwise result-neutral, so a run may resume under a
    /// different mode and continue the same trajectory.
    pub gradient: Option<String>,
}

/// Bootstrap progress folded into checkpoints written between replicates,
/// so `--bootstrap N` resumes at the replicate it was killed in rather
/// than replaying all of them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BootstrapProgress {
    /// Fully completed replicates.
    pub completed: usize,
    /// Final log-likelihood of each completed replicate, as bits.
    pub replicate_lnl_bits: Vec<u64>,
    /// Bipartition occurrence counts over the completed replicates, sorted
    /// by split for deterministic encoding.
    pub split_counts: Vec<(Vec<usize>, u32)>,
    /// Search result of the completed best-tree run.
    pub best_result: SearchResult,
    /// Final replicated state of the best-tree run.
    pub best_state: GlobalState,
}

/// Checkpoint payload: the search re-entry state, plus bootstrap progress
/// when the run is a `--bootstrap` sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointPayload {
    pub snapshot: SearchSnapshot,
    pub bootstrap: Option<BootstrapProgress>,
}

/// A decoded checkpoint.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    pub header: CheckpointHeader,
    pub payload: CheckpointPayload,
}

impl Checkpoint {
    /// Assemble a checkpoint, computing the derived header fields
    /// (`format_version`, `iteration`, `payload_len`,
    /// `payload_fingerprint`) from the payload. The values of those fields
    /// in `header` are ignored.
    pub fn build(mut header: CheckpointHeader, payload: CheckpointPayload) -> Checkpoint {
        let bytes = payload_bytes(&payload);
        header.format_version = CHECKPOINT_VERSION;
        header.iteration = payload.snapshot.iteration;
        header.payload_len = bytes.len() as u64;
        header.payload_fingerprint = exa_obs::fnv1a(&bytes);
        Checkpoint { header, payload }
    }
}

/// Errors from checkpoint I/O. Every failure names what went wrong — a
/// corrupt file is never a panic and never a silently-wrong resume.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file exists but its contents are damaged; `field` names the
    /// first part of the format that failed validation.
    Corrupt {
        path: PathBuf,
        field: &'static str,
        detail: String,
    },
    /// The checkpoint is intact but incompatible with the resuming run;
    /// `field` names the offending header field.
    Mismatch {
        field: &'static str,
        expected: String,
        found: String,
    },
    /// The checkpoint directory holds no committed generation.
    NoGenerations { dir: PathBuf },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Corrupt {
                path,
                field,
                detail,
            } => write!(
                f,
                "corrupt checkpoint {}: bad {field}: {detail}",
                path.display()
            ),
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint mismatch on {field}: run expects {expected}, checkpoint has {found}"
            ),
            CheckpointError::NoGenerations { dir } => {
                write!(f, "no checkpoint generations in {}", dir.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn payload_bytes(payload: &CheckpointPayload) -> Vec<u8> {
    serde_json::to_vec(payload).expect("checkpoint payload serializes")
}

/// Encode a checkpoint to its on-disk byte layout, recomputing the derived
/// header fields so the bytes are always internally consistent.
pub fn encode(ckpt: &Checkpoint) -> Vec<u8> {
    let sealed = Checkpoint::build(ckpt.header.clone(), ckpt.payload.clone());
    let header = serde_json::to_vec(&sealed.header).expect("checkpoint header serializes");
    let payload = payload_bytes(&sealed.payload);
    let mut out = Vec::with_capacity(CHECKPOINT_MAGIC.len() + header.len() + payload.len() + 2);
    out.extend_from_slice(CHECKPOINT_MAGIC.as_bytes());
    out.push(b'\n');
    out.extend_from_slice(&header);
    out.push(b'\n');
    out.extend_from_slice(&payload);
    out
}

fn corrupt(path: &Path, field: &'static str, detail: impl Into<String>) -> CheckpointError {
    CheckpointError::Corrupt {
        path: path.to_path_buf(),
        field,
        detail: detail.into(),
    }
}

/// Decode and validate checkpoint bytes (`path` is for error reporting
/// only). Checks, in order: magic, header syntax, format version, payload
/// length, payload fingerprint, payload syntax, tree invariants, and
/// header/payload agreement.
pub fn decode(path: &Path, bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let magic_end = CHECKPOINT_MAGIC.len();
    if bytes.len() <= magic_end
        || &bytes[..magic_end] != CHECKPOINT_MAGIC.as_bytes()
        || bytes[magic_end] != b'\n'
    {
        return Err(corrupt(path, "magic", "missing EXAMLCKPT magic line"));
    }
    let rest = &bytes[magic_end + 1..];
    let header_end = rest
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| corrupt(path, "header", "truncated before header newline"))?;
    let header: CheckpointHeader = serde_json::from_slice(&rest[..header_end])
        .map_err(|e| corrupt(path, "header", e.to_string()))?;
    if header.format_version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Mismatch {
            field: "format_version",
            expected: CHECKPOINT_VERSION.to_string(),
            found: header.format_version.to_string(),
        });
    }
    let payload = &rest[header_end + 1..];
    if payload.len() as u64 != header.payload_len {
        return Err(corrupt(
            path,
            "payload_len",
            format!(
                "header says {}, file has {}",
                header.payload_len,
                payload.len()
            ),
        ));
    }
    let fp = exa_obs::fnv1a(payload);
    if fp != header.payload_fingerprint {
        return Err(corrupt(
            path,
            "payload_fingerprint",
            format!(
                "header says {:#018x}, payload hashes to {fp:#018x}",
                header.payload_fingerprint
            ),
        ));
    }
    let payload: CheckpointPayload =
        serde_json::from_slice(payload).map_err(|e| corrupt(path, "payload", e.to_string()))?;
    payload
        .snapshot
        .state
        .tree
        .check_invariants()
        .map_err(|e| corrupt(path, "tree", e))?;
    if header.iteration != payload.snapshot.iteration {
        return Err(corrupt(
            path,
            "iteration",
            format!(
                "header says {}, snapshot says {}",
                header.iteration, payload.snapshot.iteration
            ),
        ));
    }
    if header.n_taxa != payload.snapshot.state.tree.n_taxa() {
        return Err(corrupt(
            path,
            "n_taxa",
            format!(
                "header says {}, tree has {}",
                header.n_taxa,
                payload.snapshot.state.tree.n_taxa()
            ),
        ));
    }
    Ok(Checkpoint { header, payload })
}

/// Distinguishes concurrent writers' temp files (and successive writes by
/// one process) within a directory.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Atomically write a checkpoint to `path`: unique temp sibling → `fsync`
/// → `rename` → `fsync` the parent directory. An interrupted write can
/// leave a stray `*.tmp*` file but never a torn `path`, and never touches
/// a previously committed file until the rename lands.
pub fn save(path: &Path, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    atomic_write(path, &encode(ckpt))?;
    Ok(())
}

/// The two-phase atomic commit underlying [`save`], exposed so other
/// durable state (the serve daemon's job journal snapshots) reuses the
/// exact crash-consistency protocol: unique temp sibling → `fsync` →
/// `rename` → `fsync` the parent directory. An interrupted write can leave
/// a stray `*.tmp*` file but never a torn `path`, and never touches a
/// previously committed file until the rename lands.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    let n = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut tmp_name = path
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    tmp_name.push(format!(".tmp.{}.{n}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Some(dir) = path.parent() {
        // Persist the rename itself. Directories can't always be opened
        // for fsync (non-POSIX filesystems); failing open is not fatal.
        if let Ok(d) = std::fs::File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// Load and validate one checkpoint file.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path)?;
    decode(path, &bytes)
}

/// The file name of generation `seq` inside a checkpoint directory.
pub fn generation_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("gen-{seq:08}.ckpt"))
}

fn parse_generation(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("gen-")?.strip_suffix(".ckpt")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Committed generations in `dir`, ascending by sequence number. Temp
/// files and foreign names are ignored.
pub fn list_generations(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CheckpointError> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_generation) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|&(seq, _)| seq);
    Ok(out)
}

/// Commit `ckpt` as the next generation in `dir` (created if missing) and
/// prune generations beyond [`KEEP_GENERATIONS`]. Returns the committed
/// sequence number and path.
pub fn save_generation(dir: &Path, ckpt: &Checkpoint) -> Result<(u64, PathBuf), CheckpointError> {
    save_generation_keeping(dir, ckpt, KEEP_GENERATIONS)
}

/// [`save_generation`] with a configurable retention: the directory keeps
/// the last `keep` generations (`keep` is clamped to at least 1 — pruning
/// the generation just committed would defeat the point).
pub fn save_generation_keeping(
    dir: &Path,
    ckpt: &Checkpoint,
    keep: usize,
) -> Result<(u64, PathBuf), CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let existing = list_generations(dir)?;
    let seq = existing.last().map(|&(s, _)| s + 1).unwrap_or(0);
    let path = generation_path(dir, seq);
    save(&path, ckpt)?;
    // Prune oldest-first; the file just committed is never a candidate.
    let keep_from = (existing.len() + 1).saturating_sub(keep.max(1));
    for (_, old) in existing.into_iter().take(keep_from) {
        std::fs::remove_file(old).ok();
    }
    Ok((seq, path))
}

/// Load the newest intact generation from `dir`, falling back over corrupt
/// or torn newer generations. Returns the newest generation's error if
/// none is loadable, or [`CheckpointError::NoGenerations`] for an empty
/// directory.
pub fn load_latest(dir: &Path) -> Result<Checkpoint, CheckpointError> {
    let generations = list_generations(dir)?;
    if generations.is_empty() {
        return Err(CheckpointError::NoGenerations {
            dir: dir.to_path_buf(),
        });
    }
    let mut newest_err = None;
    for (_, path) in generations.into_iter().rev() {
        match load(&path) {
            Ok(ckpt) => return Ok(ckpt),
            Err(e) => {
                if newest_err.is_none() {
                    newest_err = Some(e);
                }
            }
        }
    }
    Err(newest_err.expect("at least one generation was tried"))
}

/// The strict identity of a run, checked against a checkpoint header
/// before resuming. Fields absent here (`kernel`, `site_repeats`,
/// `scheme`) are *elastic*: the replicated state redistributes across any
/// world shape, and kernel backends are bitwise identical by contract.
/// `rank_count` is *conditionally* elastic — only when both the checkpoint
/// and the resuming run reduce reproducibly (see [`validate_resume`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeContext {
    pub rate_model: String,
    pub branch_mode: String,
    pub seed: u64,
    pub n_taxa: usize,
    pub n_partitions: usize,
    /// The resuming run's rank count.
    pub rank_count: usize,
    /// The resuming run's locally-resolved reduce-mode label.
    pub reduce: String,
}

/// Validate that `header` may seed a run described by `ctx`; on failure,
/// the error names the first offending field.
///
/// `rank_count` may differ from the checkpoint's only when both sides
/// reduce with `"reproducible"`: under `"fast"` the collective sums — and
/// therefore the whole lnL trajectory — are a function of the rank count,
/// so a cross-count resume would silently fork the trajectory the
/// checkpoint attests. The error names the offending mode so the fix
/// (`--reduce reproducible`, or matching rank counts) is obvious.
pub fn validate_resume(
    header: &CheckpointHeader,
    ctx: &ResumeContext,
) -> Result<(), CheckpointError> {
    let checks: [(&'static str, String, String); 5] = [
        (
            "rate_model",
            ctx.rate_model.clone(),
            header.rate_model.clone(),
        ),
        (
            "branch_mode",
            ctx.branch_mode.clone(),
            header.branch_mode.clone(),
        ),
        ("seed", ctx.seed.to_string(), header.seed.to_string()),
        ("n_taxa", ctx.n_taxa.to_string(), header.n_taxa.to_string()),
        (
            "n_partitions",
            ctx.n_partitions.to_string(),
            header.n_partitions.to_string(),
        ),
    ];
    for (field, expected, found) in checks {
        if expected != found {
            return Err(CheckpointError::Mismatch {
                field,
                expected,
                found,
            });
        }
    }
    if header.rank_count != ctx.rank_count {
        let ckpt_mode = header.reduce_mode.as_deref().unwrap_or("fast");
        let reproducible = ckpt_mode == "reproducible" && ctx.reduce == "reproducible";
        if !reproducible {
            return Err(CheckpointError::Mismatch {
                field: "rank_count",
                expected: format!(
                    "{} (elastic only under reduce mode \"reproducible\"; run has \"{}\")",
                    ctx.rank_count, ctx.reduce
                ),
                found: format!(
                    "{} (checkpoint reduce mode \"{ckpt_mode}\")",
                    header.rank_count
                ),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_phylo::tree::Tree;

    fn sample_header() -> CheckpointHeader {
        CheckpointHeader {
            format_version: CHECKPOINT_VERSION,
            scheme: "decentralized".into(),
            kernel: "simd".into(),
            site_repeats: "on".into(),
            rank_count: 3,
            rate_model: "Gamma".into(),
            branch_mode: "Joint".into(),
            seed: 42,
            n_taxa: 6,
            n_partitions: 2,
            iteration: 0,
            payload_len: 0,
            payload_fingerprint: 0,
            reduce_mode: Some("fast".into()),
            gradient: Some("on".into()),
        }
    }

    fn sample() -> Checkpoint {
        let snapshot = SearchSnapshot {
            iteration: 3,
            lnl_bits: (-1234.5f64).to_bits(),
            spr_moves: 7,
            state: GlobalState {
                tree: Tree::random(6, 1, 9),
                alphas: vec![0.7, 1.3],
                gtr_rates: vec![[1.0, 2.0, 0.5, 1.1, 3.0]; 2],
            },
            psr_rates: Vec::new(),
        };
        Checkpoint::build(
            sample_header(),
            CheckpointPayload {
                snapshot,
                bootstrap: None,
            },
        )
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "examl_ckpt_{tag}_{}_{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let dir = tmpdir("rt");
        let path = dir.join("one.ckpt");
        let c = sample();
        save(&path, &c).unwrap();
        let d = load(&path).unwrap();
        assert_eq!(d.header, c.header);
        assert_eq!(d.payload.snapshot.lnl_bits, c.payload.snapshot.lnl_bits);
        assert_eq!(
            serde_json::to_vec(&d.payload.snapshot).unwrap(),
            serde_json::to_vec(&c.payload.snapshot).unwrap(),
            "payload must round-trip bit-exactly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn build_seals_derived_fields() {
        let c = sample();
        assert_eq!(c.header.iteration, 3);
        assert!(c.header.payload_len > 0);
        let bytes = payload_bytes(&c.payload);
        assert_eq!(c.header.payload_fingerprint, exa_obs::fnv1a(&bytes));
    }

    #[test]
    fn rejects_bumped_format_version_naming_the_field() {
        let dir = tmpdir("ver");
        let path = dir.join("one.ckpt");
        let c = sample();
        // Re-encode with a bumped version but otherwise valid derived
        // fields (encode() would heal them, so patch the bytes directly).
        let sealed = Checkpoint::build(c.header.clone(), c.payload.clone());
        let mut header = sealed.header.clone();
        header.format_version = CHECKPOINT_VERSION + 1;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CHECKPOINT_MAGIC.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&serde_json::to_vec(&header).unwrap());
        bytes.push(b'\n');
        bytes.extend_from_slice(&payload_bytes(&sealed.payload));
        std::fs::write(&path, &bytes).unwrap();
        match load(&path).unwrap_err() {
            CheckpointError::Mismatch { field, .. } => assert_eq!(field, "format_version"),
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_mismatched_fingerprint_naming_the_field() {
        let dir = tmpdir("fp");
        let path = dir.join("one.ckpt");
        let sealed = Checkpoint::build(sample().header, sample().payload);
        let mut header = sealed.header.clone();
        header.payload_fingerprint ^= 1;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CHECKPOINT_MAGIC.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(&serde_json::to_vec(&header).unwrap());
        bytes.push(b'\n');
        bytes.extend_from_slice(&payload_bytes(&sealed.payload));
        std::fs::write(&path, &bytes).unwrap();
        match load(&path).unwrap_err() {
            CheckpointError::Corrupt { field, .. } => assert_eq!(field, "payload_fingerprint"),
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_garbage_and_missing_magic() {
        let dir = tmpdir("garbage");
        let path = dir.join("one.ckpt");
        std::fs::write(&path, b"{not a checkpoint").unwrap();
        match load(&path).unwrap_err() {
            CheckpointError::Corrupt { field, .. } => assert_eq!(field, "magic"),
            other => panic!("wrong error: {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/examl.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }

    #[test]
    fn generations_rotate_and_prune() {
        let dir = tmpdir("gens");
        let c = sample();
        for i in 0..5 {
            let mut ci = c.clone();
            ci.payload.snapshot.iteration = i;
            let (seq, _) = save_generation(&dir, &ci).unwrap();
            assert_eq!(seq, i as u64);
        }
        let gens = list_generations(&dir).unwrap();
        assert_eq!(gens.len(), KEEP_GENERATIONS);
        assert_eq!(gens.first().unwrap().0, 2);
        let latest = load_latest(&dir).unwrap();
        assert_eq!(latest.payload.snapshot.iteration, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_latest_falls_back_over_a_torn_newest_generation() {
        let dir = tmpdir("torn");
        let c = sample();
        save_generation(&dir, &c).unwrap();
        let mut newer = c.clone();
        newer.payload.snapshot.iteration = 9;
        let (seq, path) = save_generation(&dir, &newer).unwrap();
        assert_eq!(seq, 1);
        // Tear the newest file: truncate mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.payload.snapshot.iteration, 3, "fell back to gen 0");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_directory_reports_no_generations() {
        let dir = tmpdir("empty");
        assert!(matches!(
            load_latest(&dir).unwrap_err(),
            CheckpointError::NoGenerations { .. }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupted_write_never_damages_previous_generation() {
        let dir = tmpdir("crash");
        let c = sample();
        let (_, committed) = save_generation(&dir, &c).unwrap();
        // Simulate a crash mid-write of the next generation: a partial
        // temp file appears but no rename happens.
        let partial = dir.join("gen-00000001.ckpt.tmp.999.0");
        std::fs::write(&partial, &encode(&c)[..20]).unwrap();
        // The committed generation is untouched and still the latest.
        let loaded = load_latest(&dir).unwrap();
        assert_eq!(loaded.payload.snapshot.iteration, 3);
        load(&committed).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn validate_resume_names_offending_field() {
        let c = sample();
        let good = ResumeContext {
            rate_model: "Gamma".into(),
            branch_mode: "Joint".into(),
            seed: 42,
            n_taxa: 6,
            n_partitions: 2,
            rank_count: 3,
            reduce: "fast".into(),
        };
        validate_resume(&c.header, &good).unwrap();
        let mut bad = good.clone();
        bad.seed = 43;
        match validate_resume(&c.header, &bad).unwrap_err() {
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => {
                assert_eq!(field, "seed");
                assert_eq!(expected, "43");
                assert_eq!(found, "42");
            }
            other => panic!("wrong error: {other}"),
        }
        let mut bad = good;
        bad.rate_model = "Psr".into();
        match validate_resume(&c.header, &bad).unwrap_err() {
            CheckpointError::Mismatch { field, .. } => assert_eq!(field, "rate_model"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn rank_count_elasticity_requires_reproducible_reduce() {
        let c = sample(); // header: rank_count 3, reduce_mode "fast"
        let ctx = |rank_count: usize, reduce: &str| ResumeContext {
            rate_model: "Gamma".into(),
            branch_mode: "Joint".into(),
            seed: 42,
            n_taxa: 6,
            n_partitions: 2,
            rank_count,
            reduce: reduce.into(),
        };

        // Same count: always fine, any mode.
        validate_resume(&c.header, &ctx(3, "fast")).unwrap();
        validate_resume(&c.header, &ctx(3, "reproducible")).unwrap();

        // Different count under fast: rejected, naming the mode.
        match validate_resume(&c.header, &ctx(5, "fast")).unwrap_err() {
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => {
                assert_eq!(field, "rank_count");
                assert!(expected.contains("reproducible"), "{expected}");
                assert!(found.contains("fast"), "{found}");
            }
            other => panic!("wrong error: {other}"),
        }
        // A reproducible run still cannot stretch a fast checkpoint (its
        // trajectory is already rank-count-bound).
        assert!(validate_resume(&c.header, &ctx(5, "reproducible")).is_err());

        // Both sides reproducible: rank count is elastic.
        let mut h = c.header.clone();
        h.reduce_mode = Some("reproducible".into());
        validate_resume(&h, &ctx(5, "reproducible")).unwrap();
        // ... but not for a fast-mode resuming run.
        assert!(validate_resume(&h, &ctx(5, "fast")).is_err());

        // Legacy header (no reduce_mode) is treated as fast.
        let mut legacy = c.header.clone();
        legacy.reduce_mode = None;
        assert!(validate_resume(&legacy, &ctx(5, "reproducible")).is_err());
        validate_resume(&legacy, &ctx(3, "fast")).unwrap();
    }
}
