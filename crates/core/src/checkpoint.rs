//! Checkpoint / restart.
//!
//! RAxML-Light introduced checkpointing for long cluster runs (ref. 4 of the paper); ExaML
//! keeps it. Under the de-centralized scheme a checkpoint is tiny: the
//! replicated [`GlobalState`] (tree topology + branch lengths + model
//! parameters) plus the iteration cursor — CLVs are recomputed on restart,
//! and every rank re-reads its data slice from the binary alignment.
//!
//! Files are written atomically (temp file + rename) by the lowest-id
//! active rank; any rank can read them.

use exa_search::evaluator::GlobalState;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format version, bumped on layout changes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A search checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    pub version: u32,
    /// Iteration at whose boundary the snapshot was taken.
    pub iteration: usize,
    /// Log-likelihood at the boundary.
    pub lnl: f64,
    /// The replicated search state.
    pub state: GlobalState,
}

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Atomically write a checkpoint.
pub fn save(path: &Path, ckpt: &Checkpoint) -> Result<(), CheckpointError> {
    let json =
        serde_json::to_vec_pretty(ckpt).map_err(|e| CheckpointError::Format(e.to_string()))?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Load and validate a checkpoint.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = std::fs::read(path)?;
    let ckpt: Checkpoint =
        serde_json::from_slice(&bytes).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if ckpt.version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported checkpoint version {}",
            ckpt.version
        )));
    }
    ckpt.state
        .tree
        .check_invariants()
        .map_err(CheckpointError::Format)?;
    Ok(ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use exa_phylo::tree::Tree;

    fn sample() -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            iteration: 3,
            lnl: -1234.5,
            state: GlobalState {
                tree: Tree::random(6, 1, 9),
                alphas: vec![0.7, 1.3],
                gtr_rates: vec![[1.0, 2.0, 0.5, 1.1, 3.0]; 2],
            },
        }
    }

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("examl_ckpt_test.json");
        let c = sample();
        save(&path, &c).unwrap();
        let d = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d.iteration, 3);
        assert_eq!(d.lnl, -1234.5);
        assert_eq!(d.state.alphas, c.state.alphas);
        assert_eq!(d.state.tree.n_taxa(), 6);
    }

    #[test]
    fn rejects_wrong_version() {
        let dir = std::env::temp_dir();
        let path = dir.join("examl_ckpt_badver.json");
        let mut c = sample();
        c.version = 999;
        let json = serde_json::to_vec(&c).unwrap();
        std::fs::write(&path, json).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, CheckpointError::Format(_)));
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir();
        let path = dir.join("examl_ckpt_garbage.json");
        std::fs::write(&path, b"{not json").unwrap();
        assert!(load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load(Path::new("/nonexistent/examl.ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
