//! Replica-divergence sentinel (run-health layer).
//!
//! The de-centralized scheme (§III-B) is correct only while every rank's
//! search replica stays **bit-identical**: ranks take identical decisions
//! because the allreduced values they branch on are identical. A replica
//! that silently diverges — a memory fault, a non-deterministic library
//! call, a miscompiled kernel — keeps contributing its (now wrong) local
//! likelihood terms to every reduction and the run completes normally with
//! a wrong tree.
//!
//! The sentinel makes this failure mode loud. Every rank counts the
//! evaluator's collectives; at a configurable cadence (`--verify-replicas
//! N`, every N-th collective) it digests its live search state into an
//! [`exa_obs::StateFingerprint`] and exchanges the 32-byte digest on one
//! extra allgather piggybacked right after the regular collective. All
//! ranks see all fingerprints, so all ranks reach the *same* verdict: on
//! any mismatch every rank panics with the identical structured
//! [`exa_obs::ReplicaDivergence`] — simultaneously, after the allgather,
//! so no rank is left parked inside a collective and the world unwinds
//! cleanly instead of deadlocking.
//!
//! [`DivergenceFault`] is the matching fault-injection hook: it flips one
//! bit of one rank's α or branch length when that rank's collective count
//! reaches a threshold, exercising the exact silent-corruption scenario
//! end to end.

use serde::{Deserialize, Serialize};

/// Which state component an injected fault corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultComponent {
    /// Flip the lowest mantissa bit of partition 0's Γ shape α.
    Alpha,
    /// Flip the lowest mantissa bit of edge 0's first branch length.
    BranchLength,
}

impl FaultComponent {
    /// CLI spelling (`--inject-divergence RANK:COLLECTIVE:alpha|blen`).
    pub fn parse(s: &str) -> Option<FaultComponent> {
        match s {
            "alpha" => Some(FaultComponent::Alpha),
            "blen" => Some(FaultComponent::BranchLength),
            _ => None,
        }
    }
}

/// Scripted single-bit state corruption: on rank `rank`, flip one bit of
/// `component` when the rank's evaluator-collective count reaches
/// `after_collectives`. Mid-search, in-memory — the injected state keeps
/// flowing through subsequent reductions exactly like a real silent fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceFault {
    pub rank: usize,
    pub after_collectives: u64,
    pub component: FaultComponent,
}

/// Per-rank sentinel state, embedded in the de-centralized evaluator.
#[derive(Debug, Clone)]
pub(crate) struct Sentinel {
    /// Fingerprint-sync cadence in collectives; 0 disables the sentinel.
    pub cadence: u64,
    /// Evaluator collectives seen so far on this rank.
    pub collectives: u64,
    /// Fingerprint syncs completed.
    pub syncs: u64,
    /// Pending injection (taken once when it fires).
    pub fault: Option<DivergenceFault>,
}

impl Sentinel {
    pub fn disabled() -> Sentinel {
        Sentinel {
            cadence: 0,
            collectives: 0,
            syncs: 0,
            fault: None,
        }
    }

    /// Count one collective. Returns `true` when this collective is a
    /// fingerprint-sync point.
    pub fn tick(&mut self) -> bool {
        if self.cadence == 0 {
            return false;
        }
        self.collectives += 1;
        self.collectives.is_multiple_of(self.cadence)
    }

    /// Take the pending fault if it is due on `rank` at the current
    /// collective count (fires exactly once).
    pub fn due_fault(&mut self, rank: usize) -> Option<DivergenceFault> {
        match self.fault {
            Some(f) if f.rank == rank && self.collectives >= f.after_collectives => {
                self.fault.take()
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sentinel_never_syncs() {
        let mut s = Sentinel::disabled();
        for _ in 0..100 {
            assert!(!s.tick());
        }
        assert_eq!(s.collectives, 0);
    }

    #[test]
    fn tick_fires_every_cadence_collectives() {
        let mut s = Sentinel {
            cadence: 3,
            ..Sentinel::disabled()
        };
        let fired: Vec<bool> = (0..7).map(|_| s.tick()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false]);
        assert_eq!(s.collectives, 7);
    }

    #[test]
    fn fault_fires_once_on_its_rank_at_threshold() {
        let fault = DivergenceFault {
            rank: 2,
            after_collectives: 5,
            component: FaultComponent::Alpha,
        };
        let mut s = Sentinel {
            cadence: 1,
            fault: Some(fault),
            ..Sentinel::disabled()
        };
        // Wrong rank: never fires.
        s.collectives = 10;
        assert_eq!(s.due_fault(0), None);
        // Right rank, below threshold: not yet.
        s.collectives = 4;
        assert_eq!(s.due_fault(2), None);
        // At threshold: fires exactly once.
        s.collectives = 5;
        assert_eq!(s.due_fault(2), Some(fault));
        assert_eq!(s.due_fault(2), None);
    }

    #[test]
    fn fault_component_parses_cli_spellings() {
        assert_eq!(FaultComponent::parse("alpha"), Some(FaultComponent::Alpha));
        assert_eq!(
            FaultComponent::parse("blen"),
            Some(FaultComponent::BranchLength)
        );
        assert_eq!(FaultComponent::parse("topology"), None);
    }
}
