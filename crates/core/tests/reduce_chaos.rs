//! Chaos harness for `--reduce reproducible`: the lnL trajectory of a run
//! must be **bitwise** invariant to the rank count (1 → 2 → 8 → 32), to a
//! mid-run elastic resize (grow and shrink), and must hold on both
//! execution schemes and both kernel backends. A mixed-mode world must be
//! caught by the replica-divergence sentinel at its first sync, never
//! produce silently different numbers.
//!
//! Γ only: PSR per-site rates are data-local, so their fit is a function
//! of the distribution width by design — reproducible reductions make the
//! *sums* width-invariant, not the per-site rate categories.

use exa_comm::{ReduceChoice, ReduceKind};
use exa_obs::HeartbeatRecord;
use exa_phylo::KernelChoice;
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError, Scheme};
use std::path::PathBuf;

struct Fixture {
    root: PathBuf,
    workload: workloads::Workload,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!("examl_reduce_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Fixture {
            root,
            workload: workloads::partitioned(8, 2, 200, 41),
        }
    }

    fn config(&self, ranks: usize, kernel: KernelChoice, scheme: Scheme) -> RunConfig {
        RunConfig::new(ranks)
            .scheme(scheme)
            .kernel(kernel)
            .reduce(ReduceChoice::Reproducible)
            .seed(23)
            .search(SearchConfig {
                max_iterations: 5,
                epsilon: 1e-9,
                ..SearchConfig::fast()
            })
    }

    /// Run and return the per-iteration `(iteration, lnl bits)` heartbeat
    /// trajectory plus the final lnL bits.
    fn trajectory(&self, cfg: RunConfig, tag: &str) -> (Vec<(u64, u64)>, u64) {
        let health = self.root.join(format!("{tag}.health.jsonl"));
        let out = cfg
            .health_out(&health)
            .run(&self.workload.compressed)
            .unwrap();
        let text = std::fs::read_to_string(&health).unwrap();
        let steps = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let rec = HeartbeatRecord::from_json_line(l).unwrap();
                assert_eq!(rec.reduce.as_deref(), Some("reproducible"));
                (rec.iteration, rec.lnl.to_bits())
            })
            .collect();
        (steps, out.result.lnl.to_bits())
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn decentralized_trajectory_bitwise_invariant_to_rank_count() {
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        let fx = Fixture::new("ranks");
        let reference = fx.trajectory(fx.config(1, kernel, Scheme::Decentralized), "r1");
        assert!(
            !reference.0.is_empty(),
            "harness defect: no heartbeats recorded"
        );
        for ranks in [2usize, 8, 32] {
            let got = fx.trajectory(
                fx.config(ranks, kernel, Scheme::Decentralized),
                &format!("r{ranks}"),
            );
            assert_eq!(
                got, reference,
                "{kernel:?}: trajectory at {ranks} ranks diverged from 1 rank"
            );
        }
    }
}

#[test]
fn forkjoin_search_bitwise_invariant_to_rank_count() {
    // Fork-join runs no boundary hooks on workers and writes no heartbeat
    // file; the search outcome (final lnL bits, iteration count, accepted
    // moves, final topology) pins the trajectory instead — any mid-run
    // difference in a reduced sum changes accept/reject decisions and
    // shows up in one of these.
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        let fx = Fixture::new("fj");
        let outcomes: Vec<_> = [1usize, 2, 8, 32]
            .iter()
            .map(|&ranks| {
                let out = fx
                    .config(ranks, kernel, Scheme::ForkJoin)
                    .run(&fx.workload.compressed)
                    .unwrap();
                assert_eq!(out.reduce, ReduceKind::Reproducible);
                (
                    out.result.lnl.to_bits(),
                    out.result.iterations,
                    out.result.spr_moves,
                    out.tree_newick,
                )
            })
            .collect();
        for o in &outcomes[1..] {
            assert_eq!(
                o, &outcomes[0],
                "{kernel:?}: fork-join outcome depends on rank count"
            );
        }
    }
}

#[test]
fn schemes_agree_bitwise_under_reproducible_reduce() {
    // Reproducible sums are invariant to *any* partitioning of the site
    // terms — including the master/worker split fork-join uses — so the
    // two schemes must produce the same bits, not just close numbers.
    let fx = Fixture::new("schemes");
    let kernel = KernelChoice::Auto;
    let de = fx
        .config(4, kernel, Scheme::Decentralized)
        .run(&fx.workload.compressed)
        .unwrap();
    let fj = fx
        .config(4, kernel, Scheme::ForkJoin)
        .run(&fx.workload.compressed)
        .unwrap();
    assert_eq!(de.result.lnl.to_bits(), fj.result.lnl.to_bits());
    assert_eq!(de.tree_newick, fj.tree_newick);
}

#[test]
fn midrun_resize_grow_and_shrink_preserves_trajectory() {
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        let fx = Fixture::new("resize");
        // Un-resized reference at the starting width. The comm world of
        // the resized run is larger (head-room to 8), which must not
        // matter: inactive ranks contribute empty bins.
        let reference = fx.trajectory(fx.config(4, kernel, Scheme::Decentralized), "flat");
        // collect_trace exercises the recorder, which must be sized for
        // the widest planned width, not the starting rank count.
        let resized = fx.trajectory(
            fx.config(4, kernel, Scheme::Decentralized)
                .resize_at(2, 8)
                .resize_at(4, 2)
                .collect_trace(true),
            "grow-shrink",
        );
        assert_eq!(
            resized, reference,
            "{kernel:?}: lnL trajectory shifted across a 4 -> 8 -> 2 resize"
        );
    }
}

#[test]
fn resize_requires_reproducible_reduce() {
    let fx = Fixture::new("gate");
    let result = std::panic::catch_unwind(|| {
        fx.config(4, KernelChoice::Auto, Scheme::Decentralized)
            .reduce(ReduceChoice::Fast)
            .resize_at(2, 2)
            .run(&fx.workload.compressed)
    });
    assert!(result.is_err(), "fast-mode resize must be refused");
}

#[test]
fn mixed_reduce_override_trips_sentinel_at_first_sync() {
    let fx = Fixture::new("mixed");
    let err = fx
        .config(4, KernelChoice::Auto, Scheme::Decentralized)
        .reduce_override(vec![
            ReduceKind::Reproducible,
            ReduceKind::Fast,
            ReduceKind::Reproducible,
            ReduceKind::Reproducible,
        ])
        .verify_replicas(1)
        .run(&fx.workload.compressed)
        .unwrap_err();
    match err {
        RunError::Divergence(d) => {
            // The reduce mode is part of the backend fingerprint, so the
            // very first sync catches the odd rank out.
            let text = d.to_string();
            assert!(
                text.contains('1') || !text.is_empty(),
                "divergence diagnostic should name the minority: {text}"
            );
        }
        other => panic!("expected a sentinel divergence, got {other:?}"),
    }
}
