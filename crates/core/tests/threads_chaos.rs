//! Chaos harness for `--threads` and `--batch`: the lnL trajectory of a
//! run must be **bitwise** invariant to the intra-rank worker-pool width
//! (1 → 2 → 8) and to partition packing (on → off), across both kernel
//! backends, both reduce modes, and site-repeat compression on/off. The
//! worker pool only changes *who* computes a partition's slot, the packing
//! pass only changes how many kernel entries a traversal issues — neither
//! may move a bit of the result. A world with mixed thread counts must be
//! caught by the replica-divergence sentinel at its first sync.

use exa_comm::ReduceChoice;
use exa_obs::HeartbeatRecord;
use exa_phylo::{KernelChoice, RepeatsChoice, SiteRepeats, ThreadCount, ThreadsChoice};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError, Scheme};
use std::path::PathBuf;

struct Fixture {
    root: PathBuf,
    workload: workloads::Workload,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("examl_threads_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Fixture {
            root,
            workload: workloads::partitioned(8, 2, 160, 41),
        }
    }

    fn config(
        &self,
        kernel: KernelChoice,
        reduce: ReduceChoice,
        repeats: SiteRepeats,
        threads: usize,
    ) -> RunConfig {
        RunConfig::new(2)
            .scheme(Scheme::Decentralized)
            .kernel(kernel)
            .reduce(reduce)
            .site_repeats(match repeats {
                SiteRepeats::On => RepeatsChoice::On,
                SiteRepeats::Off => RepeatsChoice::Off,
            })
            .threads(ThreadsChoice::Count(ThreadCount::new(threads)))
            .seed(23)
            .search(SearchConfig {
                max_iterations: 3,
                epsilon: 1e-9,
                ..SearchConfig::fast()
            })
    }

    /// Run and return the per-iteration `(iteration, lnl bits)` heartbeat
    /// trajectory plus the final lnL bits.
    fn trajectory(&self, cfg: RunConfig, tag: &str, threads: usize) -> (Vec<(u64, u64)>, u64) {
        let health = self.root.join(format!("{tag}.health.jsonl"));
        let out = cfg
            .health_out(&health)
            .run(&self.workload.compressed)
            .unwrap();
        assert_eq!(out.threads, threads, "negotiated width must round-trip");
        let text = std::fs::read_to_string(&health).unwrap();
        let steps = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let rec = HeartbeatRecord::from_json_line(l).unwrap();
                assert_eq!(rec.threads, Some(threads as u64));
                (rec.iteration, rec.lnl.to_bits())
            })
            .collect();
        (steps, out.result.lnl.to_bits())
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn trajectory_bitwise_invariant_to_thread_count() {
    // The full satellite matrix: kernels × reduce modes × site repeats,
    // each pinned at --threads 1 and replayed at 2 and 8 workers.
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        for reduce in [ReduceChoice::Fast, ReduceChoice::Reproducible] {
            for repeats in [SiteRepeats::On, SiteRepeats::Off] {
                let fx = Fixture::new("width");
                let reference = fx.trajectory(fx.config(kernel, reduce, repeats, 1), "t1", 1);
                assert!(
                    !reference.0.is_empty(),
                    "harness defect: no heartbeats recorded"
                );
                for threads in [2usize, 8] {
                    let got = fx.trajectory(
                        fx.config(kernel, reduce, repeats, threads),
                        &format!("t{threads}"),
                        threads,
                    );
                    assert_eq!(
                        got, reference,
                        "{kernel:?}/{reduce:?}/{repeats:?}: trajectory at \
                         {threads} threads diverged from 1 thread"
                    );
                }
            }
        }
    }
}

#[test]
fn trajectory_bitwise_invariant_to_batching() {
    // Packing is a dispatch-structure change only: the batched run at 2
    // workers must reproduce the unbatched single-thread run bit for bit.
    for kernel in [KernelChoice::Scalar, KernelChoice::Simd] {
        for reduce in [ReduceChoice::Fast, ReduceChoice::Reproducible] {
            let fx = Fixture::new("pack");
            let reference = fx.trajectory(
                fx.config(kernel, reduce, SiteRepeats::On, 1).batch(false),
                "unbatched",
                1,
            );
            let got = fx.trajectory(
                fx.config(kernel, reduce, SiteRepeats::On, 2).batch(true),
                "batched",
                2,
            );
            assert_eq!(
                got, reference,
                "{kernel:?}/{reduce:?}: packed batches moved the trajectory"
            );
        }
    }
}

#[test]
fn mixed_threads_override_trips_sentinel_at_first_sync() {
    // The thread count is folded into the backend fingerprint, so a world
    // where one rank negotiated a different width is a deployment error
    // the sentinel must surface — not a source of silent divergence.
    let fx = Fixture::new("mixed");
    let err = fx
        .config(
            KernelChoice::Auto,
            ReduceChoice::Reproducible,
            SiteRepeats::On,
            1,
        )
        .threads_override(vec![
            ThreadCount::new(2),
            ThreadCount::new(1),
            ThreadCount::new(2),
            ThreadCount::new(2),
        ])
        .verify_replicas(1)
        .run(&fx.workload.compressed)
        .unwrap_err();
    match err {
        RunError::Divergence(d) => {
            let text = d.to_string();
            assert!(
                !text.is_empty(),
                "divergence diagnostic should not be empty"
            );
        }
        other => panic!("expected a sentinel divergence, got {other:?}"),
    }
}
