//! Unit-level tests of the de-centralized evaluator against the sequential
//! reference, inside small rank worlds.

use exa_bio::stats::global_frequencies;
use exa_comm::{CommCategory, World};
use exa_phylo::model::rates::RateModelKind;
use exa_phylo::tree::Tree;
use exa_phylo::{KernelChoice, SiteRepeats};
use exa_sched::build_engine;
use exa_search::evaluator::{BranchMode, Evaluator, SequentialEvaluator};
use exa_simgen::workloads;
use examl_core::DecentralizedEvaluator;
use std::sync::Arc;

fn sequential(w: &workloads::Workload, seed: u64) -> SequentialEvaluator {
    let freqs = global_frequencies(&w.compressed);
    let assignment = exa_sched::distribute(&w.compressed, 1, exa_sched::Strategy::Cyclic);
    let engine = build_engine(
        &w.compressed,
        &assignment[0],
        &freqs,
        &exa_sched::EngineSpec::new(
            RateModelKind::Gamma,
            KernelChoice::from_env().resolve_local(),
            SiteRepeats::On,
        ),
        None,
    );
    let tree = Tree::random(w.compressed.n_taxa(), 1, seed);
    SequentialEvaluator::new(tree, engine, w.compressed.n_partitions(), BranchMode::Joint)
}

#[test]
fn distributed_evaluate_matches_sequential_bitwise_per_rank() {
    let w = Arc::new(workloads::partitioned(7, 2, 80, 3));
    let seed = 5;
    let mut seq = sequential(&w, seed);
    let expect = seq.evaluate(0);

    for ranks in [2usize, 3] {
        let w2 = Arc::clone(&w);
        let results = World::run(ranks, move |rank| {
            let freqs = global_frequencies(&w2.compressed);
            let assignments = exa_sched::distribute(
                &w2.compressed,
                rank.world_size(),
                exa_sched::Strategy::Cyclic,
            );
            let engine = build_engine(
                &w2.compressed,
                &assignments[rank.id()],
                &freqs,
                &exa_sched::EngineSpec::new(
                    RateModelKind::Gamma,
                    KernelChoice::from_env().resolve_local(),
                    SiteRepeats::On,
                ),
                None,
            );
            let tree = Tree::random(w2.compressed.n_taxa(), 1, seed);
            let mut eval = DecentralizedEvaluator::new(
                rank.clone(),
                tree,
                engine,
                w2.compressed.n_partitions(),
                BranchMode::Joint,
            );
            eval.evaluate(0)
        });
        // All ranks bit-identical with each other.
        for pair in results.windows(2) {
            assert_eq!(pair[0].to_bits(), pair[1].to_bits());
        }
        // And numerically equal to the sequential value (summation order
        // differs across rank counts, so allow float-level tolerance).
        assert!(
            (results[0] - expect).abs() < 1e-8,
            "ranks={ranks}: {} vs {expect}",
            results[0]
        );
    }
}

#[test]
fn distributed_derivatives_match_sequential() {
    let w = Arc::new(workloads::partitioned(7, 2, 80, 9));
    let seed = 7;
    let mut seq = sequential(&w, seed);
    seq.prepare_derivatives(2);
    let (ed1, ed2) = seq.derivatives(&[0.15]);

    let w2 = Arc::clone(&w);
    let results = World::run(3, move |rank| {
        let freqs = global_frequencies(&w2.compressed);
        let assignments = exa_sched::distribute(
            &w2.compressed,
            rank.world_size(),
            exa_sched::Strategy::Cyclic,
        );
        let engine = build_engine(
            &w2.compressed,
            &assignments[rank.id()],
            &freqs,
            &exa_sched::EngineSpec::new(
                RateModelKind::Gamma,
                KernelChoice::from_env().resolve_local(),
                SiteRepeats::On,
            ),
            None,
        );
        let tree = Tree::random(w2.compressed.n_taxa(), 1, seed);
        let mut eval = DecentralizedEvaluator::new(
            rank.clone(),
            tree,
            engine,
            w2.compressed.n_partitions(),
            BranchMode::Joint,
        );
        eval.prepare_derivatives(2);
        let (d1, d2) = eval.derivatives(&[0.15]);
        (d1[0], d2[0])
    });
    for &(d1, d2) in &results {
        assert!((d1 - ed1[0]).abs() < 1e-7, "{d1} vs {}", ed1[0]);
        assert!((d2 - ed2[0]).abs() < 1e-6, "{d2} vs {}", ed2[0]);
    }
}

#[test]
fn evaluate_uses_one_double_partitioned_uses_p() {
    // The §III-B wire contract: plain evaluation allreduces a single
    // double; only the model-optimization form carries the p-vector.
    let w = Arc::new(workloads::partitioned(6, 4, 40, 11));
    let results = World::run(2, move |rank| {
        let freqs = global_frequencies(&w.compressed);
        let assignments = exa_sched::distribute(
            &w.compressed,
            rank.world_size(),
            exa_sched::Strategy::Cyclic,
        );
        let engine = build_engine(
            &w.compressed,
            &assignments[rank.id()],
            &freqs,
            &exa_sched::EngineSpec::new(
                RateModelKind::Gamma,
                KernelChoice::from_env().resolve_local(),
                SiteRepeats::On,
            ),
            None,
        );
        let tree = Tree::random(w.compressed.n_taxa(), 1, 3);
        let mut eval = DecentralizedEvaluator::new(
            rank.clone(),
            tree,
            engine,
            w.compressed.n_partitions(),
            BranchMode::Joint,
        );
        rank.reset_stats();
        let _ = eval.evaluate(0);
        let after_plain = rank.stats().get(CommCategory::SiteLikelihoods).bytes;
        let _ = eval.evaluate_partitioned(0);
        let after_part = rank.stats().get(CommCategory::SiteLikelihoods).bytes;
        (after_plain, after_part - after_plain)
    });
    let (plain, partitioned) = results[0];
    assert_eq!(plain, 8, "plain evaluate must allreduce exactly one double");
    assert_eq!(partitioned, 8 * 4, "partitioned evaluate carries p doubles");
}

#[test]
fn snapshot_restore_in_rank_world() {
    let w = Arc::new(workloads::partitioned(6, 2, 60, 17));
    let results = World::run(2, move |rank| {
        let freqs = global_frequencies(&w.compressed);
        let assignments = exa_sched::distribute(
            &w.compressed,
            rank.world_size(),
            exa_sched::Strategy::Cyclic,
        );
        let engine = build_engine(
            &w.compressed,
            &assignments[rank.id()],
            &freqs,
            &exa_sched::EngineSpec::new(
                RateModelKind::Gamma,
                KernelChoice::from_env().resolve_local(),
                SiteRepeats::On,
            ),
            None,
        );
        let tree = Tree::random(w.compressed.n_taxa(), 1, 3);
        let mut eval = DecentralizedEvaluator::new(
            rank.clone(),
            tree,
            engine,
            w.compressed.n_partitions(),
            BranchMode::Joint,
        );
        eval.set_alphas(&[0.4, 2.0]);
        let before = eval.evaluate(0);
        let snap = eval.snapshot();
        eval.set_alphas(&[1.0, 1.0]);
        eval.tree_mut().set_length(0, 0, 1.3);
        let perturbed = eval.evaluate(0);
        eval.restore(&snap);
        let restored = eval.evaluate(0);
        (before, perturbed, restored)
    });
    for &(before, perturbed, restored) in &results {
        assert_ne!(before.to_bits(), perturbed.to_bits());
        assert!((before - restored).abs() < 1e-9, "{before} vs {restored}");
    }
}
