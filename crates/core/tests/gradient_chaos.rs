//! Chaos harness for `--gradient`: gradient-driven branch-length
//! optimization replaces the per-edge seed collectives of every smoothing
//! pass with one full-tree derivative sweep and a single fat reduction —
//! and must not move a bit of the result. Under `--reduce reproducible`
//! the lnL trajectory must be **bitwise** identical between `--gradient
//! on` and `--gradient off`, across rank counts (1 → 2 → 8), worker-pool
//! widths (1 → 2 → 8) and both execution schemes. A world with mixed
//! gradient modes runs *different collective sequences* — the sentinel
//! must catch it at its first fingerprint sync, before the desync can
//! produce garbage or a deadlock.
//!
//! Γ only, reproducible only: the bitwise claim needs rank-count-invariant
//! sums (a fast-mode trajectory is a function of the world size by
//! design); `worker_count_is_benign_under_fast_reduce` in the fork-join
//! crate covers the fast-mode tolerance story.

use exa_comm::ReduceChoice;
use exa_obs::HeartbeatRecord;
use exa_phylo::{GradientChoice, GradientMode, ThreadCount, ThreadsChoice};
use exa_search::SearchConfig;
use exa_simgen::workloads;
use examl_core::{RunConfig, RunError, Scheme};
use std::path::PathBuf;

struct Fixture {
    root: PathBuf,
    workload: workloads::Workload,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let root =
            std::env::temp_dir().join(format!("examl_gradient_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        std::fs::create_dir_all(&root).unwrap();
        Fixture {
            root,
            workload: workloads::partitioned(8, 2, 160, 41),
        }
    }

    fn config(
        &self,
        ranks: usize,
        threads: usize,
        scheme: Scheme,
        gradient: GradientChoice,
    ) -> RunConfig {
        RunConfig::new(ranks)
            .scheme(scheme)
            .reduce(ReduceChoice::Reproducible)
            .threads(ThreadsChoice::Count(ThreadCount::new(threads)))
            .gradient(gradient)
            .seed(23)
            .search(SearchConfig {
                max_iterations: 3,
                epsilon: 1e-9,
                ..SearchConfig::fast()
            })
    }

    /// Run and return the per-iteration `(iteration, lnl bits)` heartbeat
    /// trajectory plus the final lnL bits.
    fn trajectory(
        &self,
        cfg: RunConfig,
        tag: &str,
        gradient: GradientMode,
    ) -> (Vec<(u64, u64)>, u64) {
        let health = self.root.join(format!("{tag}.health.jsonl"));
        let out = cfg
            .health_out(&health)
            .run(&self.workload.compressed)
            .unwrap();
        assert_eq!(out.gradient, gradient, "negotiated mode must round-trip");
        let text = std::fs::read_to_string(&health).unwrap();
        let steps = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                let rec = HeartbeatRecord::from_json_line(l).unwrap();
                assert_eq!(rec.gradient.as_deref(), Some(gradient.label()));
                (rec.iteration, rec.lnl.to_bits())
            })
            .collect();
        (steps, out.result.lnl.to_bits())
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.root).ok();
    }
}

#[test]
fn decentralized_trajectory_bitwise_invariant_to_gradient_mode() {
    // The satellite matrix: rank counts × worker-pool widths, each run
    // with gradient BLO on and off. Under reproducible reductions every
    // one of these trajectories must be the same bit pattern — the sweep
    // computes the same Newton seeds the per-edge collectives would, and
    // the fat reduction bins per (derivative, edge, partition) slot
    // exactly as the per-edge reductions bin per partition.
    let fx = Fixture::new("matrix");
    let reference = fx.trajectory(
        fx.config(1, 1, Scheme::Decentralized, GradientChoice::Off),
        "ref",
        GradientMode::Off,
    );
    assert!(
        !reference.0.is_empty(),
        "harness defect: no heartbeats recorded"
    );
    for ranks in [1usize, 2, 8] {
        for threads in [1usize, 2, 8] {
            for (choice, mode) in [
                (GradientChoice::On, GradientMode::On),
                (GradientChoice::Auto, GradientMode::On),
                (GradientChoice::Off, GradientMode::Off),
            ] {
                if ranks == 1 && threads == 1 && mode == GradientMode::Off {
                    continue; // the reference itself
                }
                let got = fx.trajectory(
                    fx.config(ranks, threads, Scheme::Decentralized, choice),
                    &format!("r{ranks}t{threads}{}", mode.label()),
                    mode,
                );
                assert_eq!(
                    got, reference,
                    "ranks {ranks} × threads {threads} × gradient {choice:?}: \
                     trajectory diverged from the rank-1 per-edge reference"
                );
            }
        }
    }
}

#[test]
fn forkjoin_final_lnl_bitwise_invariant_to_gradient_mode() {
    // Same invariant on the master/worker scheme, pinned at the final lnL
    // (fork-join writes no per-iteration heartbeat file). The fork-join
    // master evaluates gradients through the worker pool's fat reduction,
    // so this also crosses the scheme boundary: every bit pattern must
    // match the de-centralized reference above's final state — which
    // `schemes_agree_bitwise_under_reproducible_reduce` already pins, so
    // here the reference is the fork-join per-edge run itself.
    let fx = Fixture::new("forkjoin");
    let reference = fx
        .config(1, 1, Scheme::ForkJoin, GradientChoice::Off)
        .run(&fx.workload.compressed)
        .unwrap();
    assert_eq!(reference.gradient, GradientMode::Off);
    for ranks in [1usize, 2, 8] {
        for threads in [1usize, 8] {
            for (choice, mode) in [
                (GradientChoice::On, GradientMode::On),
                (GradientChoice::Off, GradientMode::Off),
            ] {
                let out = fx
                    .config(ranks, threads, Scheme::ForkJoin, choice)
                    .run(&fx.workload.compressed)
                    .unwrap();
                assert_eq!(out.gradient, mode, "negotiated mode must round-trip");
                assert_eq!(
                    out.result.lnl.to_bits(),
                    reference.result.lnl.to_bits(),
                    "fork-join ranks {ranks} × threads {threads} × gradient \
                     {choice:?} moved the final lnL"
                );
            }
        }
    }
}

#[test]
fn mixed_gradient_override_trips_sentinel_at_first_sync() {
    // A mixed world is worse than a mixed thread table: the rank running
    // gradient BLO issues one fat collective per smoothing pass where the
    // per-edge rank issues one per edge, so the collective *sequences*
    // desynchronize. The gradient mode is folded into the backend
    // fingerprint, so the sentinel's first sync — which happens at the
    // initial evaluation, before any branch smoothing — must refuse the
    // world before the sequences can drift.
    let fx = Fixture::new("mixed");
    let err = fx
        .config(4, 1, Scheme::Decentralized, GradientChoice::Auto)
        .gradient_override(vec![
            GradientMode::On,
            GradientMode::Off,
            GradientMode::On,
            GradientMode::On,
        ])
        .verify_replicas(1)
        .run(&fx.workload.compressed)
        .unwrap_err();
    match err {
        RunError::Divergence(d) => {
            let text = d.to_string();
            assert!(
                !text.is_empty(),
                "divergence diagnostic should not be empty"
            );
        }
        other => panic!("expected a sentinel divergence, got {other:?}"),
    }
}
